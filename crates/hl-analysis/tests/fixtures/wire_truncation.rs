// Fixture: `wire-truncation` fires on a bare `as` cast that narrows a
// wire-format field below its declared width.
fn bad(w: &Wqe) -> u32 {
    let lost = w.raddr as u32;
    // Low-half probe for the trace log, audited: hl-lint: allow(wire-truncation)
    let ok_allowed = w.laddr as u32;
    // Masked casts document the truncation and are not flagged.
    let ok_masked = (w.cmp & 0xffff_ffff) as u32;
    // Widening casts are not flagged.
    let ok_wide = w.len as u64;
    lost + ok_allowed + ok_masked + ok_wide as u32
}
