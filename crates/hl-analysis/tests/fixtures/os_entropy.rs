// Fixture: `os-entropy` fires on thread_rng.
fn bad() {
    let x = rand::thread_rng();
    // Reporting-only path, audited: hl-lint: allow(os-entropy)
    let y = rand::thread_rng();
    let _ = (x, y);
}
