//! Latency statistics.
//!
//! [`Histogram`] is an HDR-style log-bucketed histogram over `u64`
//! nanosecond values: each power-of-two range is split into a fixed
//! number of sub-buckets, giving a bounded relative error (~1/64 with the
//! default 64 sub-buckets) at any magnitude — exactly what is needed to
//! report honest 99th percentiles over values spanning microseconds to
//! seconds. Recording is O(1) and allocation-free after construction.

use crate::time::SimDuration;
use std::fmt;

pub(crate) const SUB_BUCKET_BITS: u32 = 6; // 64 sub-buckets per octave → ≤1.6% error
pub(crate) const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Bucket index of `value` in the shared log-bucketed scheme used by
/// both [`Histogram`] and [`crate::sketch::Sketch`]: exact buckets below
/// `SUB_BUCKETS`, then `SUB_BUCKETS` sub-buckets per power-of-two
/// octave (relative error < 1/64 for values ≥ 64).
pub(crate) fn bucket_index(value: u64) -> usize {
    // Values below SUB_BUCKETS get exact buckets in "octave zero".
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
    let octave = msb - SUB_BUCKET_BITS + 1;
    // The SUB_BUCKET_BITS bits just below the most significant bit.
    let sub = (value >> (msb - SUB_BUCKET_BITS)) as usize & (SUB_BUCKETS - 1);
    // octave >= 1 here; layout: [exact 0..64), then octaves.
    (octave as usize) * SUB_BUCKETS + sub
}

/// Representative (lower-bound) value of a bucket index.
pub(crate) fn bucket_value(index: usize) -> u64 {
    let octave = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    if octave == 0 {
        return sub as u64;
    }
    let base = 1u64 << (octave as u32 + SUB_BUCKET_BITS - 1);
    base + (sub as u64) * (base >> SUB_BUCKET_BITS)
}

/// Log-bucketed histogram of nanosecond values.
///
/// ```
/// use hl_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v * 1_000); // 1..1000 us
/// }
/// assert_eq!(h.count(), 1000);
/// let p99 = h.p99();
/// assert!((980_000..=1_000_000).contains(&p99));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// counts[octave][sub]: octave o covers [2^o, 2^(o+1)) except octave 0
    /// which covers [0, 2^SUB_BUCKET_BITS) exactly (one value per bucket).
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // 64 octaves is enough for any u64 value.
        Histogram {
            counts: vec![0; SUB_BUCKETS * 64],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a [`SimDuration`] in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean of recorded values (not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`, within bucket resolution.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        // The extremes are tracked exactly; report them exactly.
        if rank >= self.total {
            return self.max;
        }
        if rank == 1 {
            return self.min;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamp the bucket's representative value to the observed
                // extrema so p0/p100 are exact.
                return bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Shorthand percentiles.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }
    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }
    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Condensed summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.total,
            mean_ns: self.mean(),
            min_ns: self.min(),
            p50_ns: self.p50(),
            p95_ns: self.p95(),
            p99_ns: self.p99(),
            p999_ns: self.p999(),
            max_ns: self.max(),
        }
    }
}

/// A point-in-time summary of a [`Histogram`], in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean_ns: f64,
    /// Minimum.
    pub min_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

impl Summary {
    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1e3
    }
    /// 95th percentile in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.p95_ns as f64 / 1e3
    }
    /// 99th percentile in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1e3
    }
    /// Mean in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }
    /// 95th percentile in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.p95_ns as f64 / 1e6
    }
    /// 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_ns as f64 / 1e6
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={}",
            self.count,
            SimDuration::from_nanos(self.mean_ns as u64),
            SimDuration::from_nanos(self.p50_ns),
            SimDuration::from_nanos(self.p95_ns),
            SimDuration::from_nanos(self.p99_ns),
            SimDuration::from_nanos(self.max_ns),
        )
    }
}

/// Simple online counter/gauge set used for CPU and NIC utilization
/// accounting.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: std::collections::BTreeMap<String, f64>,
}

impl Counters {
    /// Add `delta` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: f64) {
        if let Some(v) = self.entries.get_mut(name) {
            *v += delta;
        } else {
            self.entries.insert(name.to_string(), delta);
        }
    }

    /// Read counter `name` (zero if absent).
    pub fn get(&self, name: &str) -> f64 {
        self.entries.get(name).copied().unwrap_or(0.0)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.value_at_quantile(0.5), 31);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = Histogram::new();
        // Exact median of a single value must be within 2/64 of it.
        for v in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let mut h1 = Histogram::new();
            h1.record(v);
            let got = h1.value_at_quantile(0.5);
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 2.0 / 64.0, "value {v} -> {got} err {err}");
        }
        h.record(1);
        assert_eq!(h.p50(), 1);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50() as f64;
        let p99 = h.p99() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.05, "p50 {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.05, "p99 {p99}");
        assert!((h.mean() - 5_000.5).abs() < 1.0);
    }

    #[test]
    fn p100_is_exact_max() {
        let mut h = Histogram::new();
        h.record(17);
        h.record(123_456);
        assert_eq!(h.value_at_quantile(1.0), 123_456);
        assert_eq!(h.value_at_quantile(0.0), 17);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100_000);
    }

    #[test]
    fn skewed_distribution_tail() {
        let mut h = Histogram::new();
        // 99 fast ops at ~10us, 1 slow at 10ms.
        for _ in 0..990 {
            h.record(10_000);
        }
        for _ in 0..10 {
            h.record(10_000_000);
        }
        assert!(h.p50() < 11_000);
        let p99 = h.value_at_quantile(0.995);
        assert!(p99 > 9_000_000, "p99.5 {p99}");
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.add("busy_ns", 10.0);
        c.add("busy_ns", 5.0);
        c.add("ctx", 1.0);
        assert_eq!(c.get("busy_ns"), 15.0);
        assert_eq!(c.get("ctx"), 1.0);
        assert_eq!(c.get("absent"), 0.0);
        assert_eq!(c.iter().count(), 2);
    }

    #[test]
    fn bucket_roundtrip_monotonic() {
        // bucket_value(bucket_index(v)) must never exceed v, and indices
        // must be monotonic in v.
        let mut vals: Vec<u64> = Vec::new();
        for shift in 0..40u32 {
            for off in [0u64, 1, 3] {
                vals.push((1u64 << shift) + off);
            }
        }
        vals.sort_unstable();
        vals.dedup();
        let mut last_idx = 0usize;
        for v in vals {
            let idx = bucket_index(v);
            assert!(bucket_value(idx) <= v, "v={v}");
            assert!(idx >= last_idx, "non-monotonic at v={v}");
            last_idx = idx;
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Quantiles are monotone non-decreasing in q, and every
            /// quantile lies within the recorded min..=max range.
            #[test]
            fn quantiles_are_monotone(values in proptest::collection::vec(1u64..10_000_000_000, 1..200)) {
                let mut h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let lo = *values.iter().min().unwrap();
                let hi = *values.iter().max().unwrap();
                let mut prev = 0u64;
                for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
                    let v = h.value_at_quantile(q);
                    prop_assert!(v >= prev, "quantile({q}) = {v} < {prev}");
                    prop_assert!(v >= lo && v <= hi, "quantile({q}) = {v} outside [{lo}, {hi}]");
                    prev = v;
                }
                prop_assert_eq!(h.count(), values.len() as u64);
            }

            /// Merging two histograms is observationally equivalent to
            /// recording all values into one.
            #[test]
            fn merge_equals_union(
                a in proptest::collection::vec(1u64..1_000_000_000, 0..100),
                b in proptest::collection::vec(1u64..1_000_000_000, 0..100),
            ) {
                let mut ha = Histogram::new();
                let mut hb = Histogram::new();
                let mut hu = Histogram::new();
                for &v in &a { ha.record(v); hu.record(v); }
                for &v in &b { hb.record(v); hu.record(v); }
                ha.merge(&hb);
                prop_assert_eq!(ha.count(), hu.count());
                for q in [0.0, 0.5, 0.99, 1.0] {
                    prop_assert_eq!(ha.value_at_quantile(q), hu.value_at_quantile(q));
                }
            }
        }
    }
}
