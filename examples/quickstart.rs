//! Quickstart: build a 3-node HyperLoop group and run each group
//! primitive once, watching replica CPUs stay idle.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // A cluster of three hosts: host 0 is the client (chain head),
    // hosts 1-2 are replicas. Everything — NVM, RDMA NICs, CPUs, the
    // fabric — is simulated deterministically from the seed.
    let (mut world, mut engine) = ClusterBuilder::new(3).arena_size(4 << 20).seed(7).build();

    // Wire the group: per-primitive QP chains, loopback QPs, and
    // pre-posted WQE rings whose descriptors the client will rewrite
    // remotely (the paper's core trick).
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 1 << 20,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut world);
    replica::start_replenishers(&group, &mut world, &mut engine);
    let client = HyperLoopClient::new(group, &mut world);

    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

    // 1. gWRITE + interleaved gFLUSH: replicate durably.
    let l = log.clone();
    client
        .gwrite(
            &mut world,
            &mut engine,
            0x100,
            b"hello, hyperloop!",
            true,
            Box::new(move |_w, _e, r| {
                l.borrow_mut().push(format!(
                    "gWRITE   done in {} (durable on all members)",
                    r.latency
                ))
            }),
        )
        .unwrap();
    engine.run_until(&mut world, SimTime::from_nanos(1_000_000));

    // 2. gCAS: take a group lock; the result map shows each member's
    //    original value.
    let l = log.clone();
    client
        .gcas(
            &mut world,
            &mut engine,
            0x800,
            0,
            42,
            0b111,
            Box::new(move |_w, _e, r| {
                l.borrow_mut().push(format!(
                    "gCAS     done in {}, result map {:?}",
                    r.latency, r.results
                ))
            }),
        )
        .unwrap();
    engine.run_until(&mut world, SimTime::from_nanos(2_000_000));

    // 3. gMEMCPY: every member's NIC copies log → database locally.
    let l = log.clone();
    client
        .gmemcpy(
            &mut world,
            &mut engine,
            0x100,
            0x9000,
            17,
            true,
            Box::new(move |_w, _e, r| {
                l.borrow_mut()
                    .push(format!("gMEMCPY  done in {}", r.latency))
            }),
        )
        .unwrap();
    engine.run_until(&mut world, SimTime::from_nanos(3_000_000));

    for line in log.borrow().iter() {
        println!("{line}");
    }

    // Verify the replicas really hold the data — written entirely by
    // their NICs.
    for host in 1..3 {
        let g = client.group().borrow();
        let addr = g.member_addr(host, 0x9000);
        let bytes = world.hosts[host].mem.read_vec(addr, 17).unwrap();
        println!(
            "replica {host}: db bytes = {:?} (durable: {})",
            String::from_utf8_lossy(&bytes),
            world.hosts[host].mem.is_durable(addr, 17),
        );
    }

    // The headline property: replica CPUs never entered the critical
    // path.
    let now = engine.now();
    for host in 1..3 {
        println!(
            "replica {host}: CPU utilization {:.4} (only ring replenishment)",
            world.hosts[host].cpu.host_utilization(now)
        );
    }
}
