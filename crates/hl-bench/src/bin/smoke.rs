//! Quick calibration smoke-run for the microbenchmarks.
//!
//! Set `HL_TRACE_OUT=/path/trace.json` to additionally run a small
//! telemetry-enabled pass per backend and export the merged causal
//! spans as Chrome trace-event JSON (load it in Perfetto or
//! `chrome://tracing`), plus the per-hop latency attribution and the
//! labelled metrics registry on stdout.

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};

fn main() {
    let trace_out = std::env::var("HL_TRACE_OUT").ok();
    for backend in [
        Backend::HyperLoop,
        Backend::NaiveEvent,
        Backend::NaivePolling { pinned: true },
    ] {
        let cfg = MicroCfg {
            backend,
            ops: 2000,
            warmup: 100,
            op: MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let r = run_micro(&cfg);
        println!(
            "{:22} avg={:8.1}us p95={:8.1}us p99={:8.1}us kops={:8.1} cpu={:.3} cores  [{:.1?} real]",
            backend.name(),
            r.latency.mean_us(),
            r.latency.p95_us(),
            r.latency.p99_us(),
            r.kops,
            r.datapath_cores,
            t0.elapsed()
        );
    }

    if let Some(path) = trace_out {
        // A smaller traced pass: spans for every op of two backends in
        // one file keeps the export readable in the trace viewer.
        for (backend, suffix) in [
            (Backend::HyperLoop, "hyperloop"),
            (Backend::NaiveEvent, "naive"),
        ] {
            let r = run_micro(&MicroCfg {
                backend,
                ops: 200,
                warmup: 20,
                op: MicroOp::GWrite {
                    size: 1024,
                    flush: false,
                },
                telemetry: true,
                ..Default::default()
            });
            let tel = r.telemetry.expect("telemetry was enabled");
            let out = out_path(&path, suffix);
            std::fs::write(&out, &tel.chrome_trace).expect("write trace file");
            println!("\n=== {} attribution ===", backend.name());
            print!("{}", tel.attribution);
            println!("trace: {out}");
        }
    }
}

/// `/p/trace.json` + `hyperloop` -> `/p/trace.hyperloop.json`.
fn out_path(base: &str, suffix: &str) -> String {
    match base.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{suffix}.{ext}"),
        None => format!("{base}.{suffix}"),
    }
}
