//! Timeline report: renders p50/p99-over-time with fault / SLO /
//! transition marks overlaid, for the two scenarios that exercise the
//! whole observability pipeline end to end:
//!
//! * the SLO-excursion round trip ([`hl_bench::gray::run_excursion_case`]):
//!   supervised p99 excursion → `slo:fire:` → degrade → heal → resolve
//!   → re-promote, all on one group;
//! * the shard timeline ([`hl_bench::timeline::run_shard_timeline`]):
//!   per-shard latency series where only the faulted shard's bars move.
//!
//! Writes `results/timeline_excursion.txt`,
//! `results/timeseries_excursion.json`, `results/timeline_shards.txt`
//! and `results/timeseries_shards.json`. `HL_TIMELINE_OPS` overrides
//! the open-loop op count (CI uses a small value).

use hl_bench::gray::run_excursion_case;
use hl_bench::timeline::{run_shard_timeline, TimelineCfg};

fn main() {
    let ops: usize = std::env::var("HL_TIMELINE_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(600);

    std::fs::create_dir_all("results").expect("create results/");

    let exc = run_excursion_case(6006, ops.max(500));
    println!("{}", exc.report);
    println!("{}", exc.timeline);
    let mut txt = String::new();
    txt.push_str("# SLO excursion: supervised p99 over time, marks overlaid\n");
    txt.push_str(&format!("# {}\n\n", exc.report));
    txt.push_str(&exc.timeline);
    std::fs::write("results/timeline_excursion.txt", &txt)
        .expect("write results/timeline_excursion.txt");
    std::fs::write("results/timeseries_excursion.json", &exc.snapshot_json)
        .expect("write results/timeseries_excursion.json");
    std::fs::write("results/timeseries_excursion.csv", &exc.snapshot_csv)
        .expect("write results/timeseries_excursion.csv");

    let cfg = TimelineCfg {
        ops_per_shard: ops.max(300),
        ..Default::default()
    };
    let shard = run_shard_timeline(&cfg);
    println!("{}", shard.report);
    println!("{}", shard.timeline);
    let mut txt = String::new();
    txt.push_str("# Shard timeline: per-shard p50/p99 over time, fault marks overlaid\n");
    txt.push_str(&format!("# {}\n\n", shard.report));
    txt.push_str(&shard.timeline);
    std::fs::write("results/timeline_shards.txt", &txt).expect("write results/timeline_shards.txt");
    std::fs::write("results/timeseries_shards.json", &shard.snapshot_json)
        .expect("write results/timeseries_shards.json");

    println!(
        "wrote results/timeline_{{excursion,shards}}.txt and results/timeseries_{{excursion,shards}} snapshots"
    );
}
