//! The parallel campaign runner must be a pure wall-clock optimisation:
//! fanning seeds across OS threads may change *when* a campaign runs,
//! never *what* it produces. For each seed, every artifact — invariant
//! report, filtered trace stream, Chrome trace export — must be
//! byte-identical to the sequential run, and the merge must preserve
//! seed order.

use hl_bench::campaign::{run_campaigns_parallel, run_campaigns_sequential};

#[test]
fn parallel_campaigns_are_byte_identical_to_sequential() {
    let seeds = [103u64, 107, 111];
    let seq = run_campaigns_sequential(&seeds);
    // Three real worker threads even on a single-core box: the atomic
    // work-claiming makes seed->thread assignment nondeterministic,
    // which is exactly what must not leak into the artifacts.
    let par = run_campaigns_parallel(&seeds, 3);

    assert_eq!(seq.len(), seeds.len());
    assert_eq!(par.len(), seeds.len());
    for ((a, b), &seed) in seq.iter().zip(&par).zip(&seeds) {
        assert_eq!(a.seed, seed, "sequential results out of seed order");
        assert_eq!(b.seed, seed, "parallel merge broke seed order");
        assert!(
            !a.trace.is_empty(),
            "seed {seed}: no trace entries; byte-identity check is vacuous"
        );
        assert!(
            a.chrome_trace.starts_with("{\"traceEvents\":["),
            "seed {seed}: export is not Chrome trace-event JSON"
        );
        assert_eq!(
            a.invariants, b.invariants,
            "seed {seed}: invariant reports diverged"
        );
        assert_eq!(a.trace, b.trace, "seed {seed}: trace streams diverged");
        assert_eq!(
            a.chrome_trace, b.chrome_trace,
            "seed {seed}: Chrome traces diverged"
        );
    }
    assert_eq!(seq, par, "parallel artifacts differ from sequential");
}
