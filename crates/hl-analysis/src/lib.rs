//! # hl-analysis — determinism lints for the simulator workspace
//!
//! The reproduction's core guarantee is that the simulator is
//! *deterministic*: the same seed yields a byte-identical event trace
//! (the invariant the chaos suite asserts). That guarantee is one
//! stray `HashMap` iteration or wall-clock read away from silently
//! breaking. This crate is a dependency-free, `syn`-free static checker
//! that walks the sim-core crates and enforces the rules the guarantee
//! rests on:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `hash-collections` | `std::collections::HashMap`/`HashSet` anywhere in sim code (RandomState iteration order) |
//! | `wall-clock` | `std::time::Instant`/`SystemTime` (host clock) |
//! | `os-entropy` | `thread_rng`/`OsRng`/`getrandom`/`RandomState` (unseeded randomness) |
//! | `thread-spawn` | `std::thread::spawn` (host scheduling order) |
//! | `float-time` | float-tainted arguments to `SimTime`/`SimDuration` constructors |
//! | `panic-in-handler` | `panic!`/`unwrap`/`expect` inside NIC packet/doorbell handlers |
//!
//! Escape hatch: `// hl-lint: allow(<rule>)` on the offending line or
//! the line above, for sites audited to be deterministic despite the
//! pattern (each allow should say *why* in the surrounding comment).
//!
//! Run with `cargo run -p hl-analysis -- check`; CI runs it on every
//! push. The tool exits non-zero when any finding survives.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{check_source, Finding, RULES};

use std::path::{Path, PathBuf};

/// The sim-core crates the determinism rules apply to. Tooling
/// (`hl-analysis` itself), wall-clock benchmarks (`hl-bench`) and the
/// workload generator (`hl-ycsb`, which only feeds the sim through
/// seeded streams) are deliberately out of scope.
pub const SIM_CRATES: &[&str] = &[
    "hl-sim",
    "hl-nvm",
    "hl-fabric",
    "hl-cpu",
    "hl-rnic",
    "hl-cluster",
    "hyperloop",
    "hl-store",
];

/// Recursively collect `.rs` files under `dir`, sorted for stable
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every sim-core crate's `src/` tree under workspace `root`.
/// Returns all findings; an I/O error (missing crate) is itself an
/// error, so a renamed crate cannot silently drop out of coverage.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for krate in SIM_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for f in files {
            let text = std::fs::read_to_string(&f)?;
            let label = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .into_owned();
            findings.extend(check_source(&label, &text));
        }
    }
    Ok(findings)
}

/// Locate the workspace root from the current directory (walk up until
/// a `Cargo.toml` with a `[workspace]` table is found).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
