// Fixture: `float-time` fires when a float-tainted expression flows
// into a SimTime/SimDuration constructor, and not on integer math.
fn bad(ns: f64) -> SimDuration {
    SimDuration::from_nanos(ns.round() as u64)
}

fn fine(ns: u64) -> SimDuration {
    SimDuration::from_nanos(ns + 17)
}

fn vetted(ns: f64) -> SimTime {
    // Seeded jitter, audited: hl-lint: allow(float-time)
    SimTime::from_nanos((ns * 1.5) as u64)
}
