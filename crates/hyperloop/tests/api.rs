//! Tests for the storage-facing API: replicated write-ahead log and
//! group locks.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimTime};
use hyperloop::api::{
    lockword, GroupClient, GroupLock, LockOutcome, LogLayout, LogRecord, RedoEntry, ReplicatedLog,
};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

fn setup() -> (World, Engine<World>, Rc<HyperLoopClient>) {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(4 << 20).seed(5).build();
    let cfg = GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 1 << 20,
        ring_slots: 64,
        ..Default::default()
    };
    let group = GroupBuilder::new(cfg).build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));
    (w, eng, client)
}

fn flag() -> (Rc<RefCell<u32>>, hyperloop::OnDone) {
    let f = Rc::new(RefCell::new(0u32));
    let f2 = f.clone();
    (f, Box::new(move |_w, _e, _r| *f2.borrow_mut() += 1))
}

#[test]
fn log_record_roundtrip() {
    let rec = LogRecord {
        entries: vec![
            RedoEntry {
                db_offset: 0x10,
                data: b"value-a".to_vec(),
            },
            RedoEntry {
                db_offset: 0x200,
                data: vec![9u8; 100],
            },
        ],
    };
    let enc = rec.encode();
    assert_eq!(enc.len() as u64, rec.encoded_len());
    assert_eq!(LogRecord::decode(&enc), Some(rec));
    assert_eq!(LogRecord::decode(&[1, 2]), None);
}

#[test]
fn append_replicates_record_and_tail_pointer() {
    let (mut w, mut eng, client) = setup();
    let layout = LogLayout {
        log_off: 0,
        log_cap: 64 << 10,
        db_off: 128 << 10,
    };
    let mut log = ReplicatedLog::new(client.clone(), layout);
    let rec = LogRecord {
        entries: vec![RedoEntry {
            db_offset: 8,
            data: b"hello-db".to_vec(),
        }],
    };
    let (done, cb) = flag();
    log.append(&mut w, &mut eng, &rec, cb).unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(5_000_000));
    assert_eq!(*done.borrow(), 1);

    // The encoded record sits at record-area offset 0 on every member,
    // durably; the tail control word (offset 8) equals the record size.
    let enc = rec.encode();
    for m in 0..3 {
        let host = if m == 0 { 0 } else { m };
        let addr = client.member_addr(m, 64);
        assert_eq!(
            w.hosts[host].mem.read_vec(addr, enc.len()).unwrap(),
            enc,
            "member {m} record"
        );
        let tail = w.hosts[host]
            .mem
            .read_u64(client.member_addr(m, 8))
            .unwrap();
        assert_eq!(tail, enc.len() as u64, "member {m} tail");
        assert!(w.hosts[host].mem.is_durable(addr, enc.len()));
    }
    assert_eq!(log.cursors(), (0, enc.len() as u64));
}

#[test]
fn execute_and_advance_applies_to_db_everywhere() {
    let (mut w, mut eng, client) = setup();
    let layout = LogLayout {
        log_off: 0,
        log_cap: 64 << 10,
        db_off: 128 << 10,
    };
    let mut log = ReplicatedLog::new(client.clone(), layout);
    let rec = LogRecord {
        entries: vec![
            RedoEntry {
                db_offset: 0,
                data: b"alpha".to_vec(),
            },
            RedoEntry {
                db_offset: 0x100,
                data: b"beta".to_vec(),
            },
        ],
    };
    let (a_done, a_cb) = flag();
    log.append(&mut w, &mut eng, &rec, a_cb).unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(5_000_000));
    assert_eq!(*a_done.borrow(), 1);

    let (e_done, e_cb) = flag();
    log.execute_and_advance(&mut w, &mut eng, e_cb).unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(10_000_000));
    assert_eq!(*e_done.borrow(), 1);

    for m in 0..3 {
        let host = if m == 0 { 0 } else { m };
        let a = client.member_addr(m, 128 << 10);
        let b = client.member_addr(m, (128 << 10) + 0x100);
        assert_eq!(
            w.hosts[host].mem.read(a, 5).unwrap(),
            b"alpha",
            "member {m}"
        );
        assert_eq!(w.hosts[host].mem.read(b, 4).unwrap(), b"beta", "member {m}");
        assert!(w.hosts[host].mem.is_durable(a, 5));
        // Head pointer advanced to tail.
        let head = w.hosts[host]
            .mem
            .read_u64(client.member_addr(m, 0))
            .unwrap();
        let tail = w.hosts[host]
            .mem
            .read_u64(client.member_addr(m, 8))
            .unwrap();
        assert_eq!(head, tail, "member {m} truncated");
    }
    let (h, t) = log.cursors();
    assert_eq!(h, t);
}

#[test]
fn log_backpressures_when_full() {
    let (mut w, mut eng, client) = setup();
    let layout = LogLayout {
        log_off: 0,
        log_cap: 256, // tiny
        db_off: 128 << 10,
    };
    let mut log = ReplicatedLog::new(client.clone(), layout);
    let rec = LogRecord {
        entries: vec![RedoEntry {
            db_offset: 0,
            data: vec![1u8; 100],
        }],
    };
    let (_, cb1) = flag();
    log.append(&mut w, &mut eng, &rec, cb1).unwrap();
    let (_, cb2) = flag();
    log.append(&mut w, &mut eng, &rec, cb2).unwrap();
    // Third append exceeds capacity.
    let (_, cb3) = flag();
    assert!(log.append(&mut w, &mut eng, &rec, cb3).is_err());
    eng.run_until(&mut w, SimTime::from_nanos(5_000_000));

    // After execute (truncation) there is room again.
    let (done, cbe) = flag();
    log.execute_and_advance(&mut w, &mut eng, cbe).unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(10_000_000));
    assert_eq!(*done.borrow(), 1);
    let (_, cb4) = flag();
    log.append(&mut w, &mut eng, &rec, cb4).unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(15_000_000));
}

fn lock_sink(log: &Rc<RefCell<Vec<LockOutcome>>>) -> hyperloop::api::OnLock {
    let log = log.clone();
    Box::new(move |_w, _e, o| log.borrow_mut().push(o))
}

#[test]
fn wr_lock_acquire_and_release() {
    let (mut w, mut eng, client) = setup();
    let lock = GroupLock::new(client.clone(), 0x900, 17);
    let outcomes = Rc::new(RefCell::new(Vec::new()));

    lock.wr_lock(&mut w, &mut eng, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(5_000_000));
    assert_eq!(outcomes.borrow()[0], LockOutcome::Acquired);
    // Lock word on every member is WRITER|17.
    for m in 0..3 {
        let host = if m == 0 { 0 } else { m };
        let v = w.hosts[host]
            .mem
            .read_u64(client.member_addr(m, 0x900))
            .unwrap();
        assert_eq!(v, lockword::writer(17), "member {m}");
    }

    // A second writer fails and rolls back nothing (all were held).
    let lock2 = GroupLock::new(client.clone(), 0x900, 23);
    lock2
        .wr_lock(&mut w, &mut eng, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(10_000_000));
    assert_eq!(outcomes.borrow()[1], LockOutcome::Contended);

    // Release; then the second writer succeeds.
    lock.wr_unlock(&mut w, &mut eng, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(15_000_000));
    lock2
        .wr_lock(&mut w, &mut eng, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(20_000_000));
    assert_eq!(outcomes.borrow()[3], LockOutcome::Acquired);
}

#[test]
fn partial_wr_lock_is_rolled_back() {
    let (mut w, mut eng, client) = setup();
    // Pre-claim the lock word on replica 2 only (member index 2) by
    // writing directly — simulating a racing holder.
    let addr = client.member_addr(2, 0x900);
    w.hosts[2]
        .mem
        .write_u64(addr, lockword::writer(99))
        .unwrap();

    let lock = GroupLock::new(client.clone(), 0x900, 17);
    let outcomes = Rc::new(RefCell::new(Vec::new()));
    lock.wr_lock(&mut w, &mut eng, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(10_000_000));
    assert_eq!(outcomes.borrow()[0], LockOutcome::Contended);
    // The members that briefly swapped were undone: client + replica 1
    // are FREE again, replica 2 still belongs to 99.
    for m in 0..2 {
        let host = if m == 0 { 0 } else { m };
        let v = w.hosts[host]
            .mem
            .read_u64(client.member_addr(m, 0x900))
            .unwrap();
        assert_eq!(v, lockword::FREE, "member {m} rolled back");
    }
    let v = w.hosts[2].mem.read_u64(addr).unwrap();
    assert_eq!(v, lockword::writer(99));
}

#[test]
fn read_locks_count_and_block_writers() {
    let (mut w, mut eng, client) = setup();
    let lock = GroupLock::new(client.clone(), 0xa00, 1);
    let outcomes = Rc::new(RefCell::new(Vec::new()));

    // Two readers on member 1.
    lock.rd_lock(&mut w, &mut eng, 1, 3, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(5_000_000));
    lock.rd_lock(&mut w, &mut eng, 1, 3, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(10_000_000));
    assert_eq!(
        *outcomes.borrow(),
        vec![LockOutcome::Acquired, LockOutcome::Acquired]
    );
    let v = w.hosts[1]
        .mem
        .read_u64(client.member_addr(1, 0xa00))
        .unwrap();
    assert_eq!(v, lockword::readers(2));

    // A writer is blocked while member 1 has readers.
    lock.wr_lock(&mut w, &mut eng, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(15_000_000));
    assert_eq!(outcomes.borrow()[2], LockOutcome::Contended);

    // Readers release; writer succeeds.
    lock.rd_unlock(&mut w, &mut eng, 1, 3, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(20_000_000));
    lock.rd_unlock(&mut w, &mut eng, 1, 3, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(25_000_000));
    lock.wr_lock(&mut w, &mut eng, lock_sink(&outcomes))
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(30_000_000));
    assert_eq!(*outcomes.borrow().last().unwrap(), LockOutcome::Acquired);
}
