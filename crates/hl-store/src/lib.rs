//! # hl-store — replicated storage applications on HyperLoop
//!
//! The paper's two case studies, rebuilt as clean-room engines with the
//! same transaction structure:
//!
//! * [`kv`] — **kvlite**, RocksDB-like: in-memory table + replicated
//!   durable write-ahead log; the write critical path is exactly one
//!   `Append` (gWRITE + gFLUSH); replicas replay their own log copy off
//!   the critical path for eventually-consistent reads.
//! * [`doc`] — **doclite**, MongoDB-like: fixed-slot documents, journal
//!   `Append` + `ExecuteAndAdvance` under a group write lock for strong
//!   consistency; plus [`doc::native`], the conventional CPU-driven
//!   primary/secondary replication used as the Figures 2 & 12 baseline.
//!
//! Both engines are generic over [`hyperloop::api::GroupClient`], so the
//! same code runs on HyperLoop and on the Naïve-RDMA baseline.

#![warn(missing_docs)]

pub mod doc;
pub mod kv;
pub mod sharded;
