//! # hl-bench — the experiment harness
//!
//! Reproduces every figure and table of the paper's evaluation (§6) on
//! the simulated testbed. Each `src/bin/fig*.rs` regenerates one paper
//! artifact and prints the same rows/series the paper reports;
//! `EXPERIMENTS.md` records paper-vs-measured.
//!
//! * [`micro`] — Figures 8/9/10, Table 2 (primitive latency, throughput,
//!   CPU, group-size scaling).
//! * [`apps`] — Figure 2 (native MongoDB-style multi-tenancy), Figure 11
//!   (kvlite/RocksDB), Figure 12 (doclite/MongoDB across YCSB mixes).
//! * [`gray`] — gray-failure campaign: tail latency per impairment
//!   class per backend, the crashed-host live-rejoin case, and the
//!   SLO-excursion round trip.
//! * [`timeline`] — per-shard p50/p99-over-time rendering with fault
//!   marks overlaid.
//! * [`table`] — plain-text table rendering.

#![warn(missing_docs)]

pub mod apps;
pub mod campaign;
pub mod gray;
pub mod micro;
pub mod shard;
pub mod table;
pub mod timeline;
