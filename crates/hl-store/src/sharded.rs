//! Shard-partitioned store frontends.
//!
//! A sharded deployment opens one [`KvDb`] / [`DocStore`] per shard —
//! each backed by its own HyperLoop group with its own log, slots and
//! lock word — and these thin frontends route every operation to the
//! owning shard with the same deterministic [`HashRing`] the client
//! router uses. Cross-shard reads/scans are merges of per-shard state;
//! there are no cross-shard transactions (each key lives entirely
//! within one group, as in the paper's per-group scoping).

use crate::doc::{DocStore, Document};
use crate::kv::KvDb;
use hl_cluster::shard::HashRing;
use hl_cluster::World;
use hl_sim::Engine;
use hyperloop::api::GroupClient;
use hyperloop::{Backpressure, OnDone};

/// A key-value store partitioned over per-shard [`KvDb`] instances.
pub struct ShardedKv<C: GroupClient> {
    ring: HashRing,
    shards: Vec<KvDb<C>>,
}

impl<C: GroupClient + 'static> ShardedKv<C> {
    /// Build from one opened [`KvDb`] per shard (shard id = index).
    pub fn new(shards: Vec<KvDb<C>>) -> Self {
        assert!(!shards.is_empty());
        ShardedKv {
            ring: HashRing::new(shards.len()),
            shards,
        }
    }

    /// Build with an explicit ring (shared with the op router).
    pub fn with_ring(ring: HashRing, shards: Vec<KvDb<C>>) -> Self {
        assert_eq!(ring.n_shards(), shards.len());
        ShardedKv { ring, shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.ring.shard_of(key)
    }

    /// The per-shard store (e.g. for log cursors or replica reads).
    pub fn shard(&self, sid: usize) -> &KvDb<C> {
        &self.shards[sid]
    }

    /// Mutable access to a per-shard store.
    pub fn shard_mut(&mut self, sid: usize) -> &mut KvDb<C> {
        &mut self.shards[sid]
    }

    /// Durable put, routed to the owning shard's replicated log.
    pub fn put(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        value: &[u8],
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let sid = self.ring.shard_of(key);
        self.shards[sid].put(w, eng, key, value, done)
    }

    /// Durable delete, routed to the owning shard.
    pub fn delete(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let sid = self.ring.shard_of(key);
        self.shards[sid].delete(w, eng, key, done)
    }

    /// Read from the owning shard's client memtable.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.shards[self.ring.shard_of(key)].get(key)
    }

    /// Eventually-consistent read from replica `replica` of the owning
    /// shard's group.
    pub fn get_at_replica(&self, replica: usize, key: &[u8]) -> Option<Vec<u8>> {
        self.shards[self.ring.shard_of(key)].get_at_replica(replica, key)
    }

    /// Total keys across all shard memtables.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Ordered scan merged across shards: collects each shard's scan
    /// from `from` and returns the `limit` smallest keys overall.
    pub fn scan(&self, from: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for s in &self.shards {
            all.extend(
                s.scan(from, limit)
                    .into_iter()
                    .map(|(k, v)| (k.to_vec(), v.to_vec())),
            );
        }
        all.sort();
        all.truncate(limit);
        all
    }
}

/// A document store partitioned over per-shard [`DocStore`] instances;
/// documents route by id.
pub struct ShardedDoc<C: GroupClient> {
    ring: HashRing,
    shards: Vec<DocStore<C>>,
}

impl<C: GroupClient + 'static> ShardedDoc<C> {
    /// Build from one opened [`DocStore`] per shard (shard id = index).
    pub fn new(shards: Vec<DocStore<C>>) -> Self {
        assert!(!shards.is_empty());
        ShardedDoc {
            ring: HashRing::new(shards.len()),
            shards,
        }
    }

    /// Build with an explicit ring (shared with the op router).
    pub fn with_ring(ring: HashRing, shards: Vec<DocStore<C>>) -> Self {
        assert_eq!(ring.n_shards(), shards.len());
        ShardedDoc { ring, shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning document `id`.
    pub fn shard_of(&self, id: u64) -> usize {
        self.ring.shard_of_u64(id)
    }

    /// The per-shard store.
    pub fn shard(&self, sid: usize) -> &DocStore<C> {
        &self.shards[sid]
    }

    /// Journaled upsert routed to the owning shard (strong consistency
    /// under that shard's group lock when enabled).
    pub fn upsert(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        doc: &Document,
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let sid = self.shard_of(doc.id);
        self.shards[sid].upsert(w, eng, doc, done)
    }

    /// Read `id` from the owning shard's client copy.
    pub fn read(&self, w: &mut World, id: u64) -> Option<Document> {
        self.shards[self.shard_of(id)].read(w, id)
    }

    /// Read `id` from member `member` of the owning shard's group.
    pub fn read_at(&self, w: &mut World, member: usize, id: u64) -> Option<Document> {
        self.shards[self.shard_of(id)].read_at(w, member, id)
    }

    /// Committed operations summed across shards.
    pub fn committed(&self) -> u64 {
        self.shards.iter().map(|s| s.committed()).sum()
    }
}
