//! Client-side operation deadlines with exponential backoff and
//! idempotent re-issue.
//!
//! The raw [`HyperLoopClient`] completes an operation only when the
//! group ACK arrives; a fault anywhere along the chain leaves the
//! caller waiting forever. [`RetryClient`] wraps the client with a
//! per-attempt deadline: an attempt that does not ACK in time is
//! re-issued (after exponential backoff) until the budget is exhausted,
//! at which point the caller gets a *typed* error — an operation issued
//! through this wrapper never hangs.
//!
//! Re-issue is safe because the group primitives are idempotent at the
//! replication level:
//!
//! * gWRITE / gFLUSH / gMEMCPY re-apply the same bytes to the same
//!   offsets — replaying them is a no-op on members that already
//!   executed the first attempt.
//! * gCAS is *not* naturally idempotent (the first attempt may have
//!   swapped already), so a successful re-issue normalizes the result
//!   map: a member reporting `orig == swp` is taken as proof the prior
//!   attempt succeeded there and its original value is reported as
//!   `cmp`. This matches the usual RDMA-atomic retry convention.
//!
//! The wrapper holds the underlying client in a shared cell so recovery
//! can [`RetryClient::swap`] in the client of a rebuilt chain; attempts
//! that time out mid-reconfiguration simply re-issue on the new chain.

use crate::api::GroupClient;
use crate::group::{Backpressure, OnDone, OpResult};
use crate::naive::NaiveClient;
use crate::HyperLoopClient;
use hl_cluster::World;
use hl_sim::{Bytes, Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The replication engine a [`RetryClient`] currently drives: the
/// offloaded HyperLoop chain, or the CPU-forwarding Naïve fallback the
/// health monitor degrades to when the chain is sick. Supervised
/// operations are backend-agnostic — an attempt that times out on one
/// backend simply re-issues on whatever backend is installed by then,
/// which is exactly how in-flight ops survive a degrade or re-promote
/// transition.
#[derive(Clone)]
pub enum Backend {
    /// NIC-offloaded chain replication.
    Hyper(HyperLoopClient),
    /// CPU-driven Naïve forwarding (degraded mode).
    Naive(NaiveClient),
}

impl Backend {
    /// True while the offloaded chain is serving.
    pub fn is_offloaded(&self) -> bool {
        matches!(self, Backend::Hyper(_))
    }

    /// The HyperLoop client, if this backend is offloaded.
    pub fn as_hyper(&self) -> Option<&HyperLoopClient> {
        match self {
            Backend::Hyper(c) => Some(c),
            Backend::Naive(_) => None,
        }
    }

    /// The Naïve client, if this backend is degraded.
    pub fn as_naive(&self) -> Option<&NaiveClient> {
        match self {
            Backend::Hyper(_) => None,
            Backend::Naive(c) => Some(c),
        }
    }
}

impl GroupClient for Backend {
    fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        match self {
            Backend::Hyper(c) => c.gwrite(w, eng, offset, data, flush, done),
            Backend::Naive(c) => c.gwrite(w, eng, offset, data, flush, done),
        }
    }
    fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        match self {
            Backend::Hyper(c) => c.gmemcpy(w, eng, src_off, dst_off, len, flush, done),
            Backend::Naive(c) => c.gmemcpy(w, eng, src_off, dst_off, len, flush, done),
        }
    }
    fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        match self {
            Backend::Hyper(c) => c.gcas(w, eng, offset, cmp, swp, exec_map, done),
            Backend::Naive(c) => c.gcas(w, eng, offset, cmp, swp, exec_map, done),
        }
    }
    fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        match self {
            Backend::Hyper(c) => c.gflush(w, eng, offset, len, done),
            Backend::Naive(c) => c.gflush(w, eng, offset, len, done),
        }
    }
    fn group_size(&self) -> usize {
        match self {
            Backend::Hyper(c) => GroupClient::group_size(c),
            Backend::Naive(c) => GroupClient::group_size(c),
        }
    }
    fn member_addr(&self, m: usize, offset: u64) -> u64 {
        match self {
            Backend::Hyper(c) => GroupClient::member_addr(c, m, offset),
            Backend::Naive(c) => GroupClient::member_addr(c, m, offset),
        }
    }
    fn member_host(&self, m: usize) -> hl_fabric::HostId {
        match self {
            Backend::Hyper(c) => GroupClient::member_host(c, m),
            Backend::Naive(c) => GroupClient::member_host(c, m),
        }
    }
}

/// Supervision counters shared by every clone of a [`RetryClient`].
/// Always live (unlike the telemetry registry, which is opt-in) so the
/// health monitor can score a chain without telemetry overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Operations settled successfully.
    pub acked: u64,
    /// Attempts re-issued after a missed per-attempt deadline.
    pub reissues: u64,
    /// Issues refused by the group (paused or out of credits).
    pub backpressured: u64,
    /// Operations that exhausted the attempt budget.
    pub deadline_exceeded: u64,
    /// Per-attempt deadlines that expired without an ACK.
    pub attempt_timeouts: u64,
}

/// Callback fired when the stall probe crosses its threshold.
pub type OnSuspect = Box<dyn FnMut(&mut World, &mut Engine<World>)>;

/// Client-side end-to-end stall probe: a mid-chain NIC stall eats
/// fire-and-forget packets without producing a transport-error CQE
/// anywhere the client can see, so the only end-to-end signal is ACK
/// silence. The probe counts *consecutive* attempt-deadline expiries
/// with no intervening success; at the threshold it fires once per
/// episode (re-armed by the next successful ACK).
struct ProbeState {
    threshold: u32,
    consecutive: u32,
    episode_open: bool,
    on_suspect: Option<OnSuspect>,
}

/// Typed failure of a deadline-supervised operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// Every attempt either timed out or was refused for backpressure
    /// within the attempt budget.
    DeadlineExceeded {
        /// Attempts made (including refused issues).
        attempts: u32,
    },
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::DeadlineExceeded { attempts } => {
                write!(f, "operation deadline exceeded after {attempts} attempts")
            }
        }
    }
}
impl std::error::Error for OpError {}

/// Completion callback carrying success or a typed error.
pub type OnOutcome = Box<dyn FnOnce(&mut World, &mut Engine<World>, Result<OpResult, OpError>)>;

/// Deadline / retry knobs.
#[derive(Debug, Clone)]
pub struct DeadlinePolicy {
    /// Per-attempt ACK deadline.
    pub deadline: SimDuration,
    /// Total attempts before the typed failure.
    pub max_attempts: u32,
    /// Backoff before attempt `k+1` is `backoff << k`, capped.
    pub backoff: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        // The defaults span a heartbeat detection + chain rebuild
        // (tens of milliseconds) before giving up.
        DeadlinePolicy {
            deadline: SimDuration::from_millis(2),
            max_attempts: 10,
            backoff: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(10),
        }
    }
}

impl DeadlinePolicy {
    fn backoff_for(&self, attempt: u32) -> SimDuration {
        let mut b = self.backoff.as_nanos();
        for _ in 0..attempt {
            b = (b * 2).min(self.backoff_cap.as_nanos());
        }
        SimDuration::from_nanos(b)
    }
}

/// A group operation in re-issuable form.
#[derive(Debug, Clone)]
pub enum GroupOp {
    /// gWRITE (optionally durable before ACK).
    Write {
        /// Offset within the replicated region.
        offset: u64,
        /// Bytes to replicate; refcounted so each retry re-issue shares
        /// the one payload buffer instead of cloning it.
        data: Bytes,
        /// Interleave a gFLUSH.
        flush: bool,
    },
    /// Standalone gFLUSH.
    Flush {
        /// Offset within the replicated region.
        offset: u64,
        /// Range length.
        len: u32,
    },
    /// gMEMCPY within the replicated region on every member.
    Memcpy {
        /// Source offset.
        src_off: u64,
        /// Destination offset.
        dst_off: u64,
        /// Bytes to copy.
        len: u32,
        /// Flush the destination.
        flush: bool,
    },
    /// gCAS on the members selected by `exec_map`.
    Cas {
        /// u64-aligned offset of the target word.
        offset: u64,
        /// Expected value.
        cmp: u64,
        /// Replacement value.
        swp: u64,
        /// Member bitmap (bit 0 = client).
        exec_map: u32,
    },
}

/// Per-operation supervision state shared by the completion and the
/// deadline closures.
struct IssueState {
    cell: Rc<RefCell<Backend>>,
    policy: DeadlinePolicy,
    op: GroupOp,
    done: Option<OnOutcome>,
    settled: bool,
    issued_at: SimTime,
    outstanding: Rc<RefCell<u32>>,
    failures: Rc<RefCell<Vec<OpError>>>,
    stats: Rc<RefCell<RetryStats>>,
    probe: Rc<RefCell<Option<ProbeState>>>,
}

/// Shared dirty-range log: `Some` while a cutover is recording
/// `(offset, len)` ranges mutated at issue time.
type DirtyLog = Rc<RefCell<Option<Vec<(u64, u32)>>>>;

/// Deadline-supervising wrapper around a replication [`Backend`].
///
/// Cloning shares the backend cell, the policy, the stats, and the
/// failure log.
#[derive(Clone)]
pub struct RetryClient {
    cell: Rc<RefCell<Backend>>,
    policy: DeadlinePolicy,
    outstanding: Rc<RefCell<u32>>,
    failures: Rc<RefCell<Vec<OpError>>>,
    stats: Rc<RefCell<RetryStats>>,
    probe: Rc<RefCell<Option<ProbeState>>>,
    dirty: DirtyLog,
}

impl RetryClient {
    /// Wrap a client with the default policy.
    pub fn new(client: HyperLoopClient) -> Self {
        Self::with_policy(client, DeadlinePolicy::default())
    }

    /// Wrap a client with an explicit policy.
    pub fn with_policy(client: HyperLoopClient, policy: DeadlinePolicy) -> Self {
        Self::with_policy_backend(Backend::Hyper(client), policy)
    }

    /// Wrap an arbitrary backend (e.g. a Naïve chain used as a control
    /// or a pre-degraded group) with an explicit policy.
    pub fn with_policy_backend(backend: Backend, policy: DeadlinePolicy) -> Self {
        RetryClient {
            cell: Rc::new(RefCell::new(backend)),
            policy,
            outstanding: Rc::new(RefCell::new(0)),
            failures: Rc::new(RefCell::new(Vec::new())),
            stats: Rc::new(RefCell::new(RetryStats::default())),
            probe: Rc::new(RefCell::new(None)),
            dirty: Rc::new(RefCell::new(None)),
        }
    }

    /// The current underlying HyperLoop client (a cheap handle clone).
    ///
    /// # Panics
    ///
    /// Panics if the group is degraded to the Naïve backend; use
    /// [`RetryClient::backend`] for backend-agnostic access.
    pub fn client(&self) -> HyperLoopClient {
        match &*self.cell.borrow() {
            Backend::Hyper(c) => c.clone(),
            Backend::Naive(_) => {
                panic!("RetryClient::client(): group is degraded to the Naive backend")
            }
        }
    }

    /// The current backend (a cheap handle clone).
    pub fn backend(&self) -> Backend {
        self.cell.borrow().clone()
    }

    /// True while the offloaded chain is serving.
    pub fn is_offloaded(&self) -> bool {
        self.cell.borrow().is_offloaded()
    }

    /// Install the client of a rebuilt chain. In-flight supervised
    /// operations re-issue on it at their next attempt.
    pub fn swap(&self, client: HyperLoopClient) {
        *self.cell.borrow_mut() = Backend::Hyper(client);
    }

    /// Degrade: install a Naïve client as the serving backend. In-flight
    /// supervised operations re-issue on it at their next attempt.
    pub fn swap_naive(&self, client: NaiveClient) {
        *self.cell.borrow_mut() = Backend::Naive(client);
    }

    /// Supervised operations not yet settled (completed or failed).
    pub fn outstanding(&self) -> u32 {
        *self.outstanding.borrow()
    }

    /// Typed failures recorded so far.
    pub fn failures(&self) -> Vec<OpError> {
        self.failures.borrow().clone()
    }

    /// A snapshot of the always-on supervision counters.
    pub fn stats(&self) -> RetryStats {
        *self.stats.borrow()
    }

    /// Arm the end-to-end NIC-stall probe: after `threshold` consecutive
    /// attempt-deadline expiries with no intervening ACK, bump the
    /// `nic_stall_suspected` counter (layer=probe), drop a trace mark,
    /// and invoke `on_suspect` once; the episode re-arms on the next
    /// successful ACK. This is the detection path for mid-chain stalls
    /// that produce no transport-error CQE at the client.
    pub fn arm_nic_stall_probe(&self, threshold: u32, on_suspect: OnSuspect) {
        *self.probe.borrow_mut() = Some(ProbeState {
            threshold: threshold.max(1),
            consecutive: 0,
            episode_open: false,
            on_suspect: Some(on_suspect),
        });
    }

    /// Disarm the NIC-stall probe.
    pub fn disarm_nic_stall_probe(&self) {
        *self.probe.borrow_mut() = None;
    }

    /// Start recording the NVM ranges touched by every subsequently
    /// issued op (live-cutover dirty log). Replaces any prior log.
    pub fn begin_dirty_log(&self) {
        *self.dirty.borrow_mut() = Some(Vec::new());
    }

    /// Stop recording and return the dirty ranges as `(offset, len)`
    /// pairs, in issue order. Empty if logging was never started.
    pub fn take_dirty_log(&self) -> Vec<(u64, u32)> {
        self.dirty.borrow_mut().take().unwrap_or_default()
    }

    /// Issue `op` under deadline supervision. Exactly one of the `Ok` /
    /// `Err` arms of `done` fires, in bounded time.
    pub fn issue(&self, w: &mut World, eng: &mut Engine<World>, op: GroupOp, done: OnOutcome) {
        if let Some(log) = self.dirty.borrow_mut().as_mut() {
            match &op {
                GroupOp::Write { offset, data, .. } => log.push((*offset, data.len() as u32)),
                GroupOp::Memcpy { dst_off, len, .. } => log.push((*dst_off, *len)),
                GroupOp::Cas { offset, .. } => log.push((*offset, 8)),
                GroupOp::Flush { .. } => {}
            }
        }
        *self.outstanding.borrow_mut() += 1;
        let st = Rc::new(RefCell::new(IssueState {
            cell: self.cell.clone(),
            policy: self.policy.clone(),
            op,
            done: Some(done),
            settled: false,
            issued_at: eng.now(),
            outstanding: self.outstanding.clone(),
            failures: self.failures.clone(),
            stats: self.stats.clone(),
            probe: self.probe.clone(),
        }));
        attempt(st, w, eng, 0);
    }

    /// Supervised gWRITE.
    pub fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnOutcome,
    ) {
        self.issue(
            w,
            eng,
            GroupOp::Write {
                offset,
                data: Bytes::copy_from_slice(data),
                flush,
            },
            done,
        );
    }

    /// Supervised gFLUSH.
    pub fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnOutcome,
    ) {
        self.issue(w, eng, GroupOp::Flush { offset, len }, done);
    }

    /// Supervised gMEMCPY.
    #[allow(clippy::too_many_arguments)]
    pub fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnOutcome,
    ) {
        self.issue(
            w,
            eng,
            GroupOp::Memcpy {
                src_off,
                dst_off,
                len,
                flush,
            },
            done,
        );
    }

    /// Supervised gCAS (results normalized on re-issued attempts, see
    /// the module docs).
    #[allow(clippy::too_many_arguments)]
    pub fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnOutcome,
    ) {
        self.issue(
            w,
            eng,
            GroupOp::Cas {
                offset,
                cmp,
                swp,
                exec_map,
            },
            done,
        );
    }
}

fn settle(
    st: &Rc<RefCell<IssueState>>,
    w: &mut World,
    eng: &mut Engine<World>,
    outcome: Result<OpResult, OpError>,
) {
    let (done, issued_at) = {
        let mut s = st.borrow_mut();
        if s.settled {
            return;
        }
        s.settled = true;
        *s.outstanding.borrow_mut() -= 1;
        match &outcome {
            Ok(_) => {
                s.stats.borrow_mut().acked += 1;
                // A completed op proves the chain end-to-end: close any
                // open stall episode and re-arm the probe.
                if let Some(p) = s.probe.borrow_mut().as_mut() {
                    p.consecutive = 0;
                    p.episode_open = false;
                }
            }
            Err(e) => {
                s.stats.borrow_mut().deadline_exceeded += 1;
                s.failures.borrow_mut().push(e.clone());
            }
        }
        (s.done.take(), s.issued_at)
    };
    if w.telemetry.enabled() {
        let now = eng.now();
        match &outcome {
            Ok(_) => {
                // The headline SLO series: supervised end-to-end latency
                // including retries and backoff, continuous across
                // backend swaps (degrade / re-promote keep feeding it).
                let e2e = now.duration_since(issued_at).as_nanos();
                w.telemetry
                    .series
                    .record(now, "op_latency_ns", "layer=supervised", e2e);
                w.telemetry
                    .series
                    .counter_add(now, "supervised_ops", "layer=supervised", 1);
            }
            Err(_) => {
                w.telemetry
                    .metrics
                    .counter_add("retry_deadline_exceeded", "layer=deadline", 1);
                w.telemetry
                    .series
                    .counter_add(now, "retry_deadline_exceeded", "layer=deadline", 1);
                w.telemetry.mark(now, "deadline-exceeded", 0);
            }
        }
    }
    if let Some(done) = done {
        done(w, eng, outcome);
    }
}

fn attempt(st: Rc<RefCell<IssueState>>, w: &mut World, eng: &mut Engine<World>, k: u32) {
    if st.borrow().settled {
        return;
    }
    let (client, op, policy) = {
        let s = st.borrow();
        let client = s.cell.borrow().clone();
        (client, s.op.clone(), s.policy.clone())
    };
    let on_done: OnDone = {
        let st = st.clone();
        Box::new(move |w, eng, mut r| {
            // gCAS retry: a member whose original equals the swapped
            // value was won by a prior attempt of this very operation.
            if k > 0 {
                if let GroupOp::Cas { cmp, swp, .. } = st.borrow().op {
                    for v in &mut r.results {
                        if *v == swp {
                            *v = cmp;
                        }
                    }
                }
            }
            settle(&st, w, eng, Ok(r));
        })
    };
    if k > 0 {
        st.borrow().stats.borrow_mut().reissues += 1;
        if w.telemetry.enabled() {
            w.telemetry
                .metrics
                .counter_add("retry_reissues", "layer=deadline", 1);
        }
    }
    let issued = match &op {
        GroupOp::Write {
            offset,
            data,
            flush,
        } => client.gwrite(w, eng, *offset, data, *flush, on_done),
        GroupOp::Flush { offset, len } => client.gflush(w, eng, *offset, *len, on_done),
        GroupOp::Memcpy {
            src_off,
            dst_off,
            len,
            flush,
        } => client.gmemcpy(w, eng, *src_off, *dst_off, *len, *flush, on_done),
        GroupOp::Cas {
            offset,
            cmp,
            swp,
            exec_map,
        } => client.gcas(w, eng, *offset, *cmp, *swp, *exec_map, on_done),
    };
    // Next supervision point: the attempt deadline if the issue went
    // out, or the backoff if the group refused it (paused for recovery
    // or out of ring credits — both transient).
    let went_out = issued.is_ok();
    let wait = match issued {
        Ok(_) => policy.deadline,
        Err(_backpressure) => {
            st.borrow().stats.borrow_mut().backpressured += 1;
            if w.telemetry.enabled() {
                w.telemetry
                    .metrics
                    .counter_add("retry_backpressured", "layer=deadline", 1);
            }
            policy.backoff_for(k)
        }
    };
    eng.schedule(wait, move |w: &mut World, eng| {
        let (settled, attempts_left) = {
            let s = st.borrow();
            (s.settled, s.policy.max_attempts.saturating_sub(k + 1))
        };
        if settled {
            return;
        }
        if went_out {
            // The issue left the client but no ACK came back within the
            // attempt deadline: the end-to-end signal a silent mid-chain
            // stall cannot suppress.
            st.borrow().stats.borrow_mut().attempt_timeouts += 1;
            probe_note_timeout(&st, w, eng);
        }
        if attempts_left == 0 {
            settle(
                &st,
                w,
                eng,
                Err(OpError::DeadlineExceeded { attempts: k + 1 }),
            );
            return;
        }
        let backoff = st.borrow().policy.backoff_for(k);
        eng.schedule(backoff, move |w: &mut World, eng| {
            attempt(st, w, eng, k + 1);
        });
    });
}

/// Record an attempt-deadline expiry against the stall probe; fire the
/// suspect callback when the consecutive-expiry threshold is crossed
/// and no episode is already open.
fn probe_note_timeout(st: &Rc<RefCell<IssueState>>, w: &mut World, eng: &mut Engine<World>) {
    let probe = st.borrow().probe.clone();
    let fire = {
        let mut p = probe.borrow_mut();
        match p.as_mut() {
            None => false,
            Some(ps) => {
                ps.consecutive += 1;
                if ps.consecutive >= ps.threshold && !ps.episode_open {
                    ps.episode_open = true;
                    true
                } else {
                    false
                }
            }
        }
    };
    if !fire {
        return;
    }
    let host = {
        let s = st.borrow();
        let b = s.cell.borrow();
        b.member_host(0).0
    };
    if w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("nic_stall_suspected", "layer=probe", 1);
        let now = eng.now();
        w.telemetry.mark(now, "probe:nic-stall-suspected", host);
        // Postmortem snapshot: the victim op is still open (its silence
        // is what fired the probe), so its span lands in the dump.
        w.telemetry.flight_dump(now, "probe:nic-stall-suspected");
    }
    // Take the callback out for the call so it may re-enter the probe
    // (e.g. trigger a rebuild that disarms or re-arms it).
    let cb = probe
        .borrow_mut()
        .as_mut()
        .and_then(|p| p.on_suspect.take());
    if let Some(mut cb) = cb {
        cb(w, eng);
        if let Some(p) = probe.borrow_mut().as_mut() {
            if p.on_suspect.is_none() {
                p.on_suspect = Some(cb);
            }
        }
    }
}
