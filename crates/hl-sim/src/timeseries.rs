//! Windowed time-series telemetry: behavior over time, not just
//! end-of-run aggregates.
//!
//! [`TimeSeries`] buckets sim time into fixed-width windows (window `w`
//! covers `[w·width, (w+1)·width)`) and accumulates, per window:
//!
//! * **counter deltas** — how many of something happened *in* that
//!   window (not cumulative totals);
//! * **gauge samples** — last-write-wins instantaneous values;
//! * **latency sketches** — a sparse mergeable [`Sketch`] per window,
//!   so per-window p50/p99 are first-class and cross-shard aggregation
//!   is a [`Sketch::merge`] away.
//!
//! Everything is keyed `(name, labels)` in `BTreeMap`s and windows are
//! integer indices, so iteration order, the JSON/CSV snapshot exports
//! and the ASCII timeline render are all byte-deterministic for a given
//! sim run — same-seed re-runs produce identical snapshots, which the
//! campaign and gray-chaos suites assert.
//!
//! Like span collection, the layer is disabled by default; every
//! recording entry point is a cheap branch when off.

use crate::sketch::Sketch;
use crate::telemetry::Mark;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Default window width when [`TimeSeries::enable`] is given none.
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_micros(1000);

/// Windowed metrics store. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    enabled: bool,
    window: SimDuration,
    /// (name, labels) -> window index -> delta accumulated in window.
    counters: BTreeMap<(String, String), BTreeMap<u64, u64>>,
    /// (name, labels) -> window index -> last sampled value in window.
    gauges: BTreeMap<(String, String), BTreeMap<u64, f64>>,
    /// (name, labels) -> window index -> latency sketch for window.
    sketches: BTreeMap<(String, String), BTreeMap<u64, Sketch>>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries {
            enabled: false,
            window: DEFAULT_WINDOW,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            sketches: BTreeMap::new(),
        }
    }
}

impl TimeSeries {
    /// Turn windowed collection on with the given window width.
    pub fn enable(&mut self, window: SimDuration) {
        assert!(window.as_nanos() > 0, "time-series window must be > 0");
        self.enabled = true;
        self.window = window;
    }

    /// Is windowed collection on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Window width in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window.as_nanos()
    }

    /// Window index containing `at`.
    pub fn window_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.window.as_nanos()
    }

    /// Start time (ns) of window `w`.
    pub fn window_start_ns(&self, w: u64) -> u64 {
        w * self.window.as_nanos()
    }

    /// Add `delta` to counter `name{labels}` in the window containing
    /// `at`. No-op while disabled.
    pub fn counter_add(&mut self, at: SimTime, name: &str, labels: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        let w = self.window_of(at);
        *self
            .counters
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .entry(w)
            .or_insert(0) += delta;
    }

    /// Sample gauge `name{labels}` in the window containing `at`
    /// (last write in a window wins). No-op while disabled.
    pub fn gauge_sample(&mut self, at: SimTime, name: &str, labels: &str, v: f64) {
        if !self.enabled {
            return;
        }
        let w = self.window_of(at);
        self.gauges
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .insert(w, v);
    }

    /// Record latency `v` (ns) into the sketch for `name{labels}` in the
    /// window containing `at`. No-op while disabled.
    pub fn record(&mut self, at: SimTime, name: &str, labels: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let w = self.window_of(at);
        self.sketches
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .entry(w)
            .or_default()
            .record(v);
    }

    /// Counter delta for one window (0 if nothing was recorded).
    pub fn counter_in(&self, name: &str, labels: &str, w: u64) -> u64 {
        self.counters
            .get(&(name.to_string(), labels.to_string()))
            .and_then(|m| m.get(&w))
            .copied()
            .unwrap_or(0)
    }

    /// The per-window sketch for `name{labels}`, if that window saw data.
    pub fn sketch_in(&self, name: &str, labels: &str, w: u64) -> Option<&Sketch> {
        self.sketches
            .get(&(name.to_string(), labels.to_string()))
            .and_then(|m| m.get(&w))
    }

    /// All `(window, sketch)` pairs for `name{labels}`, window order.
    pub fn sketch_windows(&self, name: &str, labels: &str) -> Vec<(u64, &Sketch)> {
        self.sketches
            .get(&(name.to_string(), labels.to_string()))
            .map(|m| m.iter().map(|(&w, s)| (w, s)).collect())
            .unwrap_or_default()
    }

    /// Merge every window of `name{labels}` into one whole-run sketch.
    pub fn merged_sketch(&self, name: &str, labels: &str) -> Sketch {
        let mut out = Sketch::new();
        if let Some(m) = self.sketches.get(&(name.to_string(), labels.to_string())) {
            for s in m.values() {
                out.merge(s);
            }
        }
        out
    }

    /// Per-window quantile series for `name{labels}`:
    /// `(window, value_at_quantile(q))` in window order.
    pub fn quantile_series(&self, name: &str, labels: &str, q: f64) -> Vec<(u64, u64)> {
        self.sketch_windows(name, labels)
            .into_iter()
            .map(|(w, s)| (w, s.value_at_quantile(q)))
            .collect()
    }

    /// Label sets under which sketch metric `name` was recorded, in
    /// label order.
    pub fn sketch_label_sets(&self, name: &str) -> Vec<&str> {
        self.sketches
            .keys()
            .filter(|(n, _)| n == name)
            .map(|(_, l)| l.as_str())
            .collect()
    }

    /// `(first, last)` window index observed across all series, if any.
    pub fn window_span(&self) -> Option<(u64, u64)> {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut any = false;
        let mut take = |w: u64| {
            lo = lo.min(w);
            hi = hi.max(w);
            any = true;
        };
        for m in self.counters.values() {
            for &w in m.keys() {
                take(w);
            }
        }
        for m in self.gauges.values() {
            for &w in m.keys() {
                take(w);
            }
        }
        for m in self.sketches.values() {
            for &w in m.keys() {
                take(w);
            }
        }
        any.then_some((lo, hi))
    }

    /// Deterministic JSON snapshot of the whole store plus the run's
    /// instant marks. Hand-rolled with fixed field order and integer (or
    /// fixed-precision) values, so the same run always produces
    /// byte-identical output — the time-series counterpart of
    /// [`crate::Telemetry::chrome_trace`].
    ///
    /// Schema (version 1):
    /// ```json
    /// {"version":1,"window_ns":N,
    ///  "counters":[{"name":..,"labels":..,"points":[[w,v],..]},..],
    ///  "gauges":[{"name":..,"labels":..,"points":[[w,v],..]},..],
    ///  "histograms":[{"name":..,"labels":..,"windows":[
    ///      {"w":..,"count":..,"sum":..,"min":..,"max":..,
    ///       "p50":..,"p99":..,"buckets":[[idx,count],..]},..]},..],
    ///  "marks":[{"at_ns":..,"name":..,"host":..},..]}
    /// ```
    pub fn to_json(&self, marks: &[Mark]) -> String {
        let mut out = String::from("{\"version\":1,");
        out.push_str(&format!("\"window_ns\":{},", self.window.as_nanos()));

        out.push_str("\"counters\":[");
        let mut first = true;
        for ((n, l), points) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"points\":[",
                esc(n),
                esc(l)
            ));
            let pts: Vec<String> = points.iter().map(|(w, v)| format!("[{w},{v}]")).collect();
            out.push_str(&pts.join(","));
            out.push_str("]}");
        }
        out.push_str("],");

        out.push_str("\"gauges\":[");
        let mut first = true;
        for ((n, l), points) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"points\":[",
                esc(n),
                esc(l)
            ));
            let pts: Vec<String> = points
                .iter()
                .map(|(w, v)| format!("[{w},{v:.3}]"))
                .collect();
            out.push_str(&pts.join(","));
            out.push_str("]}");
        }
        out.push_str("],");

        out.push_str("\"histograms\":[");
        let mut first = true;
        for ((n, l), windows) in &self.sketches {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"windows\":[",
                esc(n),
                esc(l)
            ));
            let ws: Vec<String> = windows
                .iter()
                .map(|(w, s)| {
                    let buckets: Vec<String> = s
                        .occupied_buckets()
                        .map(|(i, c)| format!("[{i},{c}]"))
                        .collect();
                    format!(
                        "{{\"w\":{w},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
                        s.count(),
                        s.sum(),
                        s.min(),
                        s.max(),
                        s.p50(),
                        s.p99(),
                        buckets.join(",")
                    )
                })
                .collect();
            out.push_str(&ws.join(","));
            out.push_str("]}");
        }
        out.push_str("],");

        out.push_str("\"marks\":[");
        let ms: Vec<String> = marks
            .iter()
            .map(|m| {
                format!(
                    "{{\"at_ns\":{},\"name\":\"{}\",\"host\":{}}}",
                    m.at.as_nanos(),
                    esc(&m.name),
                    m.host
                )
            })
            .collect();
        out.push_str(&ms.join(","));
        out.push_str("]}");
        out
    }

    /// Deterministic CSV snapshot: one row per (series, window).
    ///
    /// Columns: `kind,name,labels,window,count,value,p50_ns,p99_ns,max_ns`
    /// — counters put the delta in `value`, gauges the sample, sketches
    /// fill `count`/`p50_ns`/`p99_ns`/`max_ns` and leave `value` empty.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,labels,window,count,value,p50_ns,p99_ns,max_ns\n");
        for ((n, l), points) in &self.counters {
            for (w, v) in points {
                out.push_str(&format!("counter,{n},{l},{w},,{v},,,\n"));
            }
        }
        for ((n, l), points) in &self.gauges {
            for (w, v) in points {
                out.push_str(&format!("gauge,{n},{l},{w},,{v:.3},,,\n"));
            }
        }
        for ((n, l), windows) in &self.sketches {
            for (w, s) in windows {
                out.push_str(&format!(
                    "histogram,{n},{l},{w},{},,{},{},{}\n",
                    s.count(),
                    s.p50(),
                    s.p99(),
                    s.max()
                ));
            }
        }
        out
    }

    /// Render an ASCII per-window timeline for sketch metric `metric`:
    /// one table per label set, columns for window time range, sample
    /// count, p50/p99 (µs), a p99 bar (log-ish integer scaling) and any
    /// interesting marks (fault/heal/slo/transition/probe/cutover/
    /// rejoin) landing in that window. All arithmetic is integer, so the
    /// render is byte-deterministic.
    pub fn render_timeline(&self, marks: &[Mark], metric: &str) -> String {
        let labels = self.sketch_label_sets(metric);
        let mut out = String::new();
        if labels.is_empty() {
            out.push_str(&format!("timeline: no data for metric {metric}\n"));
            return out;
        }
        // Align every label set's table to the same window range.
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for l in &labels {
            for (w, _) in self.sketch_windows(metric, l) {
                lo = lo.min(w);
                hi = hi.max(w);
            }
        }
        for m in marks {
            if interesting_mark(&m.name) {
                let w = self.window_of(m.at);
                lo = lo.min(w);
                hi = hi.max(w);
            }
        }
        let win_us = self.window.as_nanos() / 1000;
        let labels: Vec<String> = labels.iter().map(|s| s.to_string()).collect();
        for l in &labels {
            let series = self.sketch_windows(metric, l);
            let max_p99 = series
                .iter()
                .map(|(_, s)| s.p99())
                .max()
                .unwrap_or(0)
                .max(1);
            let title = if l.is_empty() {
                metric.to_string()
            } else {
                format!("{metric}{{{l}}}")
            };
            out.push_str(&format!(
                "== {title} (window {win_us}us, windows {lo}..={hi}) ==\n"
            ));
            out.push_str("window     t_start_us       n    p50_us    p99_us  |p99\n");
            let by_w: BTreeMap<u64, &Sketch> = series.into_iter().collect();
            for w in lo..=hi {
                let start_us = self.window_start_ns(w) / 1000;
                let mut mark_notes: Vec<String> = Vec::new();
                for m in marks {
                    if interesting_mark(&m.name) && self.window_of(m.at) == w {
                        mark_notes.push(m.name.clone());
                    }
                }
                match by_w.get(&w) {
                    Some(s) => {
                        let p50 = s.p50() / 1000;
                        let p99 = s.p99() / 1000;
                        // Integer bar: 40 chars at the series max.
                        let bar_len = ((s.p99() * 40) / max_p99) as usize;
                        out.push_str(&format!(
                            "{w:>6} {start_us:>13} {n:>7} {p50:>9} {p99:>9}  |{bar}",
                            n = s.count(),
                            bar = "#".repeat(bar_len),
                        ));
                    }
                    None => {
                        out.push_str(&format!(
                            "{w:>6} {start_us:>13}       -         -         -  |"
                        ));
                    }
                }
                if !mark_notes.is_empty() {
                    out.push_str(&format!("  <- {}", mark_notes.join(", ")));
                }
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }
}

/// Marks worth overlaying on a timeline render.
fn interesting_mark(name: &str) -> bool {
    [
        "fault:",
        "heal:",
        "slo:",
        "transition:",
        "probe:",
        "cutover:",
        "rejoin:",
    ]
    .iter()
    .any(|p| name.starts_with(p))
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_micros(n * 1000)
    }

    #[test]
    fn disabled_records_nothing() {
        let mut ts = TimeSeries::default();
        ts.counter_add(t(0), "ops", "", 1);
        ts.record(t(0), "lat", "", 100);
        ts.gauge_sample(t(0), "g", "", 1.0);
        assert!(ts.window_span().is_none());
        assert_eq!(ts.counter_in("ops", "", 0), 0);
    }

    #[test]
    fn windows_partition_time() {
        let mut ts = TimeSeries::default();
        ts.enable(ms(1));
        assert_eq!(ts.window_of(t(0)), 0);
        assert_eq!(ts.window_of(t(999_999)), 0);
        assert_eq!(ts.window_of(t(1_000_000)), 1);
        ts.counter_add(t(500_000), "ops", "shard=0", 2);
        ts.counter_add(t(999_999), "ops", "shard=0", 1);
        ts.counter_add(t(1_000_000), "ops", "shard=0", 5);
        assert_eq!(ts.counter_in("ops", "shard=0", 0), 3);
        assert_eq!(ts.counter_in("ops", "shard=0", 1), 5);
        assert_eq!(ts.window_span(), Some((0, 1)));
    }

    #[test]
    fn per_window_sketches_merge_to_whole_run() {
        let mut ts = TimeSeries::default();
        ts.enable(ms(1));
        let mut whole = Sketch::new();
        for i in 0..100u64 {
            let at = t(i * 100_000); // 10 windows
            let v = 10_000 + i * 1_000;
            ts.record(at, "lat", "", v);
            whole.record(v);
        }
        assert_eq!(ts.merged_sketch("lat", ""), whole);
        assert_eq!(ts.sketch_windows("lat", "").len(), 10);
        let p99 = ts.quantile_series("lat", "", 0.99);
        assert_eq!(p99.len(), 10);
        // Ramp: later windows have strictly larger p99s.
        assert!(p99.windows(2).all(|p| p[0].1 < p[1].1));
    }

    #[test]
    fn gauge_last_write_wins_within_window() {
        let mut ts = TimeSeries::default();
        ts.enable(ms(1));
        ts.gauge_sample(t(100), "score", "", 1.0);
        ts.gauge_sample(t(200), "score", "", 7.0);
        let json = ts.to_json(&[]);
        assert!(json.contains("[0,7.000]"), "{json}");
        assert!(!json.contains("1.000"), "{json}");
    }

    #[test]
    fn json_snapshot_is_deterministic_and_shaped() {
        let build = || {
            let mut ts = TimeSeries::default();
            ts.enable(ms(1));
            ts.counter_add(t(100), "ops", "shard=1", 3);
            ts.record(t(200), "lat", "shard=1", 150_000);
            ts.record(t(1_200_000), "lat", "shard=1", 450_000);
            ts.gauge_sample(t(50), "score", "layer=health", 12.0);
            let marks = vec![Mark {
                at: t(600_000),
                name: "fault:jitter".into(),
                host: 1,
            }];
            ts.to_json(&marks)
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"version\":1,\"window_ns\":1000000,"));
        assert!(a.contains(
            "\"counters\":[{\"name\":\"ops\",\"labels\":\"shard=1\",\"points\":[[0,3]]}]"
        ));
        assert!(
            a.contains("\"histograms\":[{\"name\":\"lat\",\"labels\":\"shard=1\",\"windows\":[")
        );
        assert!(a.contains("\"marks\":[{\"at_ns\":600000,\"name\":\"fault:jitter\",\"host\":1}]"));
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn csv_rows_cover_all_series() {
        let mut ts = TimeSeries::default();
        ts.enable(ms(1));
        ts.counter_add(t(0), "ops", "shard=0", 4);
        ts.gauge_sample(t(0), "score", "", 2.5);
        ts.record(t(0), "lat", "", 99_000);
        let csv = ts.to_csv();
        assert!(csv.starts_with("kind,name,labels,window,"));
        assert!(csv.contains("counter,ops,shard=0,0,,4,,,\n"));
        assert!(csv.contains("gauge,score,,0,,2.500,,,\n"));
        assert!(csv.contains("histogram,lat,,0,1,,99000,99000,99000\n"));
    }

    #[test]
    fn timeline_render_overlays_marks() {
        let mut ts = TimeSeries::default();
        ts.enable(ms(1));
        for w in 0..5u64 {
            let lat = if w == 2 { 900_000 } else { 90_000 };
            for i in 0..10u64 {
                ts.record(t(w * 1_000_000 + i * 1_000), "lat", "shard=0", lat);
            }
        }
        let marks = vec![
            Mark {
                at: t(2_100_000),
                name: "fault:jitter".into(),
                host: 0,
            },
            Mark {
                at: t(3_400_000),
                name: "heal:jitter".into(),
                host: 0,
            },
            Mark {
                at: t(1_000),
                name: "boring-note".into(),
                host: 0,
            },
        ];
        let render = ts.render_timeline(&marks, "lat");
        assert!(render.contains("== lat{shard=0}"));
        assert!(render.contains("<- fault:jitter"));
        assert!(render.contains("<- heal:jitter"));
        assert!(!render.contains("boring-note"));
        // The excursion window has the longest bar.
        let excursion_line = render.lines().find(|l| l.contains("fault:")).unwrap();
        assert!(excursion_line.contains("#".repeat(40).as_str()));
        // Same input renders identically.
        assert_eq!(render, ts.render_timeline(&marks, "lat"));
    }

    #[test]
    fn missing_metric_renders_placeholder() {
        let ts = TimeSeries::default();
        let r = ts.render_timeline(&[], "nope");
        assert!(r.contains("no data for metric nope"));
    }
}
