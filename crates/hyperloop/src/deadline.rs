//! Client-side operation deadlines with exponential backoff and
//! idempotent re-issue.
//!
//! The raw [`HyperLoopClient`] completes an operation only when the
//! group ACK arrives; a fault anywhere along the chain leaves the
//! caller waiting forever. [`RetryClient`] wraps the client with a
//! per-attempt deadline: an attempt that does not ACK in time is
//! re-issued (after exponential backoff) until the budget is exhausted,
//! at which point the caller gets a *typed* error — an operation issued
//! through this wrapper never hangs.
//!
//! Re-issue is safe because the group primitives are idempotent at the
//! replication level:
//!
//! * gWRITE / gFLUSH / gMEMCPY re-apply the same bytes to the same
//!   offsets — replaying them is a no-op on members that already
//!   executed the first attempt.
//! * gCAS is *not* naturally idempotent (the first attempt may have
//!   swapped already), so a successful re-issue normalizes the result
//!   map: a member reporting `orig == swp` is taken as proof the prior
//!   attempt succeeded there and its original value is reported as
//!   `cmp`. This matches the usual RDMA-atomic retry convention.
//!
//! The wrapper holds the underlying client in a shared cell so recovery
//! can [`RetryClient::swap`] in the client of a rebuilt chain; attempts
//! that time out mid-reconfiguration simply re-issue on the new chain.

use crate::group::{OnDone, OpResult};
use crate::HyperLoopClient;
use hl_cluster::World;
use hl_sim::{Bytes, Engine, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

/// Typed failure of a deadline-supervised operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// Every attempt either timed out or was refused for backpressure
    /// within the attempt budget.
    DeadlineExceeded {
        /// Attempts made (including refused issues).
        attempts: u32,
    },
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::DeadlineExceeded { attempts } => {
                write!(f, "operation deadline exceeded after {attempts} attempts")
            }
        }
    }
}
impl std::error::Error for OpError {}

/// Completion callback carrying success or a typed error.
pub type OnOutcome = Box<dyn FnOnce(&mut World, &mut Engine<World>, Result<OpResult, OpError>)>;

/// Deadline / retry knobs.
#[derive(Debug, Clone)]
pub struct DeadlinePolicy {
    /// Per-attempt ACK deadline.
    pub deadline: SimDuration,
    /// Total attempts before the typed failure.
    pub max_attempts: u32,
    /// Backoff before attempt `k+1` is `backoff << k`, capped.
    pub backoff: SimDuration,
    /// Backoff ceiling.
    pub backoff_cap: SimDuration,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        // The defaults span a heartbeat detection + chain rebuild
        // (tens of milliseconds) before giving up.
        DeadlinePolicy {
            deadline: SimDuration::from_millis(2),
            max_attempts: 10,
            backoff: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(10),
        }
    }
}

impl DeadlinePolicy {
    fn backoff_for(&self, attempt: u32) -> SimDuration {
        let mut b = self.backoff.as_nanos();
        for _ in 0..attempt {
            b = (b * 2).min(self.backoff_cap.as_nanos());
        }
        SimDuration::from_nanos(b)
    }
}

/// A group operation in re-issuable form.
#[derive(Debug, Clone)]
pub enum GroupOp {
    /// gWRITE (optionally durable before ACK).
    Write {
        /// Offset within the replicated region.
        offset: u64,
        /// Bytes to replicate; refcounted so each retry re-issue shares
        /// the one payload buffer instead of cloning it.
        data: Bytes,
        /// Interleave a gFLUSH.
        flush: bool,
    },
    /// Standalone gFLUSH.
    Flush {
        /// Offset within the replicated region.
        offset: u64,
        /// Range length.
        len: u32,
    },
    /// gMEMCPY within the replicated region on every member.
    Memcpy {
        /// Source offset.
        src_off: u64,
        /// Destination offset.
        dst_off: u64,
        /// Bytes to copy.
        len: u32,
        /// Flush the destination.
        flush: bool,
    },
    /// gCAS on the members selected by `exec_map`.
    Cas {
        /// u64-aligned offset of the target word.
        offset: u64,
        /// Expected value.
        cmp: u64,
        /// Replacement value.
        swp: u64,
        /// Member bitmap (bit 0 = client).
        exec_map: u32,
    },
}

/// Per-operation supervision state shared by the completion and the
/// deadline closures.
struct IssueState {
    cell: Rc<RefCell<HyperLoopClient>>,
    policy: DeadlinePolicy,
    op: GroupOp,
    done: Option<OnOutcome>,
    settled: bool,
    outstanding: Rc<RefCell<u32>>,
    failures: Rc<RefCell<Vec<OpError>>>,
}

/// Deadline-supervising wrapper around [`HyperLoopClient`].
///
/// Cloning shares the client cell, the policy, and the failure log.
#[derive(Clone)]
pub struct RetryClient {
    cell: Rc<RefCell<HyperLoopClient>>,
    policy: DeadlinePolicy,
    outstanding: Rc<RefCell<u32>>,
    failures: Rc<RefCell<Vec<OpError>>>,
}

impl RetryClient {
    /// Wrap a client with the default policy.
    pub fn new(client: HyperLoopClient) -> Self {
        Self::with_policy(client, DeadlinePolicy::default())
    }

    /// Wrap a client with an explicit policy.
    pub fn with_policy(client: HyperLoopClient, policy: DeadlinePolicy) -> Self {
        RetryClient {
            cell: Rc::new(RefCell::new(client)),
            policy,
            outstanding: Rc::new(RefCell::new(0)),
            failures: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// The current underlying client (a cheap handle clone).
    pub fn client(&self) -> HyperLoopClient {
        self.cell.borrow().clone()
    }

    /// Install the client of a rebuilt chain. In-flight supervised
    /// operations re-issue on it at their next attempt.
    pub fn swap(&self, client: HyperLoopClient) {
        *self.cell.borrow_mut() = client;
    }

    /// Supervised operations not yet settled (completed or failed).
    pub fn outstanding(&self) -> u32 {
        *self.outstanding.borrow()
    }

    /// Typed failures recorded so far.
    pub fn failures(&self) -> Vec<OpError> {
        self.failures.borrow().clone()
    }

    /// Issue `op` under deadline supervision. Exactly one of the `Ok` /
    /// `Err` arms of `done` fires, in bounded time.
    pub fn issue(&self, w: &mut World, eng: &mut Engine<World>, op: GroupOp, done: OnOutcome) {
        *self.outstanding.borrow_mut() += 1;
        let st = Rc::new(RefCell::new(IssueState {
            cell: self.cell.clone(),
            policy: self.policy.clone(),
            op,
            done: Some(done),
            settled: false,
            outstanding: self.outstanding.clone(),
            failures: self.failures.clone(),
        }));
        attempt(st, w, eng, 0);
    }

    /// Supervised gWRITE.
    pub fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnOutcome,
    ) {
        self.issue(
            w,
            eng,
            GroupOp::Write {
                offset,
                data: Bytes::copy_from_slice(data),
                flush,
            },
            done,
        );
    }

    /// Supervised gFLUSH.
    pub fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnOutcome,
    ) {
        self.issue(w, eng, GroupOp::Flush { offset, len }, done);
    }

    /// Supervised gMEMCPY.
    #[allow(clippy::too_many_arguments)]
    pub fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnOutcome,
    ) {
        self.issue(
            w,
            eng,
            GroupOp::Memcpy {
                src_off,
                dst_off,
                len,
                flush,
            },
            done,
        );
    }

    /// Supervised gCAS (results normalized on re-issued attempts, see
    /// the module docs).
    #[allow(clippy::too_many_arguments)]
    pub fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnOutcome,
    ) {
        self.issue(
            w,
            eng,
            GroupOp::Cas {
                offset,
                cmp,
                swp,
                exec_map,
            },
            done,
        );
    }
}

fn settle(
    st: &Rc<RefCell<IssueState>>,
    w: &mut World,
    eng: &mut Engine<World>,
    outcome: Result<OpResult, OpError>,
) {
    let done = {
        let mut s = st.borrow_mut();
        if s.settled {
            return;
        }
        s.settled = true;
        *s.outstanding.borrow_mut() -= 1;
        if let Err(e) = &outcome {
            s.failures.borrow_mut().push(e.clone());
        }
        s.done.take()
    };
    if outcome.is_err() && w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("retry_deadline_exceeded", "layer=deadline", 1);
        let now = eng.now();
        w.telemetry.mark(now, "deadline-exceeded", 0);
    }
    if let Some(done) = done {
        done(w, eng, outcome);
    }
}

fn attempt(st: Rc<RefCell<IssueState>>, w: &mut World, eng: &mut Engine<World>, k: u32) {
    if st.borrow().settled {
        return;
    }
    let (client, op, policy) = {
        let s = st.borrow();
        let client = s.cell.borrow().clone();
        (client, s.op.clone(), s.policy.clone())
    };
    let on_done: OnDone = {
        let st = st.clone();
        Box::new(move |w, eng, mut r| {
            // gCAS retry: a member whose original equals the swapped
            // value was won by a prior attempt of this very operation.
            if k > 0 {
                if let GroupOp::Cas { cmp, swp, .. } = st.borrow().op {
                    for v in &mut r.results {
                        if *v == swp {
                            *v = cmp;
                        }
                    }
                }
            }
            settle(&st, w, eng, Ok(r));
        })
    };
    if k > 0 && w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("retry_reissues", "layer=deadline", 1);
    }
    let issued = match &op {
        GroupOp::Write {
            offset,
            data,
            flush,
        } => client.gwrite(w, eng, *offset, data, *flush, on_done),
        GroupOp::Flush { offset, len } => client.gflush(w, eng, *offset, *len, on_done),
        GroupOp::Memcpy {
            src_off,
            dst_off,
            len,
            flush,
        } => client.gmemcpy(w, eng, *src_off, *dst_off, *len, *flush, on_done),
        GroupOp::Cas {
            offset,
            cmp,
            swp,
            exec_map,
        } => client.gcas(w, eng, *offset, *cmp, *swp, *exec_map, on_done),
    };
    // Next supervision point: the attempt deadline if the issue went
    // out, or the backoff if the group refused it (paused for recovery
    // or out of ring credits — both transient).
    let wait = match issued {
        Ok(_) => policy.deadline,
        Err(_backpressure) => {
            if w.telemetry.enabled() {
                w.telemetry
                    .metrics
                    .counter_add("retry_backpressured", "layer=deadline", 1);
            }
            policy.backoff_for(k)
        }
    };
    eng.schedule(wait, move |w: &mut World, eng| {
        let (settled, attempts_left) = {
            let s = st.borrow();
            (s.settled, s.policy.max_attempts.saturating_sub(k + 1))
        };
        if settled {
            return;
        }
        if attempts_left == 0 {
            settle(
                &st,
                w,
                eng,
                Err(OpError::DeadlineExceeded { attempts: k + 1 }),
            );
            return;
        }
        let backoff = st.borrow().policy.backoff_for(k);
        eng.schedule(backoff, move |w: &mut World, eng| {
            attempt(st, w, eng, k + 1);
        });
    });
}
