//! Cross-crate nondeterminism taint propagation.
//!
//! Pass 1 of the workspace analyzer. Builds an approximate call graph
//! over every workspace crate from the per-file symbol tables
//! ([`crate::symbols`]), then walks it forward from the event-handler /
//! datapath entry points and reports every entry that can reach a
//! *taint source*:
//!
//! * any surviving lexical finding (wall-clock, os-entropy,
//!   hash-collections, thread-spawn, float-time, rand-raw,
//!   wire-truncation) — in **any** crate, so a handler calling a helper
//!   that calls `SystemTime::now` two crates away no longer sails
//!   through;
//! * a `.unwrap()`/`.expect()`/`panic!`-family site in any function
//!   reachable from a NIC handler (`on_packet`, `on_timer`,
//!   `ring_doorbell`, `finish_local`, `deliver_cqe`) — the transitive
//!   form of the lexical `panic-in-handler` rule.
//!
//! Chains are suppressible only at the source, with the same
//! `// hl-lint: allow(<rule>)` hatch the lexical rules use.
//!
//! Call resolution is name-based and *approximate*: edges are
//! restricted to the caller's crate plus its direct `[dependencies]`
//! (dev-dependencies are excluded — test-only helpers cannot taint the
//! datapath), `Type::assoc` paths resolve through impl blocks, and a
//! deny-list of ubiquitous method names (`len`, `push`, `clone`, ...)
//! avoids drowning the graph in std-collection false edges. The known
//! blind spots (trait-object dispatch, macro-generated calls) are
//! documented in DESIGN.md §14.

use crate::lexer::Allow;
use crate::rules::{allow_ranges, check_source, Finding};
use crate::symbols::{parse_file, FnDef};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

/// Event-handler / datapath entry points for determinism taint: the NIC
/// state machine, the cluster event dispatcher, the process event hook
/// and the NIC-output router.
pub const ENTRY_FNS: &[&str] = &[
    "on_packet",
    "on_timer",
    "ring_doorbell",
    "finish_local",
    "deliver_cqe",
    "on_event",
    "run_event",
    "route_nic",
];

/// Entry points for the *transitive* panic pass — the NIC handlers the
/// lexical `panic-in-handler` rule already guards directly.
pub const PANIC_ENTRY_FNS: &[&str] = &[
    "on_packet",
    "on_timer",
    "ring_doorbell",
    "finish_local",
    "deliver_cqe",
];

/// Method names too ubiquitous to resolve by name: nearly every use is a
/// std-library call, so an edge to a same-named workspace fn would be
/// noise. `Type::name(..)` path calls still resolve precisely.
const METHOD_DENY: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clear",
    "extend",
    "append",
    "take",
    "drain",
    "entry",
    "keys",
    "values",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "min",
    "max",
    "to_string",
    "as_str",
    "as_ref",
    "as_mut",
    "as_bytes",
    "into",
    "from",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "find",
    "filter",
    "fold",
    "sum",
    "count",
    "collect",
    "sort",
    "sort_by",
    "sort_by_key",
    "retain",
    "last",
    "first",
    "front",
    "back",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "to_vec",
    "split_off",
    "chain",
    "zip",
    "rev",
    "enumerate",
    "any",
    "all",
    "position",
    "join",
    "trim",
    "starts_with",
    "ends_with",
    "splice",
    "copy_from_slice",
    "fill",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "checked_sub",
    "checked_add",
];

/// Cap on BFS chain length; deeper chains are almost certainly
/// resolution noise.
const MAX_DEPTH: usize = 16;

/// One workspace crate.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Cargo package name (directory name under `crates/`).
    pub name: String,
    /// Crate directory (contains `Cargo.toml` and `src/`).
    pub dir: PathBuf,
    /// Direct `[dependencies]` entries (workspace members only matter).
    pub deps: Vec<String>,
    /// Is this one of the sim-core crates the determinism rules gate?
    pub sim: bool,
}

/// Parse the `[dependencies]` section of a `Cargo.toml` (line-oriented;
/// good enough for this workspace's simple manifests).
fn manifest_deps(manifest: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() {
            deps.push(name);
        }
    }
    deps
}

/// Discover every crate under `<root>/crates/`, sorted by name.
pub fn discover_crates(root: &Path, sim_crates: &[&str]) -> std::io::Result<Vec<CrateInfo>> {
    let mut out = Vec::new();
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    for dir in dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let manifest = std::fs::read_to_string(dir.join("Cargo.toml"))?;
        out.push(CrateInfo {
            sim: sim_crates.contains(&name.as_str()),
            deps: manifest_deps(&manifest),
            name,
            dir,
        });
    }
    Ok(out)
}

/// The whole-workspace model: symbol tables, lexical findings attributed
/// to their containing functions, and the crate-dependency view used to
/// constrain call resolution.
pub struct Model {
    /// Every parsed function in the workspace.
    pub fns: Vec<FnDef>,
    /// Surviving lexical findings in **sim** crates (reported directly).
    pub direct: Vec<Finding>,
    /// (fn index, finding) taint sources — surviving lexical findings in
    /// any crate, attributed to the innermost containing fn.
    pub sources: Vec<(usize, Finding)>,
    /// Unsuppressed panic sites per fn index (line numbers).
    pub panic_sites: BTreeMap<usize, Vec<u32>>,
    by_name: BTreeMap<String, Vec<usize>>,
    by_type: BTreeMap<(String, String), Vec<usize>>,
    /// crate → {itself + direct deps}.
    visible: BTreeMap<String, BTreeSet<String>>,
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Parse every crate's `src/` tree into one model. `root` is only used
/// to shorten file labels.
pub fn build_model(root: &Path, crates: &[CrateInfo]) -> std::io::Result<Model> {
    let mut m = Model {
        fns: Vec::new(),
        direct: Vec::new(),
        sources: Vec::new(),
        panic_sites: BTreeMap::new(),
        by_name: BTreeMap::new(),
        by_type: BTreeMap::new(),
        visible: BTreeMap::new(),
    };
    for c in crates {
        let mut vis: BTreeSet<String> = c.deps.iter().cloned().collect();
        vis.insert(c.name.clone());
        m.visible.insert(c.name.clone(), vis);

        let src = c.dir.join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for f in files {
            let text = std::fs::read_to_string(&f)?;
            let label = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .into_owned();
            let syms = parse_file(&c.name, &label, &text);
            let findings = check_source(&label, &text);
            let fn_base = m.fns.len();

            // Attribute findings to the innermost containing fn.
            for finding in findings {
                let holder = innermost_fn(&syms.fns, finding.line).map(|i| fn_base + i);
                if c.sim {
                    m.direct.push(finding.clone());
                }
                if let Some(idx) = holder {
                    m.sources.push((idx, finding));
                }
            }

            // Panic sites survive unless allow(panic-in-handler) covers
            // them (suppression at the source, same hatch as the rule).
            let panic_allowed = panic_allow_lines(&text, &syms.allows);
            for (i, f) in syms.fns.iter().enumerate() {
                let kept: Vec<u32> = f
                    .panics
                    .iter()
                    .copied()
                    .filter(|l| !panic_allowed.iter().any(|(a, b)| l >= a && l <= b))
                    .collect();
                if !kept.is_empty() {
                    m.panic_sites.insert(fn_base + i, kept);
                }
            }

            for (i, f) in syms.fns.into_iter().enumerate() {
                let idx = fn_base + i;
                m.by_name.entry(f.name.clone()).or_default().push(idx);
                if let Some(ty) = &f.impl_type {
                    m.by_type
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                }
                debug_assert_eq!(idx, m.fns.len());
                m.fns.push(f);
            }
        }
    }
    Ok(m)
}

/// `allow(panic-in-handler)` spans in a file.
fn panic_allow_lines(src: &str, allows: &[Allow]) -> Vec<(u32, u32)> {
    let (toks, _) = crate::lexer::lex(src);
    allow_ranges(&toks, allows)
        .into_iter()
        .filter(|r| r.rule == "panic-in-handler")
        .map(|r| (r.start, r.end))
        .collect()
}

/// Innermost fn (by narrowest line span) containing `line`.
fn innermost_fn(fns: &[FnDef], line: u32) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.start_line <= line && line <= f.end_line)
        .min_by_key(|(_, f)| f.end_line - f.start_line)
        .map(|(i, _)| i)
}

impl Model {
    /// Resolve one call site from `caller` to candidate fn indices.
    fn resolve(&self, caller: usize, call: &crate::symbols::CallSite) -> Vec<usize> {
        let from = &self.fns[caller];
        let empty = BTreeSet::new();
        let visible = self.visible.get(&from.krate).unwrap_or(&empty);
        let vis = |idx: &usize| visible.contains(&self.fns[*idx].krate);

        if call.method {
            if METHOD_DENY.contains(&call.callee.as_str()) {
                return Vec::new();
            }
            return self
                .by_name
                .get(&call.callee)
                .map(|v| {
                    v.iter()
                        .filter(|i| self.fns[**i].impl_type.is_some())
                        .filter(|i| vis(i))
                        .copied()
                        .collect()
                })
                .unwrap_or_default();
        }
        match call.qualifier.as_deref() {
            Some("Self") => {
                let Some(ty) = &from.impl_type else {
                    return Vec::new();
                };
                self.by_type
                    .get(&(ty.clone(), call.callee.clone()))
                    .cloned()
                    .unwrap_or_default()
            }
            Some(q) => {
                if let Some(v) = self.by_type.get(&(q.to_string(), call.callee.clone())) {
                    return v.iter().filter(|i| vis(i)).copied().collect();
                }
                let as_crate = q.replace('_', "-");
                if self.visible.contains_key(&as_crate) {
                    return self
                        .by_name
                        .get(&call.callee)
                        .map(|v| {
                            v.iter()
                                .filter(|i| self.fns[**i].krate == as_crate)
                                .copied()
                                .collect()
                        })
                        .unwrap_or_default();
                }
                let same_crate_only = q == "crate" || q == "self";
                self.by_name
                    .get(&call.callee)
                    .map(|v| {
                        v.iter()
                            .filter(|i| self.fns[**i].impl_type.is_none())
                            .filter(|i| {
                                if same_crate_only {
                                    self.fns[**i].krate == from.krate
                                } else {
                                    vis(i)
                                }
                            })
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default()
            }
            None => self
                .by_name
                .get(&call.callee)
                .map(|v| {
                    v.iter()
                        .filter(|i| self.fns[**i].impl_type.is_none())
                        .filter(|i| vis(i))
                        .copied()
                        .collect()
                })
                .unwrap_or_default(),
        }
    }

    /// Forward adjacency for every fn.
    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.fns.len()];
        for (i, f) in self.fns.iter().enumerate() {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for c in &f.calls {
                out.extend(self.resolve(i, c));
            }
            out.remove(&i);
            adj[i] = out.into_iter().collect();
        }
        adj
    }
}

/// Render a call chain `entry → ... → sink` as `Qual → Qual → Qual`.
fn chain_string(
    model: &Model,
    parents: &BTreeMap<usize, usize>,
    entry: usize,
    sink: usize,
) -> String {
    let mut path = vec![sink];
    let mut cur = sink;
    while cur != entry {
        cur = parents[&cur];
        path.push(cur);
    }
    path.reverse();
    path.iter()
        .map(|i| model.fns[*i].qual.as_str())
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Run the taint pass: chain findings for every entry point that reaches
/// a taint source, plus the transitive panic-in-handler pass.
pub fn taint_findings(model: &Model, sim_entry_only: bool) -> Vec<Finding> {
    let adj = model.adjacency();
    // fn idx → its source findings.
    let mut source_map: BTreeMap<usize, Vec<&Finding>> = BTreeMap::new();
    for (idx, f) in &model.sources {
        source_map.entry(*idx).or_default().push(f);
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, String, u32)> = BTreeSet::new();

    let sim_crate = |idx: usize| crate::SIM_CRATES.contains(&model.fns[idx].krate.as_str());

    for entry in 0..model.fns.len() {
        let name = model.fns[entry].name.as_str();
        let is_entry = ENTRY_FNS.contains(&name);
        let is_panic_entry = PANIC_ENTRY_FNS.contains(&name);
        if !is_entry && !is_panic_entry {
            continue;
        }
        if sim_entry_only && !sim_crate(entry) {
            continue;
        }
        // BFS with parent pointers for chain reconstruction.
        let mut parents: BTreeMap<usize, usize> = BTreeMap::new();
        let mut depth: BTreeMap<usize, usize> = BTreeMap::new();
        let mut q = VecDeque::new();
        depth.insert(entry, 0);
        q.push_back(entry);
        while let Some(cur) = q.pop_front() {
            let d = depth[&cur];
            // Report sinks (skip the 0-hop case: the lexical rules
            // already cover findings inside the entry fn itself).
            if cur != entry {
                if is_entry {
                    if let Some(findings) = source_map.get(&cur) {
                        for f in findings {
                            if seen.insert((entry, f.file.clone(), f.line)) {
                                let e = &model.fns[entry];
                                out.push(Finding {
                                    rule: "taint",
                                    file: e.file.clone(),
                                    line: e.line,
                                    message: format!(
                                        "entry `{}` reaches a {} source at {}:{} via {} ({})",
                                        e.qual,
                                        f.rule,
                                        f.file,
                                        f.line,
                                        chain_string(model, &parents, entry, cur),
                                        f.message
                                    ),
                                });
                            }
                        }
                    }
                }
                if is_panic_entry {
                    if let Some(lines) = model.panic_sites.get(&cur) {
                        for l in lines {
                            let s = &model.fns[cur];
                            if seen.insert((entry, format!("panic:{}", s.file), *l)) {
                                let e = &model.fns[entry];
                                out.push(Finding {
                                    rule: "taint-panic",
                                    file: e.file.clone(),
                                    line: e.line,
                                    message: format!(
                                        "NIC handler `{}` can panic at {}:{} via {}; surface the fault as an error CQE or allow(panic-in-handler) at the site with a safety argument",
                                        e.qual,
                                        s.file,
                                        l,
                                        chain_string(model, &parents, entry, cur),
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            if d >= MAX_DEPTH {
                continue;
            }
            for &nxt in &adj[cur] {
                if let std::collections::btree_map::Entry::Vacant(e) = depth.entry(nxt) {
                    e.insert(d + 1);
                    parents.insert(nxt, cur);
                    q.push_back(nxt);
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    out
}
