//! Replica-side housekeeping: the slot replenisher.
//!
//! The only thing a replica CPU does for HyperLoop after group setup is
//! re-post consumed slots — strictly *off* the critical path (paper §3.1:
//! "replica server CPUs should only spend very few cycles that
//! initialize the HyperLoop groups"). The replenisher wakes periodically,
//! counts consumed slots per ring by reading send-queue heads, charges
//! itself the (small) CPU cost, and re-posts WQE bundles and RECVs.
//!
//! If a client outruns the rings (deep bursts + long replenish period),
//! it hits [`crate::group::Backpressure`] instead of corrupting the
//! chain — the ablation benchmark measures exactly this onset.

use crate::group::{post_slot, GroupRef};
use crate::metadata::Primitive;
use hl_cluster::{Ctx, ProcEvent, Process};
use hl_sim::SimDuration;

const TAG_TICK: u64 = 1;
const TAG_REPOST: u64 = 2;

/// Per-slot CPU cost of re-posting (write a few WQEs + a RECV).
const REPOST_COST_PER_SLOT: SimDuration = SimDuration::from_nanos(80);
/// Fixed overhead per replenish batch.
const REPOST_COST_FIXED: SimDuration = SimDuration::from_nanos(1_000);

/// The replenisher process for one replica of one group.
pub struct Replenisher {
    group: GroupRef,
    /// Which replica (chain index) this process serves.
    pub replica_idx: usize,
}

impl Replenisher {
    /// Create a replenisher for replica `replica_idx` of `group`.
    pub fn new(group: GroupRef, replica_idx: usize) -> Self {
        Replenisher { group, replica_idx }
    }

    /// Slots fully consumed by the NIC (both legs) but not yet
    /// re-posted, per primitive. Reading send-queue heads is safe: a
    /// slot's WQE memory may be reused only once every WQE of the slot
    /// has been executed on both its queues.
    fn deficits(&self, w: &hl_cluster::World) -> [u64; 3] {
        let inner = self.group.borrow();
        let rh = inner.cfg.replicas[self.replica_idx];
        let cap = inner.cfg.ring_slots as u64;
        let nic = &w.hosts[rh.0].nic;
        let mut out = [0; 3];
        for prim in Primitive::ALL {
            let ring = &inner.rep_rings[self.replica_idx][prim.idx()];
            let (next_head, _, _) = nic.sq_state(ring.qp_next);
            let mut consumed = next_head / ring.next_per_slot;
            if let Some(ql) = ring.qp_local {
                let (local_head, _, _) = nic.sq_state(ql);
                consumed = consumed.min(local_head / ring.local_per_slot);
            }
            out[prim.idx()] = (consumed + cap).saturating_sub(ring.slots_posted);
        }
        out
    }
}

impl Process for Replenisher {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        let period = self.group.borrow().cfg.replenish_period;
        match ev {
            ProcEvent::Started => {
                ctx.set_timer(period, TAG_TICK, SimDuration::from_nanos(500));
            }
            ProcEvent::Timer { tag: TAG_TICK } => {
                let total: u64 = self.deficits(ctx.world).iter().sum();
                if total > 0 {
                    // Charge the CPU before doing the posting work.
                    ctx.submit_work(REPOST_COST_FIXED + REPOST_COST_PER_SLOT * total, TAG_REPOST);
                } else {
                    ctx.set_timer(period, TAG_TICK, SimDuration::from_nanos(500));
                }
            }
            ProcEvent::WorkDone { tag: TAG_REPOST } => {
                let deficits = self.deficits(ctx.world);
                let i = self.replica_idx;
                for prim in Primitive::ALL {
                    let d = deficits[prim.idx()];
                    if d == 0 {
                        continue;
                    }
                    {
                        let mut inner = self.group.borrow_mut();
                        for _ in 0..d {
                            post_slot(&mut inner, ctx.world, i, prim);
                        }
                        inner.stats.reposted += d;
                    }
                    // Kick the queues so fresh WAITs park.
                    let (qn, ql, posted) = {
                        let inner = self.group.borrow();
                        let ring = &inner.rep_rings[i][prim.idx()];
                        (ring.qp_next, ring.qp_local, ring.slots_posted)
                    };
                    ctx.ring_doorbell(qn);
                    if let Some(ql) = ql {
                        ctx.ring_doorbell(ql);
                    }
                    // Report the new credit to the client. A tiny control
                    // datagram in reality; modelled as a fabric-latency
                    // delayed update of the client's credit table.
                    let group = self.group.clone();
                    let idx = i;
                    ctx.eng
                        .schedule(SimDuration::from_micros(2), move |_w, _eng| {
                            group.borrow_mut().posted_seen[idx][prim.idx()] = posted;
                        });
                }
                ctx.set_timer(period, TAG_TICK, SimDuration::from_nanos(500));
            }
            _ => {}
        }
    }
}

/// Start one replenisher process per replica. Returns their addresses.
pub fn start_replenishers(
    group: &GroupRef,
    w: &mut hl_cluster::World,
    eng: &mut hl_sim::Engine<hl_cluster::World>,
) -> Vec<hl_cluster::ProcAddr> {
    let replicas = group.borrow().cfg.replicas.clone();
    replicas
        .iter()
        .enumerate()
        .map(|(i, &rh)| {
            w.start_process(
                rh,
                &format!("hl-replenish-r{i}"),
                None,
                Box::new(Replenisher::new(group.clone(), i)),
                SimDuration::from_micros(1),
                eng,
            )
        })
        .collect()
}
