//! Verbs-level tests for the SRQ and threshold-WAIT features that the
//! multi-client and fan-out extensions build on.

use hl_nvm::NvmArena;
use hl_rnic::{flags, Access, Nic, NicOutput, Opcode, RecvWqe, ScatterEntry, Wqe};
use hl_sim::config::NicProfile;
use hl_sim::{Engine, RngFactory, SimDuration, SimTime};

const LINK: SimDuration = SimDuration::from_nanos(500);

struct World {
    nics: Vec<Nic>,
    mems: Vec<NvmArena>,
}
hl_sim::inert_event_ctx!(World);

fn world(n: usize) -> World {
    let fac = RngFactory::new(7);
    let profile = NicProfile {
        jitter_sigma: 0.0,
        ..NicProfile::default()
    };
    World {
        nics: (0..n)
            .map(|i| Nic::new(i as u32, profile.clone(), fac.stream_idx("nic", i as u64)))
            .collect(),
        mems: (0..n).map(|_| NvmArena::new(1 << 20)).collect(),
    }
}

fn route(nic: usize, outs: Vec<NicOutput>, eng: &mut Engine<World>) {
    for o in outs {
        match o {
            NicOutput::Transmit {
                at,
                dst_nic,
                packet,
            } => {
                eng.schedule_at(at + LINK, move |w: &mut World, eng| {
                    let outs = w.nics[dst_nic as usize].on_packet(
                        eng.now(),
                        packet,
                        &mut w.mems[dst_nic as usize],
                    );
                    route(dst_nic as usize, outs, eng);
                });
            }
            NicOutput::Complete { at, cq, cqe } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs = w.nics[nic].deliver_cqe(eng.now(), cq, cqe, &mut w.mems[nic]);
                    route(nic, outs, eng);
                });
            }
            NicOutput::DoLocal { at, qpn, wqe } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs = w.nics[nic].finish_local(eng.now(), qpn, wqe, &mut w.mems[nic]);
                    route(nic, outs, eng);
                });
            }
            NicOutput::CqEvent { .. } => {}
            NicOutput::ArmTimer { at, qpn, gen } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs = w.nics[nic].on_timer(eng.now(), qpn, gen, &mut w.mems[nic]);
                    route(nic, outs, eng);
                });
            }
            // The nic-level harness keeps legacy fire-and-ignore timer
            // semantics; stale generations no-op inside on_timer.
            NicOutput::CancelTimer { .. } => {}
        }
    }
}

/// Two senders, one SRQ: receives are consumed in arrival order across
/// both QPs, each scattering to its posted buffer.
#[test]
fn srq_serializes_two_senders() {
    let mut w = world(3);
    let mut eng = Engine::new();
    // Receiver (nic 2) with an SRQ shared by QPs from nic 0 and nic 1.
    let scq = w.nics[2].create_cq();
    let rcq = w.nics[2].create_cq();
    let srq = w.nics[2].create_srq();
    let mut rx_qps = Vec::new();
    for (i, src) in [0usize, 1].into_iter().enumerate() {
        let qp = w.nics[2].create_qp(scq, rcq, 0x1000 + i as u64 * 0x400, 8);
        w.nics[2].attach_srq(qp, srq);
        let s_scq = w.nics[src].create_cq();
        let s_rcq = w.nics[src].create_cq();
        let s_qp = w.nics[src].create_qp(s_scq, s_rcq, 0x1000, 8);
        w.nics[src].connect(s_qp, 2, qp);
        w.nics[2].connect(qp, src as u32, s_qp);
        rx_qps.push((src, s_qp));
    }
    // Two SRQ buffers: first arrival -> 0x8000, second -> 0x8100.
    for (k, addr) in [(0u64, 0x8000u64), (1, 0x8100)] {
        w.nics[2].post_srq_recv(
            srq,
            RecvWqe {
                wr_id: k,
                scatter: vec![ScatterEntry {
                    msg_off: 0,
                    len: 16,
                    addr,
                }],
            },
        );
    }
    assert_eq!(w.nics[2].srq_depth(srq), 2);

    // Sender 1 fires at t=0; sender 0 at t=10us: arrival order is 1, 0.
    for (delay_us, src, s_qp, payload) in [
        (10u64, 0usize, rx_qps[0].1, *b"from-sender-zero"),
        (0, 1, rx_qps[1].1, *b"from-sender-one!"),
    ] {
        w.mems[src].write(0x4000, &payload).unwrap();
        let wqe = Wqe {
            opcode: Opcode::Send,
            len: 16,
            laddr: 0x4000,
            wr_id: src as u64,
            ..Default::default()
        };
        w.nics[src]
            .post_send(&mut w.mems[src], s_qp, wqe, false)
            .unwrap();
        eng.schedule_at(
            SimTime::from_nanos(delay_us * 1000),
            move |w: &mut World, eng| {
                let outs = w.nics[src].ring_doorbell(eng.now(), s_qp, &mut w.mems[src]);
                route(src, outs, eng);
            },
        );
    }
    eng.run(&mut w);
    assert_eq!(w.mems[2].read(0x8000, 16).unwrap(), b"from-sender-one!");
    assert_eq!(w.mems[2].read(0x8100, 16).unwrap(), b"from-sender-zero");
    assert_eq!(w.nics[2].srq_depth(srq), 0);
}

/// Threshold WAITs do not consume: two QPs watching the same CQ both
/// fire off one completion, and later thresholds wait for more.
#[test]
fn threshold_waits_share_a_cq() {
    let mut w = world(2);
    let mut eng = Engine::new();
    // A recv CQ on nic 1 fed by sends from nic 0.
    let scq0 = w.nics[0].create_cq();
    let rcq0 = w.nics[0].create_cq();
    let qp0 = w.nics[0].create_qp(scq0, rcq0, 0x1000, 8);
    let scq1 = w.nics[1].create_cq();
    let rcq1 = w.nics[1].create_cq();
    let qp1 = w.nics[1].create_qp(scq1, rcq1, 0x1000, 8);
    w.nics[0].connect(qp0, 1, qp1);
    w.nics[1].connect(qp1, 0, qp0);

    // Two loopback queues on nic 1, each: WAIT(threshold) + NOP(sig).
    let mut nop_cqs = Vec::new();
    for (i, threshold) in [(0u64, 1u32), (1, 1), (2, 2)] {
        let cq = w.nics[1].create_cq();
        let qp = w.nics[1].create_qp(cq, cq, 0x2000 + i * 0x200, 8);
        let wait = Wqe {
            opcode: Opcode::Wait,
            flags: flags::HW_OWNED | flags::WAIT_THRESHOLD,
            raddr: Wqe::wait_params(rcq1, threshold),
            activate_n: 1,
            ..Default::default()
        };
        w.nics[1]
            .post_send(&mut w.mems[1], qp, wait, false)
            .unwrap();
        let nop = Wqe {
            opcode: Opcode::Nop,
            flags: flags::SIGNALED,
            wr_id: 100 + i,
            ..Default::default()
        };
        w.nics[1].post_send(&mut w.mems[1], qp, nop, true).unwrap();
        let outs = w.nics[1].ring_doorbell(SimTime::ZERO, qp, &mut w.mems[1]);
        route(1, outs, &mut eng);
        nop_cqs.push(cq);
    }

    let send = |w: &mut World, eng: &mut Engine<World>, wr: u64| {
        w.nics[1].post_recv(
            qp1,
            RecvWqe {
                wr_id: wr,
                scatter: vec![],
            },
        );
        let wqe = Wqe {
            opcode: Opcode::Send,
            len: 1,
            laddr: 0x4000,
            wr_id: wr,
            ..Default::default()
        };
        w.nics[0]
            .post_send(&mut w.mems[0], qp0, wqe, false)
            .unwrap();
        let outs = w.nics[0].ring_doorbell(eng.now(), qp0, &mut w.mems[0]);
        route(0, outs, eng);
    };

    // One send: the two threshold-1 WAITs both fire; threshold-2 waits.
    send(&mut w, &mut eng, 1);
    eng.run(&mut w);
    assert_eq!(w.nics[1].poll_cq(nop_cqs[0], 8).len(), 1);
    assert_eq!(w.nics[1].poll_cq(nop_cqs[1], 8).len(), 1);
    assert_eq!(w.nics[1].poll_cq(nop_cqs[2], 8).len(), 0);

    // Second send: threshold-2 fires.
    send(&mut w, &mut eng, 2);
    eng.run(&mut w);
    assert_eq!(w.nics[1].poll_cq(nop_cqs[2], 8).len(), 1);
}

/// A QP without an SRQ attachment still uses its private RQ even when
/// SRQs exist on the same NIC.
#[test]
fn private_rq_unaffected_by_srq_presence() {
    let mut w = world(2);
    let mut eng = Engine::new();
    let _srq = w.nics[1].create_srq();
    let scq0 = w.nics[0].create_cq();
    let rcq0 = w.nics[0].create_cq();
    let qp0 = w.nics[0].create_qp(scq0, rcq0, 0x1000, 8);
    let scq1 = w.nics[1].create_cq();
    let rcq1 = w.nics[1].create_cq();
    let qp1 = w.nics[1].create_qp(scq1, rcq1, 0x1000, 8);
    w.nics[0].connect(qp0, 1, qp1);
    w.nics[1].connect(qp1, 0, qp0);
    w.nics[1].post_recv(
        qp1,
        RecvWqe {
            wr_id: 9,
            scatter: vec![ScatterEntry {
                msg_off: 0,
                len: 4,
                addr: 0x9000,
            }],
        },
    );
    w.mems[0].write(0x4000, b"priv").unwrap();
    let wqe = Wqe {
        opcode: Opcode::Send,
        len: 4,
        laddr: 0x4000,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], qp0, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, qp0, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(w.mems[1].read(0x9000, 4).unwrap(), b"priv");
    let _ = Access::LOCAL;
}
