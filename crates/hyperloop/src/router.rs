//! Client-side shard router: keys → shards → per-shard supervised
//! clients.
//!
//! A sharded deployment runs N independent HyperLoop groups (one chain
//! each, placed by [`hl_cluster::shard::ShardPlan`]); the router is the
//! single frontend object that maps a key to its owning shard via the
//! deterministic [`HashRing`] and drives that shard's [`RetryClient`].
//! All shards live in the *same* event engine, so concurrency across
//! shards is just interleaved events — fully deterministic under a
//! fixed seed.
//!
//! Every routed issue bumps a telemetry counter labelled with the shard
//! id (`shard=<n>`), so campaign metrics can be split per shard without
//! any extra plumbing.

use crate::deadline::{GroupOp, OnOutcome, OpError, RetryClient};
use hl_cluster::shard::HashRing;
use hl_cluster::World;
use hl_sim::{Bytes, Engine};

/// Routes operations to per-shard [`RetryClient`]s by consistent-hash
/// key placement.
///
/// Cloning shares the shard clients (each is itself a shared handle).
#[derive(Clone)]
pub struct ShardRouter {
    ring: HashRing,
    shards: Vec<RetryClient>,
}

impl ShardRouter {
    /// Build a router over one supervised client per shard; shard ids
    /// are the vector indices.
    pub fn new(shards: Vec<RetryClient>) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        ShardRouter {
            ring: HashRing::new(shards.len()),
            shards,
        }
    }

    /// Build a router with an explicit ring (e.g. shared with a store
    /// layer so both route identically).
    pub fn with_ring(ring: HashRing, shards: Vec<RetryClient>) -> Self {
        assert_eq!(ring.n_shards(), shards.len());
        ShardRouter { ring, shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The routing ring (share it with stores / load generators so the
    /// whole stack agrees on placement).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.ring.shard_of(key)
    }

    /// Shard owning a `u64` key.
    pub fn shard_of_u64(&self, key: u64) -> usize {
        self.ring.shard_of_u64(key)
    }

    /// The supervised client for shard `sid`.
    pub fn client(&self, sid: usize) -> &RetryClient {
        &self.shards[sid]
    }

    /// Issue `op` on an explicit shard under deadline supervision.
    ///
    /// When the windowed time-series layer is on, the routed op also
    /// feeds a per-shard `router_ops{shard=N}` window counter and, at
    /// completion, a per-shard `op_latency_ns{shard=N}` latency sketch —
    /// the series the `timeline` report renders per shard.
    pub fn issue_on(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        sid: usize,
        op: GroupOp,
        mut done: OnOutcome,
    ) {
        if w.telemetry.enabled() {
            w.telemetry
                .metrics
                .counter_add("router_ops", &format!("shard={sid}"), 1);
        }
        if w.telemetry.series.enabled() {
            let now = eng.now();
            let labels = format!("shard={sid}");
            w.telemetry
                .series
                .counter_add(now, "router_ops", &labels, 1);
            let issued_at = now;
            done = Box::new(move |w, eng, outcome| {
                if outcome.is_ok() && w.telemetry.series.enabled() {
                    let now = eng.now();
                    let e2e = now.duration_since(issued_at).as_nanos();
                    w.telemetry
                        .series
                        .record(now, "op_latency_ns", &labels, e2e);
                }
                done(w, eng, outcome);
            });
        }
        self.shards[sid].issue(w, eng, op, done);
    }

    /// Route `op` by `key` and issue it on the owning shard.
    pub fn issue_keyed(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        op: GroupOp,
        done: OnOutcome,
    ) {
        let sid = self.shard_of(key);
        self.issue_on(w, eng, sid, op, done);
    }

    /// Key-routed supervised gWRITE at `offset` within the owning
    /// shard's replicated region.
    #[allow(clippy::too_many_arguments)]
    pub fn gwrite_keyed(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnOutcome,
    ) {
        self.issue_keyed(
            w,
            eng,
            key,
            GroupOp::Write {
                offset,
                data: Bytes::copy_from_slice(data),
                flush,
            },
            done,
        );
    }

    /// Supervised operations not yet settled, summed over all shards.
    pub fn outstanding(&self) -> u32 {
        self.shards.iter().map(|s| s.outstanding()).sum()
    }

    /// Typed failures recorded so far on shard `sid`.
    pub fn shard_failures(&self, sid: usize) -> Vec<OpError> {
        self.shards[sid].failures()
    }

    /// Typed failures recorded so far across all shards.
    pub fn failures(&self) -> Vec<OpError> {
        self.shards.iter().flat_map(|s| s.failures()).collect()
    }
}
