// Layout fixture: TAIL (12..20) exceeds the 16-byte descriptor.
pub const DESC_SIZE: u64 = 16;
pub const HEAD: u64 = 0;
pub const TAIL: u64 = 12;
