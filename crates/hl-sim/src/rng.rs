//! Deterministic randomness.
//!
//! Every source of jitter in the simulator (NIC processing variance,
//! scheduler noise, workload key choice, …) draws from a [`RngStream`]
//! derived from one experiment seed and a stream *name*. Deriving by name
//! means adding a new consumer of randomness does not perturb the draws
//! seen by existing consumers, which keeps experiments comparable across
//! code changes.
//!
//! The generator is an in-repo xoshiro256++ — no external crates, so the
//! exact draw sequence is pinned by this file alone and the workspace
//! builds fully offline.

/// Factory for named deterministic RNG streams.
#[derive(Debug, Clone)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Create a factory for an experiment seed.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream for `name`. The same `(seed, name)`
    /// always yields the same stream.
    pub fn stream(&self, name: &str) -> RngStream {
        RngStream::derive(self.seed, name)
    }

    /// Derive a stream for `name` plus a numeric index (e.g. per-host).
    pub fn stream_idx(&self, name: &str, idx: u64) -> RngStream {
        let mut h = Fnv1a::new();
        h.write(name.as_bytes());
        h.write(&idx.to_le_bytes());
        RngStream::from_seed_words(self.seed, h.finish())
    }
}

/// A named deterministic random stream with simulation-oriented helpers.
#[derive(Debug, Clone)]
pub struct RngStream {
    s: [u64; 4],
}

impl RngStream {
    fn derive(seed: u64, name: &str) -> Self {
        let mut h = Fnv1a::new();
        h.write(name.as_bytes());
        Self::from_seed_words(seed, h.finish())
    }

    fn from_seed_words(seed: u64, name_hash: u64) -> Self {
        // Expand the two words into four non-degenerate state lanes with
        // splitmix so nearby seeds do not produce correlated states.
        let mut x = seed ^ name_hash.rotate_left(32);
        let mut s = [0u64; 4];
        for lane in &mut s {
            x = splitmix(x ^ seed) ^ splitmix(name_hash ^ x);
            *lane = x;
        }
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15; // all-zero state is a fixed point
        }
        RngStream { s }
    }

    /// Core xoshiro256++ step.
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `(0, 1)` (for log transforms).
    fn f64_open(&mut self) -> f64 {
        loop {
            let u = self.f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        // Caller-contract assertion on compile-time-ish range bounds
        // (jitter windows), not on guest data; a violation is a config
        // bug and the panic itself is deterministic.
        // hl-lint: allow(panic-in-handler)
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); the rejection loop terminates
        // deterministically from the stream state.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform usize in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range_u64(0, n as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.f64_open().ln()
    }

    /// Log-normal draw specified by the *median* and sigma of the
    /// underlying normal. Handy for long-tailed hardware jitter.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        let n = self.standard_normal();
        median * (sigma * n).exp()
    }

    /// Standard normal via Box–Muller (one value per call; simple and
    /// deterministic, throughput is irrelevant here).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Raw `u64` draw (for seeding sub-generators).
    pub fn u64(&mut self) -> u64 {
        self.next_u64()
    }
}

/// Minimal FNV-1a, enough to hash stream names deterministically without
/// relying on `std::hash` (whose output is not guaranteed stable across
/// releases).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let f = RngFactory::new(42);
        let mut a = f.stream("nic");
        let mut b = f.stream("nic");
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let f = RngFactory::new(42);
        let mut a = f.stream("nic");
        let mut b = f.stream("sched");
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = RngFactory::new(1).stream("nic");
        let mut b = RngFactory::new(2).stream("nic");
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let f = RngFactory::new(7);
        let mut a = f.stream_idx("host", 0);
        let mut b = f.stream_idx("host", 1);
        let same = (0..100).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = RngFactory::new(11).stream("unit");
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v), "draw {v} outside [0,1)");
        }
    }

    #[test]
    fn range_covers_and_respects_bounds() {
        let mut r = RngFactory::new(13).stream("range");
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = r.range_u64(3, 10);
            assert!((3..10).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = RngFactory::new(9).stream("exp");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_plausible() {
        let mut r = RngFactory::new(9).stream("logn");
        let mut v: Vec<f64> = (0..10_001).map(|_| r.lognormal(10.0, 0.5)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[5_000];
        assert!((median - 10.0).abs() < 1.0, "median {median}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngFactory::new(3).stream("c");
        assert!(!(0..1000).any(|_| r.chance(0.0)));
        assert!((0..1000).all(|_| r.chance(1.0)));
    }
}
