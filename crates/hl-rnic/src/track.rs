//! WQE-ownership & DMA race detector (feature `check-ownership`).
//!
//! HyperLoop's remote work-request manipulation deliberately lets peers
//! scribble on pre-posted send descriptors, and the modified driver
//! defers the hardware-ownership bit so those rewrites stay legal. That
//! protocol has a narrow safety envelope, and violating it on real
//! hardware produces silent corruption rather than faults. This module
//! shadows the driver protocol at simulation time and reports every
//! excursion:
//!
//! * **(a) software-owned fetch** — the send engine consumed a WQE whose
//!   slot was never handed over by `grant_ownership` or a WAIT
//!   activation. The memory flag byte said `HW_OWNED`, so someone forged
//!   the grant (e.g. a misdirected metadata scatter hit the flag byte).
//! * **(b) scatter after grant** — a remote write landed inside a
//!   descriptor slot *after* ownership passed to the NIC. The engine
//!   re-reads descriptors from memory at execution time, so this is a
//!   classic fetch/rewrite race.
//! * **(c) concurrent DMA overlap** — two DMA writes from different
//!   source QPs hit overlapping bytes of registered memory with no
//!   intervening completion on this host, carrying different bytes.
//!   Byte-identical rewrites (retransmitted or re-issued records) are
//!   benign duplicates and exempt.
//! * **(d) use after deregister** — a remote access quoted the rkey of a
//!   region that has been deregistered.
//!
//! The tracker is driver-protocol state, not memory state: it believes
//! what the verbs layer *said* (posted deferred, granted, deregistered),
//! and compares that against what the NIC engine and inbound DMA
//! actually *did*. All bookkeeping is `BTreeMap`-based and allocation
//! per violation only, so enabling the feature does not perturb the
//! simulated timeline — detection is pure observation.

use hl_sim::SimTime;
use std::collections::BTreeMap;

use crate::wqe::WQE_SIZE;

/// Who owns a send-ring slot according to the driver protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOwner {
    /// Posted deferred: software may still rewrite it; the engine must
    /// not fetch it until a grant.
    Software,
    /// Granted to the NIC (doorbell post, `grant_ownership`, or WAIT
    /// activation): remote scatter must keep out.
    Hardware,
}

/// One remote-sourced DMA write observed in the current completion
/// epoch of this NIC.
#[derive(Debug, Clone)]
struct DmaWrite {
    start: u64,
    end: u64,
    src_nic: u32,
    src_qpn: u32,
    at: SimTime,
    data: Vec<u8>,
}

/// A detected ownership/race violation, with the offending simulated
/// timestamps and QPNs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// (a) The send engine fetched a WQE from a slot still owned by
    /// software per the driver protocol.
    SwOwnedFetch {
        /// QP whose send engine did the fetch.
        qpn: u32,
        /// Ring index of the fetched WQE.
        idx: u64,
        /// Simulated fetch time.
        at: SimTime,
    },
    /// (b) A remote write landed inside a descriptor slot after
    /// ownership was granted to the NIC.
    ScatterAfterGrant {
        /// QP owning the send ring that was hit.
        ring_qpn: u32,
        /// Ring slot position that was overwritten.
        slot: u64,
        /// First byte of the offending write.
        addr: u64,
        /// Source NIC of the write.
        src_nic: u32,
        /// Source QP of the write.
        src_qpn: u32,
        /// Simulated landing time.
        at: SimTime,
    },
    /// (c) Two DMA writes from different QPs overlapped the same memory
    /// range without an intervening completion, carrying different
    /// bytes.
    ConcurrentDmaOverlap {
        /// First byte of the overlap.
        addr: u64,
        /// Overlap length in bytes.
        len: u64,
        /// `(nic, qpn)` of the earlier write.
        first_src: (u32, u32),
        /// Simulated time of the earlier write.
        first_at: SimTime,
        /// `(nic, qpn)` of the later write.
        second_src: (u32, u32),
        /// Simulated time of the later write.
        second_at: SimTime,
    },
    /// (d) A remote access quoted the rkey of a deregistered region.
    UseAfterDeregister {
        /// The stale rkey.
        rkey: u32,
        /// First byte of the attempted access.
        addr: u64,
        /// Attempted access length.
        len: u64,
        /// Source NIC of the access.
        src_nic: u32,
        /// Source QP of the access.
        src_qpn: u32,
        /// Simulated deregistration time.
        dereg_at: SimTime,
        /// Simulated access time.
        at: SimTime,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::SwOwnedFetch { qpn, idx, at } => write!(
                f,
                "sw-owned fetch: qp{qpn} engine consumed slot {idx} still owned \
                 by software at {}ns (forged ownership flag)",
                at.as_nanos()
            ),
            Violation::ScatterAfterGrant {
                ring_qpn,
                slot,
                addr,
                src_nic,
                src_qpn,
                at,
            } => write!(
                f,
                "scatter after grant: nic{src_nic}/qp{src_qpn} wrote {addr:#x} inside \
                 hw-owned slot {slot} of qp{ring_qpn}'s ring at {}ns",
                at.as_nanos()
            ),
            Violation::ConcurrentDmaOverlap {
                addr,
                len,
                first_src,
                first_at,
                second_src,
                second_at,
            } => write!(
                f,
                "concurrent DMA overlap: nic{}/qp{} at {}ns and nic{}/qp{} at {}ns \
                 both wrote [{addr:#x},+{len}) with different bytes and no completion between",
                first_src.0,
                first_src.1,
                first_at.as_nanos(),
                second_src.0,
                second_src.1,
                second_at.as_nanos()
            ),
            Violation::UseAfterDeregister {
                rkey,
                addr,
                len,
                src_nic,
                src_qpn,
                dereg_at,
                at,
            } => write!(
                f,
                "use after deregister: nic{src_nic}/qp{src_qpn} accessed [{addr:#x},+{len}) \
                 via rkey {rkey:#x} at {}ns, deregistered at {}ns",
                at.as_nanos(),
                dereg_at.as_nanos()
            ),
        }
    }
}

/// Shadow state for one NIC: ring slot ownership, the current DMA
/// epoch, and dead memory regions.
#[derive(Debug, Default)]
pub struct OwnershipTracker {
    /// Send rings: qpn → (base address, capacity).
    rings: BTreeMap<u32, (u64, u32)>,
    /// Driver-protocol slot ownership, keyed `(qpn, idx % capacity)`.
    /// Absent = free (never posted, or consumed and not yet re-posted).
    slots: BTreeMap<(u32, u64), SlotOwner>,
    /// Deregistered regions: rkey → (addr, len, dereg time).
    dead_mrs: BTreeMap<u32, (u64, u64, SimTime)>,
    /// Remote-sourced DMA writes since the last completion on this NIC.
    epoch_writes: Vec<DmaWrite>,
    violations: Vec<Violation>,
}

impl OwnershipTracker {
    /// Ring position of ring index `idx` on `qpn` (identity when the
    /// ring is untracked, which cannot happen through the NIC API).
    fn pos(&self, qpn: u32, idx: u64) -> u64 {
        match self.rings.get(&qpn) {
            Some(&(_, cap)) if cap > 0 => idx % cap as u64,
            _ => idx,
        }
    }

    /// Record a send ring created by `create_qp`.
    pub fn track_ring(&mut self, qpn: u32, base: u64, capacity: u32) {
        self.rings.insert(qpn, (base, capacity));
    }

    /// A WQE was posted to slot `idx`; `deferred` means the ownership
    /// bit stayed with software (modified-driver path).
    pub fn slot_posted(&mut self, qpn: u32, idx: u64, deferred: bool) {
        let owner = if deferred {
            SlotOwner::Software
        } else {
            SlotOwner::Hardware
        };
        let pos = self.pos(qpn, idx);
        self.slots.insert((qpn, pos), owner);
    }

    /// Ownership of slot `idx` was granted to the NIC through the
    /// driver protocol (`grant_ownership` or a WAIT activation).
    pub fn slot_granted(&mut self, qpn: u32, idx: u64) {
        let pos = self.pos(qpn, idx);
        self.slots.insert((qpn, pos), SlotOwner::Hardware);
    }

    /// The send engine consumed slot `idx`. Flags violation (a) when
    /// the driver protocol never granted the slot to hardware.
    pub fn slot_fetched(&mut self, qpn: u32, idx: u64, at: SimTime) {
        let pos = self.pos(qpn, idx);
        if self.slots.remove(&(qpn, pos)) == Some(SlotOwner::Software) {
            self.violations
                .push(Violation::SwOwnedFetch { qpn, idx, at });
        }
    }

    /// Slot `idx` was consumed without executing (corrupted descriptor
    /// skip, error-state flush): clear its state without an ownership
    /// check — these paths already surface error CQEs.
    pub fn slot_cleared(&mut self, qpn: u32, idx: u64) {
        let pos = self.pos(qpn, idx);
        self.slots.remove(&(qpn, pos));
    }

    /// A remote access (any opcode) quoted `rkey` for `[addr, +len)`.
    /// Flags violation (d) against the dead-region list.
    pub fn remote_access(
        &mut self,
        rkey: u32,
        addr: u64,
        len: u64,
        src_nic: u32,
        src_qpn: u32,
        at: SimTime,
    ) {
        if let Some(&(_, _, dereg_at)) = self.dead_mrs.get(&rkey) {
            self.violations.push(Violation::UseAfterDeregister {
                rkey,
                addr,
                len,
                src_nic,
                src_qpn,
                dereg_at,
                at,
            });
        }
    }

    /// A remote-sourced DMA write of `data` landed at `addr` (RDMA
    /// WRITE payload, SEND scatter entry, or READ/CAS response landing).
    /// Flags violations (b) and (c).
    pub fn remote_write(
        &mut self,
        addr: u64,
        data: &[u8],
        src_nic: u32,
        src_qpn: u32,
        at: SimTime,
    ) {
        let len = data.len() as u64;
        if len == 0 {
            return;
        }
        let end = addr + len;
        // (b) Did the write land inside a hardware-owned descriptor?
        for (&qpn, &(base, cap)) in &self.rings {
            let ring_end = base + cap as u64 * WQE_SIZE;
            if end <= base || addr >= ring_end {
                continue;
            }
            let lo = (addr.max(base) - base) / WQE_SIZE;
            let hi = (end.min(ring_end) - 1 - base) / WQE_SIZE;
            for slot in lo..=hi {
                if self.slots.get(&(qpn, slot)) == Some(&SlotOwner::Hardware) {
                    self.violations.push(Violation::ScatterAfterGrant {
                        ring_qpn: qpn,
                        slot,
                        addr,
                        src_nic,
                        src_qpn,
                        at,
                    });
                }
            }
        }
        // (c) Does the write overlap an earlier same-epoch write from a
        // different QP with different bytes?
        for w in &self.epoch_writes {
            if (w.src_nic, w.src_qpn) == (src_nic, src_qpn) {
                continue; // same source: serialized by its send queue
            }
            let lo = addr.max(w.start);
            let hi = end.min(w.end);
            if lo >= hi {
                continue;
            }
            let ours = &data[(lo - addr) as usize..(hi - addr) as usize];
            let theirs = &w.data[(lo - w.start) as usize..(hi - w.start) as usize];
            if ours == theirs {
                continue; // byte-identical rewrite: benign duplicate
            }
            self.violations.push(Violation::ConcurrentDmaOverlap {
                addr: lo,
                len: hi - lo,
                first_src: (w.src_nic, w.src_qpn),
                first_at: w.at,
                second_src: (src_nic, src_qpn),
                second_at: at,
            });
        }
        // The epoch log mirrors current memory content: overwrite the
        // bytes this write supersedes in earlier entries, so later
        // writes are compared against what memory actually holds (a
        // conflict is reported once, at the write that introduced it).
        for w in &mut self.epoch_writes {
            let lo = addr.max(w.start);
            let hi = end.min(w.end);
            if lo < hi {
                w.data[(lo - w.start) as usize..(hi - w.start) as usize]
                    .copy_from_slice(&data[(lo - addr) as usize..(hi - addr) as usize]);
            }
        }
        self.epoch_writes.push(DmaWrite {
            start: addr,
            end,
            src_nic,
            src_qpn,
            at,
            data: data.to_vec(),
        });
    }

    /// A region was deregistered: later accesses via its rkey are
    /// violation (d).
    pub fn mr_deregistered(&mut self, rkey: u32, addr: u64, len: u64, at: SimTime) {
        self.dead_mrs.insert(rkey, (addr, len, at));
    }

    /// A completion was delivered on this NIC: writes before it are
    /// ordered against writes after it, so the overlap epoch resets.
    pub fn completion_delivered(&mut self) {
        self.epoch_writes.clear();
    }

    /// All violations detected so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime::from_nanos(1_000);

    #[test]
    fn granted_fetch_is_clean() {
        let mut t = OwnershipTracker::default();
        t.track_ring(0, 0x1000, 8);
        t.slot_posted(0, 0, true);
        t.slot_granted(0, 0);
        t.slot_fetched(0, 0, T);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn ungranted_fetch_flags() {
        let mut t = OwnershipTracker::default();
        t.track_ring(0, 0x1000, 8);
        t.slot_posted(0, 3, true);
        t.slot_fetched(0, 3, T);
        assert!(matches!(
            t.violations(),
            [Violation::SwOwnedFetch { qpn: 0, idx: 3, .. }]
        ));
    }

    #[test]
    fn ring_positions_wrap() {
        let mut t = OwnershipTracker::default();
        t.track_ring(0, 0x1000, 8);
        t.slot_posted(0, 9, true); // slot 1 on the second lap
        t.slot_granted(0, 9);
        t.slot_fetched(0, 9, T);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn scatter_into_sw_slot_is_legal_into_hw_slot_is_not() {
        let mut t = OwnershipTracker::default();
        t.track_ring(2, 0x1000, 8);
        t.slot_posted(2, 0, true);
        t.remote_write(0x1008, &[7; 8], 1, 5, T); // software-owned: fine
        assert!(t.violations().is_empty());
        t.slot_granted(2, 0);
        t.remote_write(0x1008, &[9; 8], 1, 5, T);
        assert!(matches!(
            t.violations(),
            [Violation::ScatterAfterGrant {
                ring_qpn: 2,
                slot: 0,
                ..
            }]
        ));
    }

    #[test]
    fn overlapping_writes_from_different_qps_flag() {
        let mut t = OwnershipTracker::default();
        t.remote_write(0x8000, &[1; 64], 1, 10, T);
        t.remote_write(0x8020, &[2; 64], 2, 11, SimTime::from_nanos(2_000));
        assert!(matches!(
            t.violations(),
            [Violation::ConcurrentDmaOverlap {
                addr: 0x8020,
                len: 32,
                first_src: (1, 10),
                second_src: (2, 11),
                ..
            }]
        ));
    }

    #[test]
    fn identical_bytes_and_same_source_are_exempt() {
        let mut t = OwnershipTracker::default();
        t.remote_write(0x8000, &[1; 64], 1, 10, T);
        // Same source rewrites (go-back-N): serialized, not a race.
        t.remote_write(0x8000, &[2; 64], 1, 10, T);
        // Different source, byte-identical (re-issued record): benign.
        t.remote_write(0x8000, &[2; 64], 2, 11, T);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn completion_splits_the_epoch() {
        let mut t = OwnershipTracker::default();
        t.remote_write(0x8000, &[1; 64], 1, 10, T);
        t.completion_delivered();
        t.remote_write(0x8000, &[2; 64], 2, 11, T);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn dead_rkey_access_flags() {
        let mut t = OwnershipTracker::default();
        t.mr_deregistered(0x1001, 0x4000, 0x100, T);
        t.remote_access(0x1001, 0x4000, 64, 1, 5, SimTime::from_nanos(2_000));
        assert!(matches!(
            t.violations(),
            [Violation::UseAfterDeregister { rkey: 0x1001, .. }]
        ));
        t.remote_access(0x9999, 0x4000, 64, 1, 5, T); // live key: fine
        assert_eq!(t.violations().len(), 1);
    }
}
