//! Application-level experiment runners (paper §2.2 and §6.2 —
//! Figures 2, 11, 12).

use hl_cluster::{deliver, ClusterBuilder, Ctx, ProcEvent, Process, World};
use hl_fabric::HostId;
use hl_sim::config::HwProfile;
use hl_sim::{Engine, RngStream, SimDuration, SimTime, Summary};
use hl_store::doc::native::{self, NativeDocCosts};
use hl_store::doc::{DocLayout, DocStore};
use hl_store::kv::{KvConfig, KvDb};
use hl_ycsb::{
    preload_docstore, run_until_done, ycsb_document, FrontEndCosts, HlDriver, NativeDriver,
    OpGenerator, OpKind, Workload, YcsbStats,
};
use hyperloop::api::GroupClient;
use hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

/// Background tenant load per server host.
#[derive(Debug, Clone, Copy)]
pub struct Background {
    /// Always-runnable CPU hogs.
    pub hogs: usize,
    /// Bursty sleep/wake tenants.
    pub bursty: usize,
}

impl Default for Background {
    fn default() -> Self {
        Background {
            hogs: 20,
            bursty: 10,
        }
    }
}

/// A background tenant alternating CPU bursts with short sleeps.
pub struct BurstyHog {
    rng: RngStream,
}

impl Process for BurstyHog {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started | ProcEvent::Timer { .. } => {
                let burst = self.rng.range_u64(2_000_000, 10_000_000);
                ctx.submit_work(SimDuration::from_nanos(burst), 1);
            }
            ProcEvent::WorkDone { .. } => {
                let nap = self.rng.range_u64(500_000, 3_000_000);
                ctx.set_timer(
                    SimDuration::from_nanos(nap),
                    1,
                    SimDuration::from_nanos(500),
                );
            }
            _ => {}
        }
    }
}

/// Spawn the background load on a host (staggered starts).
pub fn spawn_background(w: &mut World, eng: &mut Engine<World>, host: HostId, bg: Background) {
    let mut rng = w.rng.stream_idx("bg-stagger", host.0 as u64);
    for k in 0..bg.hogs {
        let delay = SimDuration::from_nanos(rng.range_u64(0, 1_000_000));
        eng.schedule(delay, move |w: &mut World, eng| {
            w.spawn_hog(host, &format!("stress-hog-{}-{k}", host.0), eng);
        });
    }
    for k in 0..bg.bursty {
        let delay = SimDuration::from_nanos(rng.range_u64(0, 3_000_000));
        let seed = rng.u64();
        eng.schedule(delay, move |w: &mut World, eng| {
            let rng = w.rng.stream_idx("bursty", seed);
            w.start_process(
                host,
                &format!("stress-bursty-{}-{k}", host.0),
                None,
                Box::new(BurstyHog { rng }),
                SimDuration::from_micros(1),
                eng,
            );
        });
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — replicated RocksDB (kvlite) update latency
// ---------------------------------------------------------------------------

/// kvlite backend variants of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvBackend {
    /// Event-driven Naïve-RDMA replicas.
    NaiveEvent,
    /// Busy-polling Naïve-RDMA replicas, co-located (not pinned) —
    /// the paper's surprising loser under multi-tenancy.
    NaivePolling,
    /// NIC-offloaded HyperLoop.
    HyperLoop,
}

impl KvBackend {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            KvBackend::NaiveEvent => "Naive-Event",
            KvBackend::NaivePolling => "Naive-Polling",
            KvBackend::HyperLoop => "HyperLoop",
        }
    }
}

/// Figure 11 configuration.
#[derive(Debug, Clone)]
pub struct Fig11Cfg {
    /// Backend under test.
    pub backend: KvBackend,
    /// Recorded operations (YCSB-A: half are updates).
    pub ops: u64,
    /// Cores per replica host (the co-location ratio is procs:cores).
    pub cores: usize,
    /// Background load per replica host.
    pub background: Background,
    /// Extra co-located *polling* tenants per setup (the paper
    /// co-locates multiple I/O-intensive instances; pollers amplify the
    /// contention for the polling variant).
    pub extra_pollers: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig11Cfg {
    fn default() -> Self {
        Fig11Cfg {
            backend: KvBackend::HyperLoop,
            ops: 3_000,
            cores: 8,
            background: Background { hogs: 4, bursty: 6 },
            extra_pollers: 1,
            seed: 42,
        }
    }
}

const TAG_KV_FE: u64 = 61;

struct KvDriver<C: GroupClient + 'static> {
    db: KvDb<C>,
    gen: OpGenerator,
    rng: RngStream,
    stats: Rc<RefCell<YcsbStats>>,
    ops_left: u64,
    warmup: u64,
    cur: Option<(OpKind, SimTime)>,
}

struct KvWriteDone;
struct RetryPut(u64);

impl<C: GroupClient + 'static> KvDriver<C> {
    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.ops_left == 0 {
            self.stats.borrow_mut().drivers_done += 1;
            return;
        }
        self.ops_left -= 1;
        let op = self.gen.next_op(&mut self.rng);
        self.cur = Some((op.kind, ctx.now()));
        // RocksDB is an embedded library: the client-side cost is small.
        ctx.submit_work(SimDuration::from_micros(3), TAG_KV_FE | (op.key << 8));
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        let (kind, started) = self.cur.take().expect("op in flight");
        if self.warmup > 0 {
            self.warmup -= 1;
        } else {
            let lat = ctx.now().duration_since(started);
            self.stats.borrow_mut().record(kind, lat);
        }
        self.start_next(ctx);
    }

    fn try_put(&mut self, ctx: &mut Ctx<'_>, key: u64) {
        let me = ctx.me;
        let res = self.db.put(
            ctx.world,
            ctx.eng,
            format!("user{key:08}").as_bytes(),
            &[key as u8; 1024],
            Box::new(move |w, eng, _r| {
                deliver(
                    me,
                    ProcEvent::Message(Box::new(KvWriteDone)),
                    SimDuration::from_micros(1),
                    w,
                    eng,
                );
            }),
        );
        if res.is_err() {
            // Log full / ring credits exhausted: retry shortly.
            let me = ctx.me;
            ctx.eng
                .schedule(SimDuration::from_micros(200), move |w, eng| {
                    deliver(
                        me,
                        ProcEvent::Message(Box::new(RetryPut(key))),
                        SimDuration::from_micros(1),
                        w,
                        eng,
                    );
                });
        }
    }
}

impl<C: GroupClient + 'static> Process for KvDriver<C> {
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
        match ev {
            ProcEvent::Started => self.start_next(ctx),
            ProcEvent::WorkDone { tag } if tag & 0xff == TAG_KV_FE => {
                let key = tag >> 8;
                let (kind, _) = *self.cur.as_ref().expect("op in flight");
                match kind {
                    OpKind::Read | OpKind::Scan => {
                        let _ = self.db.get(format!("user{key:08}").as_bytes());
                        self.finish(ctx);
                    }
                    _ => self.try_put(ctx, key),
                }
            }
            ProcEvent::Message(m) => {
                if m.downcast_ref::<KvWriteDone>().is_some() {
                    self.finish(ctx);
                } else if let Ok(r) = m.downcast::<RetryPut>() {
                    self.try_put(ctx, r.0);
                }
            }
            _ => {}
        }
    }
}

/// Figure 11: run one backend, returning update-operation latency.
pub fn run_fig11(cfg: &Fig11Cfg) -> Summary {
    let mut profile = HwProfile::default();
    profile.cpu.cores = cfg.cores;
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(16 << 20)
        .profile(profile)
        .seed(cfg.seed)
        .build();
    let replicas = vec![HostId(1), HostId(2), HostId(3)];
    for &h in &replicas {
        spawn_background(&mut w, &mut eng, h, cfg.background);
    }
    // Co-located I/O-intensive tenants: extra (unmeasured) polling
    // replication instances sharing the replica CPUs.
    let n_extra = match cfg.backend {
        KvBackend::NaivePolling => cfg.extra_pollers,
        _ => 0,
    };
    for _ in 0..n_extra {
        let _ = NaiveBuilder::new(NaiveConfig {
            client: HostId(0),
            replicas: replicas.clone(),
            rep_bytes: 64 << 10,
            ring_slots: 16,
            mode: Mode::Polling,
            ..Default::default()
        })
        .build(&mut w, &mut eng);
    }

    let kv_cfg = KvConfig {
        layout: hyperloop::api::LogLayout {
            log_off: 0,
            log_cap: 2 << 20,
            db_off: 3 << 20,
        },
        sync_period: SimDuration::from_millis(1),
        truncate_at: 0.5,
        checkpoint_cap: 1 << 20,
    };
    let stats = YcsbStats::shared();
    match cfg.backend {
        KvBackend::HyperLoop => {
            let group = GroupBuilder::new(GroupConfig {
                client: HostId(0),
                replicas,
                rep_bytes: 4 << 20,
                ring_slots: 128,
                replenish_period: SimDuration::from_micros(100),
                transport_timeout: None,
            })
            .build(&mut w);
            // note: rep_bytes must cover the kv layout's db_off area.
            replica::start_replenishers(&group, &mut w, &mut eng);
            let client = Rc::new(HyperLoopClient::new(group, &mut w));
            let db = KvDb::open(client, kv_cfg, &mut w, &mut eng);
            drive_kv(db, cfg, &stats, &mut w, &mut eng);
        }
        KvBackend::NaiveEvent | KvBackend::NaivePolling => {
            let mode = if cfg.backend == KvBackend::NaiveEvent {
                Mode::Event
            } else {
                Mode::Polling
            };
            let client = Rc::new(
                NaiveBuilder::new(NaiveConfig {
                    client: HostId(0),
                    replicas,
                    rep_bytes: 4 << 20,
                    ring_slots: 128,
                    mode,
                    ..Default::default()
                })
                .build(&mut w, &mut eng),
            );
            let db = KvDb::open(client, kv_cfg, &mut w, &mut eng);
            drive_kv(db, cfg, &stats, &mut w, &mut eng);
        }
    }
    let s = stats.borrow();
    s.writes.summary()
}

fn drive_kv<C: GroupClient + 'static>(
    db: KvDb<C>,
    cfg: &Fig11Cfg,
    stats: &Rc<RefCell<YcsbStats>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let rng = w.rng.stream("kv-driver");
    w.start_process(
        HostId(0),
        "kv-ycsb",
        None,
        Box::new(KvDriver {
            db,
            gen: OpGenerator::new(Workload::A, 1000),
            rng,
            stats: stats.clone(),
            ops_left: cfg.ops * 2, // A is 50/50; ensure enough updates
            warmup: 100,
            cur: None,
        }),
        SimDuration::from_micros(1),
        eng,
    );
    run_until_done(w, eng, stats, 1, SimTime::from_nanos(u64::MAX / 2));
}

// ---------------------------------------------------------------------------
// Figure 2 — native replication under multi-tenancy
// ---------------------------------------------------------------------------

/// Figure 2 configuration: `sets` native replica sets over three servers
/// (plus three client hosts), `cores` CPU cores per server.
#[derive(Debug, Clone)]
pub struct Fig2Cfg {
    /// Number of replica sets (the paper sweeps 9..27).
    pub sets: usize,
    /// Cores per server (the paper sweeps 2..16).
    pub cores: usize,
    /// Recorded ops per set.
    pub ops_per_set: u64,
    /// Concurrent YCSB client threads per set.
    pub threads_per_set: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig2Cfg {
    fn default() -> Self {
        Fig2Cfg {
            sets: 18,
            cores: 16,
            ops_per_set: 400,
            threads_per_set: 12,
            seed: 42,
        }
    }
}

/// MongoDB-class per-op CPU costs (query parsing, BSON handling,
/// journalling, oplog application are far heavier than a lean engine's).
pub fn mongo_costs() -> NativeDocCosts {
    NativeDocCosts {
        tcp_rx: SimDuration::from_micros(10),
        parse: SimDuration::from_micros(150),
        journal: SimDuration::from_micros(60),
        apply: SimDuration::from_micros(100),
        send: SimDuration::from_micros(20),
    }
}

/// Figure 2 result.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Write (update) latency across all sets.
    pub writes: Summary,
    /// All-op latency.
    pub all: Summary,
    /// Context switches per simulated second, summed over the servers.
    pub ctx_per_sec: f64,
    /// Total context switches over the (fixed-work) run, summed over
    /// the servers — what the paper normalizes and plots.
    pub ctx_total: u64,
    /// Mean server CPU utilization.
    pub server_util: f64,
}

/// Run one Figure 2 point.
pub fn run_fig2(cfg: &Fig2Cfg) -> Fig2Result {
    let mut profile = HwProfile::default();
    profile.cpu.cores = cfg.cores;
    // 3 servers + 3 client hosts.
    let (mut w, mut eng) = ClusterBuilder::new(6)
        .arena_size(32 << 20)
        .profile(profile)
        .seed(cfg.seed)
        .build();
    let servers = [HostId(0), HostId(1), HostId(2)];
    let clients = [HostId(3), HostId(4), HostId(5)];

    let stats = YcsbStats::shared();
    let mut drivers = 0usize;
    for s in 0..cfg.sets {
        // Rotate the primary across servers.
        let hosts: Vec<HostId> = (0..3).map(|k| servers[(s + k) % 3]).collect();
        let set = native::spawn_native_set_workers(
            &mut w,
            &mut eng,
            &format!("set{s}"),
            &hosts,
            1536,
            128,
            cfg.threads_per_set,
            mongo_costs(),
        );
        let docs: Vec<_> = (0..128).map(|id| ycsb_document(id, 100)).collect();
        native::preload(&mut w, &set, 1536, 128, &docs);
        for t in 0..cfg.threads_per_set {
            let rng = w.rng.stream_idx("fig2-driver", (s * 64 + t) as u64);
            w.start_process(
                clients[s % 3],
                &format!("ycsb-{s}-{t}"),
                None,
                Box::new(NativeDriver::new(
                    set.primaries[t % set.primaries.len()],
                    set.write_recv_cost,
                    set.read_recv_cost,
                    Workload::A,
                    128,
                    cfg.ops_per_set,
                    20,
                    rng,
                    stats.clone(),
                    FrontEndCosts {
                        write: SimDuration::from_micros(120),
                        read: SimDuration::from_micros(60),
                        scan_per_doc: SimDuration::from_micros(4),
                    },
                )),
                SimDuration::from_micros(1),
                &mut eng,
            );
            drivers += 1;
        }
    }

    let start = eng.now();
    let ctx0: u64 = servers
        .iter()
        .map(|h| w.hosts[h.0].cpu.ctx_switches())
        .sum();
    run_until_done(
        &mut w,
        &mut eng,
        &stats,
        drivers,
        SimTime::from_nanos(u64::MAX / 2),
    );
    let now = eng.now();
    let secs = now.duration_since(start).as_secs_f64().max(1e-9);
    let ctx1: u64 = servers
        .iter()
        .map(|h| w.hosts[h.0].cpu.ctx_switches())
        .sum();
    let util = servers
        .iter()
        .map(|h| w.hosts[h.0].cpu.host_utilization(now))
        .sum::<f64>()
        / 3.0;

    let s = stats.borrow();
    Fig2Result {
        writes: s.writes.summary(),
        all: s.all.summary(),
        ctx_per_sec: (ctx1 - ctx0) as f64 / secs,
        ctx_total: ctx1 - ctx0,
        server_util: util,
    }
}

// ---------------------------------------------------------------------------
// Figure 12 — doclite (MongoDB-like) native vs HyperLoop across YCSB
// ---------------------------------------------------------------------------

/// Replication mode for Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocMode {
    /// Conventional CPU-driven primary/secondary replication.
    Native,
    /// HyperLoop NIC-offloaded chains.
    HyperLoop,
}

/// Figure 12 configuration.
#[derive(Debug, Clone)]
pub struct Fig12Cfg {
    /// Replication mode.
    pub mode: DocMode,
    /// Workload.
    pub workload: Workload,
    /// Total tenant databases (one measured; the rest provide load).
    pub sets: usize,
    /// Cores per server.
    pub cores: usize,
    /// Client threads driving each *background* database.
    pub bg_threads: usize,
    /// Recorded ops on the measured database.
    pub ops: u64,
    /// Records per database.
    pub records: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig12Cfg {
    fn default() -> Self {
        Fig12Cfg {
            mode: DocMode::Native,
            workload: Workload::A,
            sets: 12,
            cores: 8,
            bg_threads: 6,
            ops: 1_500,
            records: 128,
            seed: 42,
        }
    }
}

/// Figure 12 result.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Write (insert/update/RMW) latency on the measured database.
    pub writes: Summary,
    /// All-operation latency.
    pub all: Summary,
    /// Mean server ("backup") CPU utilization.
    pub server_util: f64,
}

/// Run one Figure 12 point.
pub fn run_fig12(cfg: &Fig12Cfg) -> Fig12Result {
    let mut profile = HwProfile::default();
    profile.cpu.cores = cfg.cores;
    let (mut w, mut eng) = ClusterBuilder::new(6)
        .arena_size(64 << 20)
        .profile(profile)
        .seed(cfg.seed)
        .build();
    let servers = [HostId(0), HostId(1), HostId(2)];
    let clients = [HostId(3), HostId(4), HostId(5)];

    let stats_measured = YcsbStats::shared();
    let stats_bg = YcsbStats::shared();
    let fe = FrontEndCosts {
        write: SimDuration::from_micros(150),
        read: SimDuration::from_micros(60),
        scan_per_doc: SimDuration::from_micros(4),
    };
    // The client machines are shared YCSB hosts: a little background
    // load there adds the client-stack jitter the paper attributes to
    // "MongoDB's software stack in the client".
    for &c in &clients {
        spawn_background(&mut w, &mut eng, c, Background { hogs: 2, bursty: 4 });
    }

    let layout = DocLayout {
        n_slots: cfg.records * 2,
        ..Default::default()
    };

    for s in 0..cfg.sets {
        let measured = s == 0;
        let stats = if measured { &stats_measured } else { &stats_bg };
        // Background sets run a continuous stream; the measured one
        // records `ops` then stops.
        let (ops, warmup) = if measured {
            (cfg.ops, 20)
        } else {
            (u64::MAX / 4, 0)
        };
        match cfg.mode {
            DocMode::Native => {
                let hosts: Vec<HostId> = (0..3).map(|k| servers[(s + k) % 3]).collect();
                let threads = if measured { 1 } else { cfg.bg_threads };
                let set = native::spawn_native_set_workers(
                    &mut w,
                    &mut eng,
                    &format!("set{s}"),
                    &hosts,
                    layout.slot_size,
                    layout.n_slots,
                    threads,
                    mongo_costs(),
                );
                let docs: Vec<_> = (0..cfg.records).map(|id| ycsb_document(id, 100)).collect();
                native::preload(&mut w, &set, layout.slot_size, layout.n_slots, &docs);
                for t in 0..threads {
                    let rng = w.rng.stream_idx("fig12-driver", (s * 64 + t) as u64);
                    w.start_process(
                        clients[s % 3],
                        &format!("ycsb-{s}-{t}"),
                        None,
                        Box::new(NativeDriver::new(
                            set.primaries[t % set.primaries.len()],
                            set.write_recv_cost,
                            set.read_recv_cost,
                            cfg.workload,
                            cfg.records,
                            ops,
                            warmup,
                            rng,
                            stats.clone(),
                            fe.clone(),
                        )),
                        SimDuration::from_micros(1),
                        &mut eng,
                    );
                }
            }
            DocMode::HyperLoop => {
                let group = GroupBuilder::new(GroupConfig {
                    client: clients[s % 3],
                    replicas: servers.to_vec(),
                    rep_bytes: 2 << 20,
                    ring_slots: 64,
                    replenish_period: SimDuration::from_micros(200),
                    transport_timeout: None,
                })
                .build(&mut w);
                replica::start_replenishers(&group, &mut w, &mut eng);
                let client = Rc::new(HyperLoopClient::new(group, &mut w));
                preload_docstore(&mut w, &*client, &layout, cfg.records, 100);
                let store = DocStore::open(client, layout.clone(), s as u32 + 1, true);
                let rng = w.rng.stream_idx("fig12-driver", s as u64);
                w.start_process(
                    clients[s % 3],
                    &format!("ycsb-{s}"),
                    None,
                    Box::new(HlDriver::new(
                        store,
                        cfg.workload,
                        cfg.records,
                        ops,
                        warmup,
                        rng,
                        stats.clone(),
                        fe.clone(),
                    )),
                    SimDuration::from_micros(1),
                    &mut eng,
                );
            }
        }
    }

    run_until_done(
        &mut w,
        &mut eng,
        &stats_measured,
        1,
        SimTime::from_nanos(u64::MAX / 2),
    );
    let now = eng.now();
    let util = servers
        .iter()
        .map(|h| w.hosts[h.0].cpu.host_utilization(now))
        .sum::<f64>()
        / 3.0;
    let s = stats_measured.borrow();
    Fig12Result {
        writes: s.writes.summary(),
        all: s.all.summary(),
        server_util: util,
    }
}
