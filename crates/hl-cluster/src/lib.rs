//! # hl-cluster — the simulated testbed
//!
//! Composes the substrates into a cluster: each [`Host`] owns an NVM
//! arena, an RDMA NIC and a multi-tenant CPU; a [`Fabric`] connects
//! them; one deterministic [`Engine`] drives everything.
//!
//! Two kinds of actors exist:
//!
//! * **Processes** ([`Process`]) — application logic that must hold a
//!   CPU core to run. Events destined for a process (messages, timers,
//!   completion interrupts) are queued and delivered only after the
//!   scheduler gives the process a core and charges the declared CPU
//!   cost. This is how replica CPUs end up on the critical path in the
//!   baseline systems.
//! * **Zero-CPU drivers** — closures subscribed to completion queues
//!   ([`World::subscribe_cq_callback`]). Used by load generators and by
//!   HyperLoop clients in microbenchmarks, where the paper dedicates an
//!   uncontended client machine.

#![warn(missing_docs)]

pub mod chaos;
pub mod exec;
pub mod migrate;
pub mod shard;

use hl_cpu::{CpuOutput, HostCpu, ProcId};
use hl_fabric::{Delivery, Fabric, HostId};
use hl_nvm::{Layout, NvmArena};
use hl_rnic::{Cqe, Nic, NicEvent, NicEventKind, NicOutput, Packet, RecvWqe, RingFull, Wqe};
use hl_sim::config::HwProfile;
use hl_sim::telemetry::Stage;
use hl_sim::{
    Attribution, Engine, EventCtx, EventToken, RngFactory, RngStream, SimDuration, SimTime,
    Telemetry, Tracer,
};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Work tag reserved for event-dispatch CPU work.
const DISPATCH_TAG: u64 = u64::MAX;

/// One simulated server.
pub struct Host {
    /// Its RDMA NIC.
    pub nic: Nic,
    /// Its non-volatile memory.
    pub mem: NvmArena,
    /// Its CPUs.
    pub cpu: HostCpu,
    /// Region allocator over the arena.
    pub layout: Layout,
}

impl Host {
    /// Post a send WQE (see [`Nic::post_send`]); splits the NIC/memory
    /// borrow so callers can go through `&mut Host`.
    pub fn post_send(&mut self, qpn: u32, wqe: Wqe, deferred: bool) -> Result<u64, RingFull> {
        self.nic.post_send(&mut self.mem, qpn, wqe, deferred)
    }

    /// Grant NIC ownership of a deferred WQE.
    pub fn grant_ownership(&mut self, qpn: u32, idx: u64) {
        self.nic.grant_ownership(&mut self.mem, qpn, idx)
    }

    /// Post a receive.
    pub fn post_recv(&mut self, qpn: u32, wqe: RecvWqe) {
        self.nic.post_recv(qpn, wqe)
    }
}

/// An event delivered to a [`Process`] after it gets CPU time.
pub enum ProcEvent {
    /// First activation after [`World::start_process`].
    Started,
    /// A message from another process (same or different host).
    Message(Box<dyn Any>),
    /// An armed completion queue produced a CQE (event-driven I/O).
    CqEvent {
        /// The CQ that fired.
        cq: u32,
    },
    /// A timer set via [`Ctx::set_timer`] expired.
    Timer {
        /// The tag given at arm time.
        tag: u64,
    },
    /// CPU work submitted via [`Ctx::submit_work`] finished.
    WorkDone {
        /// The tag given at submission.
        tag: u64,
    },
}

/// Application logic scheduled on a host CPU.
pub trait Process {
    /// Handle one event. The process has just been charged the delivery
    /// cost and is running on a core.
    fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>);
}

/// Handle to a process: host + process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcAddr {
    /// Host the process runs on.
    pub host: HostId,
    /// Scheduler id on that host.
    pub pid: ProcId,
}

/// Everything a [`Process`] may do while handling an event.
pub struct Ctx<'a> {
    /// The whole world (hosts, fabric, tracer).
    pub world: &'a mut World,
    /// The event engine, for scheduling raw closures.
    pub eng: &'a mut Engine<World>,
    /// The handling process's address.
    pub me: ProcAddr,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.eng.now()
    }

    /// This process's host.
    pub fn host(&mut self) -> &mut Host {
        &mut self.world.hosts[self.me.host.0]
    }

    /// Submit additional CPU work; completion arrives as
    /// [`ProcEvent::WorkDone`] with `tag`.
    pub fn submit_work(&mut self, d: SimDuration, tag: u64) {
        assert_ne!(tag, DISPATCH_TAG, "reserved tag");
        let now = self.now();
        let outs = self.world.hosts[self.me.host.0]
            .cpu
            .submit(now, self.me.pid, d.as_nanos(), tag);
        route_cpu(self.me.host, outs, self.world, self.eng);
    }

    /// Arm a timer; fires as [`ProcEvent::Timer`] with `tag` after
    /// `delay`, charged `cost` CPU on delivery.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64, cost: SimDuration) {
        let me = self.me;
        self.eng.schedule(delay, move |w: &mut World, eng| {
            deliver(me, ProcEvent::Timer { tag }, cost, w, eng);
        });
    }

    /// Send `msg` to another process. `wire_bytes` is what crosses the
    /// fabric; `recv_cost` is the CPU charged to the receiver for
    /// handling it (network-stack + parsing cost).
    pub fn send_msg(
        &mut self,
        to: ProcAddr,
        msg: Box<dyn Any>,
        wire_bytes: usize,
        recv_cost: SimDuration,
    ) {
        let now = self.now();
        self.world
            .send_msg_at(now, self.me.host, to, msg, wire_bytes, recv_cost, self.eng);
    }

    /// Ring a QP doorbell and route the NIC's outputs.
    pub fn ring_doorbell(&mut self, qpn: u32) {
        let now = self.now();
        let host = self.me.host;
        let h = &mut self.world.hosts[host.0];
        let outs = h.nic.ring_doorbell(now, qpn, &mut h.mem);
        route_nic(host, outs, self.world, self.eng);
    }

    /// Poll a CQ (the CPU cost of polling is the caller's to model).
    pub fn poll_cq(&mut self, cq: u32, max: usize) -> Vec<Cqe> {
        self.world.hosts[self.me.host.0].nic.poll_cq(cq, max)
    }

    /// Re-arm the one-shot CQ event.
    pub fn arm_cq(&mut self, cq: u32) {
        self.world.hosts[self.me.host.0].nic.arm_cq(cq);
    }
}

/// Zero-CPU driver callback signature.
type CqCallback = Box<dyn FnMut(Cqe, &mut World, &mut Engine<World>)>;

/// CQ subscription kinds.
enum CqSub {
    /// Wake a process with a completion interrupt (event-driven I/O).
    Interrupt { pid: ProcId, cost: SimDuration },
    /// Zero-CPU driver callback: invoked per CQE, auto-rearmed.
    Callback(CqCallback),
}

struct ProcSlot {
    proc: Option<Box<dyn Process>>,
    mailbox: VecDeque<ProcEvent>,
}

/// The simulated world: hosts + fabric + process registry.
pub struct World {
    /// All hosts.
    pub hosts: Vec<Host>,
    /// The network.
    pub fabric: Fabric,
    /// Trace buffer.
    pub tracer: Tracer,
    /// Hardware profile used to build this world.
    pub profile: HwProfile,
    /// Random stream factory (seeded).
    pub rng: RngFactory,
    drop_rng: RngStream,
    procs: Vec<Vec<ProcSlot>>,
    cq_subs: BTreeMap<(usize, u32), CqSub>,
    /// Packets lost to fault injection.
    pub dropped_packets: u64,
    /// Causal op tracing + labelled metrics (off until
    /// [`World::enable_telemetry`]).
    pub telemetry: Telemetry,
    /// Live ack-timer event per reliable QP, keyed `(host, qpn)`.
    /// Superseded or dead timers are cancelled in the engine rather
    /// than left queued as no-op events.
    timer_tokens: BTreeMap<(usize, u32), EventToken>,
    /// Reused buffer for NIC telemetry drains: events hop NIC → scratch
    /// → hub without allocating in steady state (the NIC buffer and
    /// this scratch both keep their capacity).
    nic_event_scratch: Vec<NicEvent>,
    /// Reused buffer for callback CQ drains (see `dispatch_cq_event`):
    /// completions are polled into this scratch instead of a fresh
    /// `Vec` per poll. Taken out of the world during the drain, so a
    /// reentrant drain simply grows a transient empty `Vec`.
    cqe_scratch: Vec<Cqe>,
}

/// High-frequency datapath events, dispatched through the engine's
/// typed fast path (no per-event allocation; see [`EventCtx`]).
/// Cold-path events (process delivery, chaos injection, application
/// callbacks) keep using boxed closures.
pub enum WorldEvent {
    /// Hand `packet` to the fabric (egress serialization + propagation)
    /// at the scheduled transmit time.
    FabricTx {
        /// Transmitting host.
        src: HostId,
        /// Destination host.
        dst: HostId,
        /// The packet.
        packet: Packet,
    },
    /// `packet` arrives at `dst`'s NIC.
    NicRx {
        /// Receiving host.
        dst: HostId,
        /// The packet.
        packet: Packet,
    },
    /// Deliver a CQE on `host` (completion latency elapsed).
    CqeDeliver {
        /// The host whose NIC delivers.
        host: HostId,
        /// Target CQ.
        cq: u32,
        /// The completion.
        cqe: Cqe,
    },
    /// Finish a NIC-local loopback operation (DMA copy / CAS / flush).
    DoLocal {
        /// The host.
        host: HostId,
        /// Loopback QP.
        qpn: u32,
        /// The WQE to execute locally.
        wqe: Wqe,
    },
    /// A reliable QP's ack-retransmit timer expired.
    NicTimer {
        /// The host.
        host: HostId,
        /// The QP whose timer this is.
        qpn: u32,
        /// Timer generation at arm time (staleness check).
        gen: u64,
    },
    /// A CPU scheduler core timer expired.
    CpuTimer {
        /// The host.
        host: HostId,
        /// Core index.
        core: usize,
        /// Generation at arm time (staleness check).
        gen: u64,
    },
}

impl EventCtx for World {
    type Event = WorldEvent;

    fn run_event(&mut self, eng: &mut Engine<World>, ev: WorldEvent) {
        let now = eng.now();
        match ev {
            WorldEvent::FabricTx { src, dst, packet } => {
                let size = packet.wire_size();
                let draw = self.drop_rng.f64();
                hl_sim::trace!(
                    self.tracer,
                    now,
                    "fabric",
                    "{src}->{dst} {size}B qp{}->qp{}",
                    packet.src_qpn,
                    packet.dst_qpn
                );
                match self.fabric.send(now, src, dst, size, draw) {
                    Delivery::At(arrive) => {
                        eng.schedule_event_at(arrive, WorldEvent::NicRx { dst, packet });
                    }
                    Delivery::Duplicated(arrive, again) => {
                        hl_sim::trace!(self.tracer, now, "fabric", "{src}->{dst} DUPLICATED");
                        eng.schedule_event_at(
                            again,
                            WorldEvent::NicRx {
                                dst,
                                packet: packet.clone(),
                            },
                        );
                        eng.schedule_event_at(arrive, WorldEvent::NicRx { dst, packet });
                    }
                    Delivery::Dropped => {
                        hl_sim::trace!(self.tracer, now, "fabric", "{src}->{dst} DROPPED");
                        self.dropped_packets += 1;
                    }
                }
            }
            WorldEvent::NicRx { dst, packet } => {
                let h = &mut self.hosts[dst.0];
                let outs = h.nic.on_packet(now, packet, &mut h.mem);
                route_nic(dst, outs, self, eng);
            }
            WorldEvent::CqeDeliver { host, cq, cqe } => {
                hl_sim::trace!(
                    self.tracer,
                    now,
                    "rnic",
                    "{host} cqe cq{cq} qp{} wr{} {:?}",
                    cqe.qpn,
                    cqe.wr_id,
                    cqe.status
                );
                if cqe.status != hl_rnic::CqeStatus::Ok {
                    // Error CQEs are rare and always incident-relevant:
                    // snapshot in-flight state for the postmortem.
                    self.telemetry
                        .flight_dump(now, format!("cqe:{:?}:host{}", cqe.status, host.0));
                }
                let h = &mut self.hosts[host.0];
                let outs = h.nic.deliver_cqe(now, cq, cqe, &mut h.mem);
                route_nic(host, outs, self, eng);
            }
            WorldEvent::DoLocal { host, qpn, wqe } => {
                let h = &mut self.hosts[host.0];
                let outs = h.nic.finish_local(now, qpn, wqe, &mut h.mem);
                route_nic(host, outs, self, eng);
            }
            WorldEvent::NicTimer { host, qpn, gen } => {
                self.timer_tokens.remove(&(host.0, qpn));
                let h = &mut self.hosts[host.0];
                let outs = h.nic.on_timer(now, qpn, gen, &mut h.mem);
                route_nic(host, outs, self, eng);
            }
            WorldEvent::CpuTimer { host, core, gen } => {
                let outs = self.hosts[host.0].cpu.on_timer(now, core, gen);
                route_cpu(host, outs, self, eng);
            }
        }
    }
}

impl World {
    /// Host accessor.
    pub fn host(&mut self, h: HostId) -> &mut Host {
        &mut self.hosts[h.0]
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True if the world has no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Register a process on a host. It is delivered
    /// [`ProcEvent::Started`] (with `start_cost` CPU) once the engine
    /// runs.
    pub fn start_process(
        &mut self,
        host: HostId,
        name: &str,
        pinned: Option<usize>,
        proc: Box<dyn Process>,
        start_cost: SimDuration,
        eng: &mut Engine<World>,
    ) -> ProcAddr {
        let pid = self.hosts[host.0].cpu.spawn(name, pinned);
        let slots = &mut self.procs[host.0];
        while slots.len() <= pid.0 {
            slots.push(ProcSlot {
                proc: None,
                mailbox: VecDeque::new(),
            });
        }
        slots[pid.0].proc = Some(proc);
        let addr = ProcAddr { host, pid };
        eng.schedule(SimDuration::ZERO, move |w: &mut World, eng| {
            deliver(addr, ProcEvent::Started, start_cost, w, eng);
        });
        addr
    }

    /// Replace the logic of an existing process (setup-time wiring).
    pub fn replace_process(&mut self, addr: ProcAddr, proc: Box<dyn Process>) {
        self.procs[addr.host.0][addr.pid.0].proc = Some(proc);
    }

    /// Spawn a `stress-ng`-style CPU hog on a host.
    pub fn spawn_hog(&mut self, host: HostId, name: &str, eng: &mut Engine<World>) {
        let now = eng.now();
        let (_pid, outs) = self.hosts[host.0].cpu.spawn_hog(now, name);
        route_cpu(host, outs, self, eng);
    }

    /// Subscribe a process to completion events of a CQ (event-driven
    /// replica). The CQ is armed; each event costs `cost` CPU.
    pub fn subscribe_cq_interrupt(
        &mut self,
        host: HostId,
        cq: u32,
        pid: ProcId,
        cost: SimDuration,
    ) {
        self.hosts[host.0].nic.arm_cq(cq);
        self.cq_subs
            .insert((host.0, cq), CqSub::Interrupt { pid, cost });
    }

    /// Subscribe a zero-CPU callback to a CQ (benchmark drivers /
    /// HyperLoop clients). Drains and auto-rearms.
    pub fn subscribe_cq_callback(
        &mut self,
        host: HostId,
        cq: u32,
        f: impl FnMut(Cqe, &mut World, &mut Engine<World>) + 'static,
    ) {
        self.hosts[host.0].nic.arm_cq(cq);
        let cb: CqCallback = Box::new(f);
        self.cq_subs.insert((host.0, cq), CqSub::Callback(cb));
    }

    /// Ring a doorbell from outside a process (drivers).
    pub fn ring_doorbell(&mut self, host: HostId, qpn: u32, eng: &mut Engine<World>) {
        let now = eng.now();
        let h = &mut self.hosts[host.0];
        let outs = h.nic.ring_doorbell(now, qpn, &mut h.mem);
        route_nic(host, outs, self, eng);
    }

    /// Send a message between processes (driver-side variant of
    /// [`Ctx::send_msg`]).
    #[allow(clippy::too_many_arguments)]
    pub fn send_msg_at(
        &mut self,
        now: SimTime,
        from: HostId,
        to: ProcAddr,
        msg: Box<dyn Any>,
        wire_bytes: usize,
        recv_cost: SimDuration,
        eng: &mut Engine<World>,
    ) {
        if from == to.host && wire_bytes == 0 {
            // Same-host IPC: a microsecond of kernel round trip.
            let delay = SimDuration::from_micros(1);
            eng.schedule(delay, move |w: &mut World, eng| {
                deliver(to, ProcEvent::Message(msg), recv_cost, w, eng);
            });
            return;
        }
        let draw = self.drop_rng.f64();
        match self.fabric.send(now, from, to.host, wire_bytes, draw) {
            // Control messages are boxed `Any` and cannot be cloned, so
            // an impairment duplicate delivers only the original copy —
            // process protocols see duplication as reordering-free loss
            // of the duplicate, which is indistinguishable on the wire.
            Delivery::At(at) | Delivery::Duplicated(at, _) => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    deliver(to, ProcEvent::Message(msg), recv_cost, w, eng);
                });
            }
            Delivery::Dropped => self.dropped_packets += 1,
        }
    }

    /// Connect two QPs on different hosts (both directions).
    pub fn connect_qps(&mut self, a: HostId, qp_a: u32, b: HostId, qp_b: u32) {
        self.hosts[a.0].nic.connect(qp_a, b.0 as u32, qp_b);
        self.hosts[b.0].nic.connect(qp_b, a.0 as u32, qp_a);
    }

    /// Stall or un-stall a host's NIC (fault injection: hung adapter).
    /// Routes the kick-outputs produced when the stall clears.
    pub fn set_nic_stalled(&mut self, host: HostId, on: bool, eng: &mut Engine<World>) {
        let now = eng.now();
        hl_sim::trace!(
            self.tracer,
            now,
            "fault",
            "{host} nic {}",
            if on { "STALL" } else { "unstall" }
        );
        let h = &mut self.hosts[host.0];
        let outs = h.nic.set_stalled(now, on, &mut h.mem);
        route_nic(host, outs, self, eng);
    }

    /// One line per violation recorded by the race detector across
    /// every NIC, plus any FIFO-order violations from the fabric
    /// auditor, in host order (feature `check-ownership`). Empty means
    /// the run was race-free.
    #[cfg(feature = "check-ownership")]
    pub fn race_report(&self) -> Vec<String> {
        let mut report = Vec::new();
        for (i, h) in self.hosts.iter().enumerate() {
            for v in h.nic.race_violations() {
                report.push(format!("h{i}: {v}"));
            }
        }
        for v in self.fabric.order_violations() {
            report.push(format!(
                "fabric: delivery {}->{} at {}ns regresses behind {}ns",
                v.src,
                v.dst,
                v.delivery.as_nanos(),
                v.prev_delivery.as_nanos()
            ));
        }
        report
    }

    /// Break or repair WAIT triggering on a host's NIC (fault injection:
    /// CORE-Direct offload malfunction; CPU-posted work still runs).
    pub fn set_nic_wait_stalled(&mut self, host: HostId, on: bool, eng: &mut Engine<World>) {
        let now = eng.now();
        hl_sim::trace!(
            self.tracer,
            now,
            "fault",
            "{host} wait-engine {}",
            if on { "STALL" } else { "unstall" }
        );
        let h = &mut self.hosts[host.0];
        let outs = h.nic.set_wait_stalled(now, on, &mut h.mem);
        route_nic(host, outs, self, eng);
    }

    /// Turn on causal op tracing: the telemetry hub starts recording
    /// spans and every NIC starts stamping op-stage events (drained by
    /// the output router). Off by default so untraced runs pay nothing.
    pub fn enable_telemetry(&mut self) {
        self.telemetry.enable();
        for h in &mut self.hosts {
            h.nic.set_telemetry(true);
        }
    }

    /// Turn on causal op tracing *and* the windowed time-series layer
    /// with the given window width (see [`hl_sim::TimeSeries`]): issue
    /// paths start feeding per-window counters and latency sketches,
    /// and the flight recorder arms for error-CQE and chaos-fault
    /// dumps.
    pub fn enable_timeseries(&mut self, window: SimDuration) {
        self.enable_telemetry();
        self.telemetry.series.enable(window);
    }

    /// Per-hop latency attribution over every completed op span,
    /// grouped by primitive (the Fig. 2 / Fig. 9 decomposition).
    pub fn attribution(&self) -> Attribution {
        self.telemetry.attribution()
    }

    /// Snapshot cluster-wide state into the labelled metrics registry:
    /// NIC counters and ring occupancy, fabric traffic and drops, CPU
    /// scheduling delay and hog occupancy. Counters are absolute
    /// (monotonic since boot), so re-collecting overwrites rather than
    /// double-counts.
    pub fn collect_metrics(&mut self, now: SimTime) {
        for (i, h) in self.hosts.iter().enumerate() {
            let host = format!("host={i}");
            let c = h.nic.counters().clone();
            let m = &mut self.telemetry.metrics;
            m.counter_set("nic_doorbells", &host, c.doorbells);
            m.counter_set("nic_wqes_executed", &host, c.wqes_executed);
            m.counter_set("nic_wait_parks", &host, c.wait_parks);
            m.counter_set("nic_wait_fires", &host, c.wait_fires);
            m.counter_set("nic_tx_packets", &host, c.tx_packets);
            m.counter_set("nic_rx_packets", &host, c.rx_packets);
            m.counter_set("nic_rx_dropped", &host, c.rx_dropped);
            m.counter_set("nic_retransmits", &host, c.retransmits);
            m.counter_set("nic_timeouts", &host, c.timeouts);
            m.counter_set("nic_error_cqes", &host, c.error_cqes);
            m.counter_set("fabric_bytes_tx", &host, self.fabric.bytes_tx(HostId(i)));
            m.counter_set("fabric_msgs_tx", &host, self.fabric.msgs_tx(HostId(i)));
            for qpn in 0..h.nic.num_qps() as u32 {
                let (head, tail, cap) = h.nic.sq_state(qpn);
                if cap == 0 {
                    continue;
                }
                let occ = (tail - head) as f64 / cap as f64;
                m.gauge_set("sq_occupancy", &format!("host={i},qp={qpn}"), occ);
            }
            let sl = h.cpu.sched_latency();
            if !sl.is_empty() {
                m.histogram_set("cpu_sched_latency_ns", &host, sl.clone());
            }
            m.counter_set("cpu_ctx_switches", &host, h.cpu.ctx_switches());
            m.counter_set("cpu_hog_busy_ns", &host, h.cpu.busy_ns_by_prefix("stress-"));
            m.gauge_set("cpu_utilization", &host, h.cpu.host_utilization(now));
        }
        self.telemetry
            .metrics
            .counter_set("fabric_drops", "", self.fabric.drops());
        self.telemetry
            .metrics
            .counter_set("fabric_injected_drops", "", self.dropped_packets);
    }
}

/// Builder for a [`World`].
pub struct ClusterBuilder {
    hosts: usize,
    arena: usize,
    profile: HwProfile,
    seed: u64,
}

impl ClusterBuilder {
    /// A cluster of `hosts` hosts.
    pub fn new(hosts: usize) -> Self {
        ClusterBuilder {
            hosts,
            arena: 8 << 20,
            profile: HwProfile::default(),
            seed: 42,
        }
    }

    /// NVM arena bytes per host (default 8 MiB).
    pub fn arena_size(mut self, bytes: usize) -> Self {
        self.arena = bytes;
        self
    }

    /// Hardware profile.
    pub fn profile(mut self, p: HwProfile) -> Self {
        self.profile = p;
        self
    }

    /// Experiment seed (all randomness derives from it).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Build the world and its engine.
    pub fn build(self) -> (World, Engine<World>) {
        let rng = RngFactory::new(self.seed);
        let hosts = (0..self.hosts)
            .map(|i| {
                let mut cpu = HostCpu::new(self.profile.cpu.clone());
                cpu.set_rng(rng.stream_idx("cpu", i as u64));
                Host {
                    nic: Nic::new(
                        i as u32,
                        self.profile.nic.clone(),
                        rng.stream_idx("nic", i as u64),
                    ),
                    mem: NvmArena::new(self.arena),
                    cpu,
                    layout: Layout::new(self.arena as u64),
                }
            })
            .collect();
        let mut fabric = Fabric::new(self.hosts, self.profile.net.clone());
        // Dedicated stream for the gray-failure impairment knobs so
        // turning impairments on never perturbs other random streams.
        fabric.set_impairment_rng(rng.stream("fabric-impair"));
        let world = World {
            hosts,
            fabric,
            tracer: Tracer::default(),
            drop_rng: rng.stream("fabric-drops"),
            rng,
            profile: self.profile,
            procs: (0..self.hosts).map(|_| Vec::new()).collect(),
            cq_subs: BTreeMap::new(),
            dropped_packets: 0,
            telemetry: Telemetry::default(),
            timer_tokens: BTreeMap::new(),
            nic_event_scratch: Vec::new(),
            cqe_scratch: Vec::new(),
        };
        (world, Engine::new())
    }
}

// ----- event routing -------------------------------------------------------

/// Queue `ev` for a process and charge `cost` CPU for its delivery.
pub fn deliver(
    to: ProcAddr,
    ev: ProcEvent,
    cost: SimDuration,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    w.procs[to.host.0][to.pid.0].mailbox.push_back(ev);
    let now = eng.now();
    let outs = w.hosts[to.host.0]
        .cpu
        .submit(now, to.pid, cost.as_nanos(), DISPATCH_TAG);
    route_cpu(to.host, outs, w, eng);
}

/// Turn CPU-model outputs into events.
pub fn route_cpu(host: HostId, outs: Vec<CpuOutput>, w: &mut World, eng: &mut Engine<World>) {
    for o in outs {
        match o {
            CpuOutput::Timer { core, gen, at } => {
                eng.schedule_event_at(at, WorldEvent::CpuTimer { host, core, gen });
            }
            CpuOutput::WorkDone { pid, tag } => {
                let addr = ProcAddr { host, pid };
                if tag == DISPATCH_TAG {
                    let Some(ev) = w.procs[host.0][pid.0].mailbox.pop_front() else {
                        continue;
                    };
                    run_handler(addr, ev, w, eng);
                } else {
                    run_handler(addr, ProcEvent::WorkDone { tag }, w, eng);
                }
            }
        }
    }
}

fn run_handler(addr: ProcAddr, ev: ProcEvent, w: &mut World, eng: &mut Engine<World>) {
    // Slot dance: take the process out so the handler can borrow the
    // world mutably.
    let Some(mut proc) = w.procs[addr.host.0][addr.pid.0].proc.take() else {
        return; // process was stopped
    };
    {
        let mut ctx = Ctx {
            world: w,
            eng,
            me: addr,
        };
        proc.on_event(ev, &mut ctx);
    }
    // Put it back unless the handler replaced/stopped itself.
    let slot = &mut w.procs[addr.host.0][addr.pid.0];
    if slot.proc.is_none() {
        slot.proc = Some(proc);
    }
}

/// Forward a NIC's buffered telemetry events to the world's hub.
///
/// Runs after every NIC entry-point call on the datapath, so it moves
/// events through a reused scratch buffer instead of `take_events`'s
/// fresh `Vec` per drain — zero allocations in steady state.
fn drain_nic_telemetry(host: HostId, w: &mut World) {
    if !w.hosts[host.0].nic.has_events() {
        return;
    }
    let mut scratch = std::mem::take(&mut w.nic_event_scratch);
    w.hosts[host.0].nic.take_events_into(&mut scratch);
    for e in scratch.drain(..) {
        let (stage, detail) = match e.kind {
            NicEventKind::Fetch { qpn } => (Stage::NicFetch, qpn),
            NicEventKind::WaitPark { cq } => (Stage::WaitPark, cq),
            NicEventKind::WaitFire { cq } => (Stage::WaitFire, cq),
            NicEventKind::TxWire { dst } => (Stage::TxWire, dst),
            NicEventKind::RxWire { src } => (Stage::RxWire, src),
            NicEventKind::DmaDone { qpn } => (Stage::DmaDone, qpn),
            NicEventKind::CqeDeliver { cq } => (Stage::CqeDeliver, cq),
        };
        w.telemetry.stage(e.at, e.op, stage, host.0, detail);
    }
    w.nic_event_scratch = scratch;
}

/// Turn NIC outputs into events.
pub fn route_nic(host: HostId, outs: Vec<NicOutput>, w: &mut World, eng: &mut Engine<World>) {
    drain_nic_telemetry(host, w);
    for o in outs {
        match o {
            NicOutput::Transmit {
                at,
                dst_nic,
                packet,
            } => {
                let dst = HostId(dst_nic as usize);
                eng.schedule_event_at(
                    at,
                    WorldEvent::FabricTx {
                        src: host,
                        dst,
                        packet,
                    },
                );
            }
            NicOutput::Complete { at, cq, cqe } => {
                eng.schedule_event_at(at, WorldEvent::CqeDeliver { host, cq, cqe });
            }
            NicOutput::DoLocal { at, qpn, wqe } => {
                eng.schedule_event_at(at, WorldEvent::DoLocal { host, qpn, wqe });
            }
            NicOutput::CqEvent { cq } => {
                dispatch_cq_event(host, cq, w, eng);
            }
            NicOutput::ArmTimer { at, qpn, gen } => {
                // A new arm supersedes any timer still queued for this
                // QP: cancel it instead of letting it fire as a
                // stale-generation no-op.
                let tok = eng.schedule_event_at(at, WorldEvent::NicTimer { host, qpn, gen });
                if let Some(old) = w.timer_tokens.insert((host.0, qpn), tok) {
                    eng.cancel(old);
                }
            }
            NicOutput::CancelTimer { qpn } => {
                if let Some(tok) = w.timer_tokens.remove(&(host.0, qpn)) {
                    eng.cancel(tok);
                }
            }
        }
    }
}

fn dispatch_cq_event(host: HostId, cq: u32, w: &mut World, eng: &mut Engine<World>) {
    let Some(sub) = w.cq_subs.remove(&(host.0, cq)) else {
        return;
    };
    match sub {
        CqSub::Interrupt { pid, cost } => {
            // Interrupt delivery latency, then wake the process.
            let delay = w.profile.cpu.interrupt;
            let addr = ProcAddr { host, pid };
            eng.schedule(delay, move |w: &mut World, eng| {
                deliver(addr, ProcEvent::CqEvent { cq }, cost, w, eng);
            });
            w.cq_subs
                .insert((host.0, cq), CqSub::Interrupt { pid, cost });
            // The process must re-arm after draining (as with
            // ibv_req_notify_cq); see Ctx::arm_cq.
        }
        CqSub::Callback(mut f) => {
            // Zero-CPU driver: drain now, re-arm. Completions go through
            // the world's reusable scratch so the steady-state drain
            // performs no allocations.
            let mut cqes = std::mem::take(&mut w.cqe_scratch);
            loop {
                cqes.clear();
                w.hosts[host.0].nic.poll_cq_into(cq, 64, &mut cqes);
                if cqes.is_empty() {
                    break;
                }
                for &c in &cqes {
                    f(c, w, eng);
                }
            }
            cqes.clear();
            w.cqe_scratch = cqes;
            w.hosts[host.0].nic.arm_cq(cq);
            w.cq_subs.insert((host.0, cq), CqSub::Callback(f));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_rnic::{Access, Opcode};

    #[test]
    fn builder_creates_hosts() {
        let (w, _eng) = ClusterBuilder::new(3).arena_size(1 << 16).build();
        assert_eq!(w.len(), 3);
        assert_eq!(w.hosts[0].mem.len(), 1 << 16);
    }

    /// Two processes on different hosts ping-pong; CPU costs and wire
    /// latency both apply.
    struct Pinger {
        peer: Option<ProcAddr>,
        remaining: u32,
        initiator: bool,
        log: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, u32)>>>,
    }

    impl Process for Pinger {
        fn on_event(&mut self, ev: ProcEvent, ctx: &mut Ctx<'_>) {
            match ev {
                ProcEvent::Started if self.initiator => {
                    if let Some(peer) = self.peer {
                        ctx.send_msg(peer, Box::new(1u32), 64, SimDuration::from_micros(2));
                    }
                }
                ProcEvent::Message(m) => {
                    let n = *m.downcast::<u32>().unwrap();
                    self.log.borrow_mut().push((ctx.now(), n));
                    if self.remaining > 0 {
                        self.remaining -= 1;
                        if let Some(peer) = self.peer {
                            ctx.send_msg(peer, Box::new(n + 1), 64, SimDuration::from_micros(2));
                        }
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn processes_exchange_messages_with_cpu_costs() {
        let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 16).build();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let b = w.start_process(
            HostId(1),
            "ponger",
            None,
            Box::new(Pinger {
                peer: None,
                remaining: 0,
                initiator: false,
                log: log.clone(),
            }),
            SimDuration::from_micros(1),
            &mut eng,
        );
        let a = w.start_process(
            HostId(0),
            "pinger",
            None,
            Box::new(Pinger {
                peer: Some(b),
                remaining: 3,
                initiator: true,
                log: log.clone(),
            }),
            SimDuration::from_micros(1),
            &mut eng,
        );
        // Wire the echo side now that `a` exists.
        w.replace_process(
            b,
            Box::new(Pinger {
                peer: Some(a),
                remaining: 100,
                initiator: false,
                log: log.clone(),
            }),
        );
        eng.run(&mut w);
        let log = log.borrow();
        // a sent 1; b logs 1, replies 2; a logs 2, replies 3; ... a's
        // remaining=3 limits the exchange.
        let values: Vec<u32> = log.iter().map(|e| e.1).collect();
        assert!(values.len() >= 6, "got {values:?}");
        assert_eq!(&values[..4], &[1, 2, 3, 4]);
        // Each hop includes wire + dispatch cost; time advanced well
        // beyond the pure wire latency.
        assert!(log.last().unwrap().0.as_nanos() > 20_000);
    }

    #[test]
    fn cq_callback_fires_for_driver() {
        let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(1 << 18).build();
        let scq0 = w.hosts[0].nic.create_cq();
        let rcq0 = w.hosts[0].nic.create_cq();
        let scq1 = w.hosts[1].nic.create_cq();
        let rcq1 = w.hosts[1].nic.create_cq();
        let qp0 = w.hosts[0].nic.create_qp(scq0, rcq0, 0x1000, 16);
        let qp1 = w.hosts[1].nic.create_qp(scq1, rcq1, 0x1000, 16);
        w.connect_qps(HostId(0), qp0, HostId(1), qp1);
        let mr = w.hosts[1]
            .nic
            .register_mr(0x8000, 0x1000, Access::REMOTE_WRITE);
        w.hosts[0].mem.write(0x8000, b"callback").unwrap();

        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        w.subscribe_cq_callback(HostId(0), scq0, move |cqe, _w, eng| {
            seen2.borrow_mut().push((eng.now(), cqe.wr_id));
        });

        let wqe = Wqe {
            opcode: Opcode::Write,
            flags: hl_rnic::flags::SIGNALED,
            len: 8,
            laddr: 0x8000,
            raddr: 0x8000,
            rkey: mr.rkey,
            wr_id: 31,
            ..Default::default()
        };
        w.hosts[0].post_send(qp0, wqe, false).unwrap();
        w.ring_doorbell(HostId(0), qp0, &mut eng);
        eng.run(&mut w);

        assert_eq!(w.hosts[1].mem.read(0x8000, 8).unwrap(), b"callback");
        assert_eq!(seen.borrow().len(), 1);
        assert_eq!(seen.borrow()[0].1, 31);
    }

    #[test]
    fn same_seed_same_trajectory() {
        fn run(seed: u64) -> (u64, SimTime) {
            let (mut w, mut eng) = ClusterBuilder::new(2)
                .arena_size(1 << 16)
                .seed(seed)
                .build();
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let b = w.start_process(
                HostId(1),
                "b",
                None,
                Box::new(Pinger {
                    peer: None,
                    remaining: 0,
                    initiator: false,
                    log: log.clone(),
                }),
                SimDuration::from_micros(1),
                &mut eng,
            );
            let a = w.start_process(
                HostId(0),
                "a",
                None,
                Box::new(Pinger {
                    peer: Some(b),
                    remaining: 5,
                    initiator: true,
                    log: log.clone(),
                }),
                SimDuration::from_micros(1),
                &mut eng,
            );
            w.replace_process(
                b,
                Box::new(Pinger {
                    peer: Some(a),
                    remaining: 100,
                    initiator: false,
                    log: log.clone(),
                }),
            );
            eng.run(&mut w);
            (eng.events_executed(), eng.now())
        }
        let (e1, t1) = run(7);
        let (e2, t2) = run(7);
        assert_eq!(e1, e2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn hog_spawning_works_via_world() {
        let (mut w, mut eng) = ClusterBuilder::new(1).arena_size(1 << 16).build();
        w.spawn_hog(HostId(0), "stress", &mut eng);
        eng.run_until(&mut w, SimTime::from_nanos(10_000_000));
        let now = eng.now();
        // The hog consumed a meaningful share of the host.
        assert!(w.hosts[0].cpu.host_utilization(now) > 0.05);
    }
}
