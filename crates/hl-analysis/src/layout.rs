//! Wire-format layout verifier (pass 2).
//!
//! HyperLoop's offload *is* a self-modifying descriptor chain: the
//! client's metadata SEND is scattered straight into the byte layout of
//! pre-posted WQEs, so the descriptor offsets duplicated across
//! hl-rnic (`wqe.rs`), hyperloop (`metadata.rs`, `naive.rs`) and the
//! scatter tables in `group.rs` are load-bearing wire format, with
//! nothing but convention keeping them overlap-free. This pass parses
//! the actual `const` items out of those files, reconstructs each
//! descriptor's field map against a built-in width schema, and fails
//! on:
//!
//! * **overlap** — two fields of one descriptor occupying the same
//!   bytes (`layout-overlap`);
//! * **bounds** — a field extending past the declared descriptor size
//!   (`layout-bounds`);
//! * **mismatch** — the same logical field bound inconsistently across
//!   crates: width drift between declarations, a scatter entry whose
//!   length disagrees with its source or destination field, or a
//!   scatter binding two different logical fields together
//!   (`layout-mismatch`);
//! * **missing** — a schema'd constant that no longer parses out of the
//!   source, so renames cannot silently drop coverage
//!   (`layout-missing`);
//! * **usage drift** — a `d[K as usize..K as usize + N]` access whose
//!   `N` disagrees with the field's declared width (`layout-mismatch`).
//!
//! Descriptors that *intentionally* alias bytes (the gWRITE and gCAS
//! interpretations of the 48-byte metadata record) are modelled as
//! separate descriptors over the same extent, so the overlap check
//! applies within an interpretation, never across them.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::Finding;
use crate::symbols::{parse_file, parse_int, ConstDef};
use std::collections::BTreeMap;
use std::path::Path;

/// How a descriptor's size is declared.
#[derive(Debug, Clone)]
pub enum SizeRef {
    /// A `const` in the same file (e.g. `WQE_SIZE`, `REC`).
    Const(String),
    /// A literal size.
    Lit(u64),
}

/// One field of a descriptor.
#[derive(Debug, Clone)]
pub struct FieldSpec {
    /// Const name holding the offset (e.g. `OP`, `D_OP`, `LEN`).
    pub konst: String,
    /// Enclosing module of the const, if any (e.g. `field_offset`).
    pub module: Option<String>,
    /// Field width in bytes.
    pub width: u64,
    /// Cross-crate logical identity (e.g. `op-id`); fields sharing a
    /// logical name must agree on width everywhere, and scatter entries
    /// must only bind like to like.
    pub logical: Option<String>,
    /// Offset declared not by a const but fixed by protocol (e.g. the
    /// metadata seq word at 0). Checked against `parse` when `konst`
    /// is empty.
    pub fixed_offset: Option<u64>,
}

impl FieldSpec {
    /// Shorthand constructor.
    pub fn new(module: Option<&str>, konst: &str, width: u64, logical: Option<&str>) -> Self {
        FieldSpec {
            konst: konst.to_string(),
            module: module.map(str::to_string),
            width,
            logical: logical.map(str::to_string),
            fixed_offset: None,
        }
    }
}

/// One descriptor: a named byte layout declared in one file.
#[derive(Debug, Clone)]
pub struct DescSpec {
    /// Descriptor name used in findings (e.g. `wqe`, `naive-desc`).
    pub name: String,
    /// File holding the constants, relative to the workspace root.
    pub file: String,
    /// Declared size.
    pub size: SizeRef,
    /// Fields.
    pub fields: Vec<FieldSpec>,
    /// Check `K as usize .. K as usize + N` accesses in the same file
    /// against declared widths.
    pub check_usage_widths: bool,
}

/// A scatter-table cross-check: `se(<src const expr>, <len>, <dst> +
/// <dst_mod>::<CONST>)` call sites in `file` bind source-descriptor
/// fields to destination-descriptor fields.
#[derive(Debug, Clone)]
pub struct ScatterSpec {
    /// File containing the scatter builder.
    pub file: String,
    /// Name of the helper whose calls are parsed (e.g. `se`).
    pub callee: String,
    /// Descriptors the source offsets may come from.
    pub src_descs: Vec<String>,
    /// Descriptor the destination offsets belong to.
    pub dst_desc: String,
    /// Module name qualifying destination consts (e.g. `field_offset`).
    pub dst_module: String,
}

/// The full layout schema.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// Descriptors to verify.
    pub descs: Vec<DescSpec>,
    /// Scatter cross-checks.
    pub scatters: Vec<ScatterSpec>,
}

/// The built-in schema for this workspace's wire formats.
pub fn builtin_schema() -> Schema {
    let f = FieldSpec::new;
    Schema {
        descs: vec![
            DescSpec {
                name: "wqe".into(),
                file: "crates/hl-rnic/src/wqe.rs".into(),
                size: SizeRef::Const("WQE_SIZE".into()),
                fields: vec![
                    f(Some("field_offset"), "OPCODE", 1, Some("opcode")),
                    f(Some("field_offset"), "FLAGS", 1, Some("flags")),
                    f(Some("field_offset"), "LEN", 4, None),
                    f(Some("field_offset"), "LADDR", 8, None),
                    f(Some("field_offset"), "RADDR", 8, None),
                    f(Some("field_offset"), "CMP", 8, Some("cas-cmp")),
                    f(Some("field_offset"), "SWP", 8, Some("cas-swp")),
                    f(Some("field_offset"), "IMM", 4, Some("seq")),
                    f(Some("field_offset"), "OP", 4, Some("op-id")),
                ],
                check_usage_widths: false,
            },
            DescSpec {
                name: "meta-header".into(),
                file: "crates/hyperloop/src/metadata.rs".into(),
                size: SizeRef::Const("HDR".into()),
                fields: vec![
                    FieldSpec {
                        konst: String::new(),
                        module: None,
                        width: 4,
                        logical: Some("seq".into()),
                        fixed_offset: Some(0),
                    },
                    f(None, "OP_OFF", 4, Some("op-id")),
                ],
                check_usage_widths: true,
            },
            DescSpec {
                name: "meta-wrec".into(),
                file: "crates/hyperloop/src/metadata.rs".into(),
                size: SizeRef::Const("REC".into()),
                fields: vec![
                    f(Some("wrec"), "LEN", 4, None),
                    f(Some("wrec"), "SRC", 8, None),
                    f(Some("wrec"), "DST", 8, None),
                    f(Some("wrec"), "FOP", 1, Some("opcode")),
                    f(Some("wrec"), "FADDR", 8, None),
                    f(Some("wrec"), "FLEN", 4, None),
                    f(Some("mrec"), "ACK_ADDR", 8, None),
                    f(Some("mrec"), "ACK_RKEY", 4, None),
                ],
                check_usage_widths: true,
            },
            DescSpec {
                name: "meta-crec".into(),
                file: "crates/hyperloop/src/metadata.rs".into(),
                size: SizeRef::Const("REC".into()),
                fields: vec![
                    f(Some("crec"), "COP", 1, Some("opcode")),
                    f(Some("crec"), "TARGET", 8, None),
                    f(Some("crec"), "CMP", 8, Some("cas-cmp")),
                    f(Some("crec"), "SWP", 8, Some("cas-swp")),
                    f(Some("crec"), "RESULT", 8, None),
                ],
                check_usage_widths: true,
            },
            DescSpec {
                name: "naive-desc".into(),
                file: "crates/hyperloop/src/naive.rs".into(),
                // The fixed header: the per-member results array starts
                // at D_RESULTS and is bounds-checked by `desc_len`.
                size: SizeRef::Const("D_RESULTS".into()),
                fields: vec![
                    f(None, "D_PRIM", 1, None),
                    f(None, "D_FLUSH", 1, Some("opcode")),
                    f(None, "D_SEQ", 4, Some("seq")),
                    f(None, "D_OFFSET", 8, None),
                    f(None, "D_AUX", 8, None),
                    f(None, "D_SWP", 8, Some("cas-swp")),
                    f(None, "D_LEN", 4, None),
                    f(None, "D_EXEC", 4, None),
                    f(None, "D_OP", 4, Some("op-id")),
                ],
                check_usage_widths: true,
            },
        ],
        scatters: vec![ScatterSpec {
            file: "crates/hyperloop/src/group.rs".into(),
            callee: "se".into(),
            src_descs: vec!["meta-header".into(), "meta-wrec".into(), "meta-crec".into()],
            dst_desc: "wqe".into(),
            dst_module: "field_offset".into(),
        }],
    }
}

/// A resolved field: spec plus the offset parsed from source.
#[derive(Debug, Clone)]
struct ResolvedField {
    spec: FieldSpec,
    offset: u64,
    line: u32,
}

/// A fully resolved descriptor.
struct ResolvedDesc {
    name: String,
    file: String,
    size: u64,
    fields: Vec<ResolvedField>,
}

fn mkfinding(file: &str, line: u32, rule: &'static str, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line,
        message,
    }
}

fn lookup<'a>(consts: &'a [ConstDef], module: &Option<String>, name: &str) -> Option<&'a ConstDef> {
    consts
        .iter()
        .find(|c| c.name == name && c.module == *module)
        .or_else(|| {
            // Fall back to a module-less match so a const hoisted out of
            // its mod still resolves (the overlap check keeps honesty).
            consts.iter().find(|c| c.name == name)
        })
}

fn resolve_desc(
    desc: &DescSpec,
    consts: &[ConstDef],
    out: &mut Vec<Finding>,
) -> Option<ResolvedDesc> {
    let size = match &desc.size {
        SizeRef::Lit(n) => *n,
        SizeRef::Const(name) => match lookup(consts, &None, name).and_then(|c| c.value) {
            Some(v) => v,
            None => {
                out.push(mkfinding(
                    &desc.file,
                    1,
                    "layout-missing",
                    format!(
                        "descriptor `{}`: size const `{}` not found as an integer literal in {}",
                        desc.name, name, desc.file
                    ),
                ));
                return None;
            }
        },
    };
    let mut fields = Vec::new();
    for fs in &desc.fields {
        if fs.konst.is_empty() {
            fields.push(ResolvedField {
                spec: fs.clone(),
                offset: fs.fixed_offset.unwrap_or(0),
                line: 1,
            });
            continue;
        }
        match lookup(consts, &fs.module, &fs.konst) {
            Some(c) => match c.value {
                Some(v) => fields.push(ResolvedField {
                    spec: fs.clone(),
                    offset: v,
                    line: c.line,
                }),
                None => out.push(mkfinding(
                    &desc.file,
                    c.line,
                    "layout-missing",
                    format!(
                        "descriptor `{}`: `{}` is not a plain integer literal; the layout verifier cannot model it",
                        desc.name, fs.konst
                    ),
                )),
            },
            None => out.push(mkfinding(
                &desc.file,
                1,
                "layout-missing",
                format!(
                    "descriptor `{}`: offset const `{}{}` not found in {} (renamed? update the schema in hl-analysis)",
                    desc.name,
                    fs.module
                        .as_deref()
                        .map(|m| format!("{m}::"))
                        .unwrap_or_default(),
                    fs.konst,
                    desc.file
                ),
            )),
        }
    }
    Some(ResolvedDesc {
        name: desc.name.clone(),
        file: desc.file.clone(),
        size,
        fields,
    })
}

fn check_desc(d: &ResolvedDesc, out: &mut Vec<Finding>) {
    // Bounds.
    for f in &d.fields {
        if f.offset + f.spec.width > d.size {
            out.push(mkfinding(
                &d.file,
                f.line,
                "layout-bounds",
                format!(
                    "descriptor `{}`: field `{}` at {}..{} exceeds the declared {}-byte size; grow the size const or move the field",
                    d.name,
                    f.spec.konst,
                    f.offset,
                    f.offset + f.spec.width,
                    d.size
                ),
            ));
        }
    }
    // Overlap within one interpretation.
    let mut sorted: Vec<&ResolvedField> = d.fields.iter().collect();
    sorted.sort_by_key(|f| (f.offset, f.spec.width));
    for pair in sorted.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.offset + a.spec.width > b.offset {
            out.push(mkfinding(
                &d.file,
                b.line,
                "layout-overlap",
                format!(
                    "descriptor `{}`: `{}` ({}..{}) overlaps `{}` ({}..{}); scattered writes to one would corrupt the other",
                    d.name,
                    a.spec.konst,
                    a.offset,
                    a.offset + a.spec.width,
                    b.spec.konst,
                    b.offset,
                    b.offset + b.spec.width
                ),
            ));
        }
    }
}

/// `K as usize .. K as usize + N` and `[K as usize]` accesses.
fn usage_widths(toks: &[Tok]) -> Vec<(String, u64, u32)> {
    let mut out = Vec::new();
    let t = toks;
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident {
            continue;
        }
        // K as usize .. K as usize + N
        if i + 9 < t.len()
            && t[i + 1].is_ident("as")
            && t[i + 2].is_ident("usize")
            && t[i + 3].is_punct('.')
            && t[i + 4].is_punct('.')
            && t[i + 5].is_ident(&t[i].text)
            && t[i + 6].is_ident("as")
            && t[i + 7].is_ident("usize")
            && t[i + 8].is_punct('+')
            && t[i + 9].kind == TokKind::Int
        {
            if let Some(w) = parse_int(&t[i + 9].text) {
                out.push((t[i].text.clone(), w, t[i].line));
            }
        }
        // [ K as usize ] = → single-byte access (only when indexing,
        // i.e. followed by `]` directly).
        if i >= 1
            && t[i - 1].is_punct('[')
            && i + 3 < t.len()
            && t[i + 1].is_ident("as")
            && t[i + 2].is_ident("usize")
            && t[i + 3].is_punct(']')
        {
            out.push((t[i].text.clone(), 1, t[i].line));
        }
    }
    out
}

/// Parse `callee(<arg1>, <arg2>, <arg3>)` call sites into token slices
/// per argument (top-level commas only).
fn call_args<'a>(toks: &'a [Tok], callee: &str) -> Vec<(u32, Vec<&'a [Tok]>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident(callee) && i + 1 < toks.len() && toks[i + 1].is_punct('(') {
            let line = toks[i].line;
            let mut depth = 1;
            let mut j = i + 2;
            let mut args: Vec<&[Tok]> = Vec::new();
            let mut start = j;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        args.push(&toks[start..j]);
                    }
                } else if t.is_punct(',') && depth == 1 {
                    args.push(&toks[start..j]);
                    start = j + 1;
                }
                j += 1;
            }
            if args.iter().any(|a| !a.is_empty()) {
                out.push((line, args));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Extract the last `mod :: NAME` path (or a bare literal) from an
/// argument's tokens.
enum ArgRef {
    Path {
        module: Option<String>,
        name: String,
    },
    Lit(u64),
    Opaque,
}

fn arg_ref(arg: &[Tok]) -> ArgRef {
    // Prefer the last `a :: B` pair; fall back to a single literal.
    let mut found: Option<(Option<String>, String)> = None;
    for i in 0..arg.len() {
        if arg[i].kind == TokKind::Ident
            && i >= 3
            && arg[i - 1].is_punct(':')
            && arg[i - 2].is_punct(':')
            && arg[i - 3].kind == TokKind::Ident
        {
            found = Some((Some(arg[i - 3].text.clone()), arg[i].text.clone()));
        }
    }
    if let Some((m, n)) = found {
        return ArgRef::Path { module: m, name: n };
    }
    if arg.len() == 1 && arg[0].kind == TokKind::Int {
        if let Some(v) = parse_int(&arg[0].text) {
            return ArgRef::Lit(v);
        }
    }
    ArgRef::Opaque
}

/// Verify the workspace layouts under `root` against `schema`.
pub fn verify(root: &Path, schema: &Schema) -> std::io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    let mut resolved: BTreeMap<String, ResolvedDesc> = BTreeMap::new();

    for desc in &schema.descs {
        let path = root.join(&desc.file);
        let text = std::fs::read_to_string(&path)?;
        let syms = parse_file("", &desc.file, &text);
        if let Some(r) = resolve_desc(desc, &syms.consts, &mut out) {
            check_desc(&r, &mut out);
            if desc.check_usage_widths {
                let (toks, _) = lex(&text);
                for (name, width, line) in usage_widths(&toks) {
                    if let Some(f) = r.fields.iter().find(|f| f.spec.konst == name) {
                        if width != f.spec.width {
                            out.push(mkfinding(
                                &desc.file,
                                line,
                                "layout-mismatch",
                                format!(
                                    "descriptor `{}`: access reads/writes {} bytes at `{}` but the field is declared {} bytes wide",
                                    r.name, width, name, f.spec.width
                                ),
                            ));
                        }
                    }
                }
            }
            resolved.insert(r.name.clone(), r);
        }
    }

    // Cross-descriptor logical consistency: width agreement, and — for
    // descriptors sharing a file-space mirror (same name prefix before
    // '@') — offset agreement.
    let mut logical: BTreeMap<&str, Vec<(&ResolvedDesc, &ResolvedField)>> = BTreeMap::new();
    for d in resolved.values() {
        for f in &d.fields {
            if let Some(l) = &f.spec.logical {
                logical.entry(l.as_str()).or_default().push((d, f));
            }
        }
    }
    for (name, sites) in &logical {
        for pair in sites.windows(2) {
            let ((da, fa), (db, fb)) = (&pair[0], &pair[1]);
            if fa.spec.width != fb.spec.width {
                out.push(mkfinding(
                    &db.file,
                    fb.line,
                    "layout-mismatch",
                    format!(
                        "logical field `{name}` is {} bytes in `{}` ({}) but {} bytes in `{}` ({}); the narrower side drops bytes on the wire",
                        fa.spec.width, da.name, da.file, fb.spec.width, db.name, db.file
                    ),
                ));
            }
        }
        // Mirrored descriptors (same `space@` prefix) must also agree on
        // the offset itself.
        for pair in sites.windows(2) {
            let ((da, fa), (db, fb)) = (&pair[0], &pair[1]);
            let space = |n: &str| n.split('@').nth(1).map(str::to_string);
            if let (Some(sa), Some(sb)) = (space(&da.name), space(&db.name)) {
                if sa == sb && fa.offset != fb.offset {
                    out.push(mkfinding(
                        &db.file,
                        fb.line,
                        "layout-mismatch",
                        format!(
                            "logical field `{name}` sits at offset {} in `{}` ({}) but offset {} in `{}` ({}); mirrored declarations of one layout must agree",
                            fa.offset, da.name, da.file, fb.offset, db.name, db.file
                        ),
                    ));
                }
            }
        }
    }

    // Scatter cross-checks.
    for sc in &schema.scatters {
        let path = root.join(&sc.file);
        let text = std::fs::read_to_string(&path)?;
        let (toks, _) = lex(&text);
        let Some(dst) = resolved.get(&sc.dst_desc) else {
            continue;
        };
        let srcs: Vec<&ResolvedDesc> = sc
            .src_descs
            .iter()
            .filter_map(|n| resolved.get(n))
            .collect();
        for (line, args) in call_args(&toks, &sc.callee) {
            if args.len() != 3 {
                continue;
            }
            let width = match arg_ref(args[1]) {
                ArgRef::Lit(v) => v,
                _ => continue,
            };
            // Destination: last `<dst_module> :: CONST` in arg 3.
            let dst_field = match arg_ref(args[2]) {
                ArgRef::Path { module, name }
                    if module.as_deref() == Some(sc.dst_module.as_str()) =>
                {
                    dst.fields.iter().find(|f| f.spec.konst == name)
                }
                _ => None,
            };
            if let Some(df) = dst_field {
                if df.spec.width != width {
                    out.push(mkfinding(
                        &sc.file,
                        line,
                        "layout-mismatch",
                        format!(
                            "scatter writes {width} bytes into `{}::{}` which is {} bytes wide; a short write leaves stale descriptor bytes, a long one corrupts the next field",
                            sc.dst_module, df.spec.konst, df.spec.width
                        ),
                    ));
                }
            }
            // Source: a metadata const path or a literal header offset.
            let src_field = match arg_ref(args[0]) {
                ArgRef::Path { module, name } => srcs.iter().find_map(|d| {
                    d.fields
                        .iter()
                        .find(|f| {
                            f.spec.konst == name && (f.spec.module == module || module.is_none())
                        })
                        .map(|f| (*d, f))
                }),
                ArgRef::Lit(v) => srcs.iter().find_map(|d| {
                    d.fields
                        .iter()
                        .find(|f| f.spec.konst.is_empty() && f.offset == v)
                        .map(|f| (*d, f))
                }),
                ArgRef::Opaque => None,
            };
            if let Some((sd, sf)) = src_field {
                if sf.spec.width != width {
                    out.push(mkfinding(
                        &sc.file,
                        line,
                        "layout-mismatch",
                        format!(
                            "scatter reads {width} bytes from `{}` field `{}` which is {} bytes wide",
                            sd.name,
                            if sf.spec.konst.is_empty() {
                                "<header>"
                            } else {
                                &sf.spec.konst
                            },
                            sf.spec.width
                        ),
                    ));
                }
                if let (Some(sl), Some(df)) = (&sf.spec.logical, dst_field) {
                    if let Some(dl) = &df.spec.logical {
                        if sl != dl {
                            out.push(mkfinding(
                                &sc.file,
                                line,
                                "layout-mismatch",
                                format!(
                                    "scatter binds logical `{sl}` (src) to logical `{dl}` (dst); cross-crate field identities must match"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    Ok(out)
}

/// Markdown table of the resolved descriptors, for CI job summaries.
pub fn summary_md(root: &Path, schema: &Schema) -> std::io::Result<String> {
    let mut s = String::from("| descriptor | file | size | fields |\n|---|---|---|---|\n");
    for desc in &schema.descs {
        let path = root.join(&desc.file);
        let text = std::fs::read_to_string(&path)?;
        let syms = parse_file("", &desc.file, &text);
        let mut sink = Vec::new();
        if let Some(r) = resolve_desc(desc, &syms.consts, &mut sink) {
            let mut fields: Vec<String> = r
                .fields
                .iter()
                .map(|f| {
                    format!(
                        "{} {}..{}",
                        if f.spec.konst.is_empty() {
                            "seq"
                        } else {
                            &f.spec.konst
                        },
                        f.offset,
                        f.offset + f.spec.width
                    )
                })
                .collect();
            fields.sort();
            s.push_str(&format!(
                "| {} | {} | {} B | {} |\n",
                r.name,
                r.file,
                r.size,
                fields.join(", ")
            ));
        }
    }
    Ok(s)
}
