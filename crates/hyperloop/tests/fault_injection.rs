//! Failure-injection tests: lossy fabric, one-way partitions, and the
//! detector's robustness against transient loss.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimDuration, SimTime};
use hyperloop::recovery::{self, HeartbeatConfig};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

fn setup(seed: u64) -> (World, Engine<World>, HyperLoopClient, hyperloop::GroupRef) {
    let (mut w, mut eng) = ClusterBuilder::new(3)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 32,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);
    (w, eng, client, group)
}

/// Transient heartbeat loss below the miss threshold must not trigger a
/// false failure detection.
#[test]
fn detector_tolerates_transient_loss() {
    let (mut w, mut eng, _client, group) = setup(60);
    let failures = Rc::new(RefCell::new(Vec::new()));
    let f2 = failures.clone();
    recovery::start_heartbeats(
        &group,
        HeartbeatConfig {
            period: SimDuration::from_millis(5),
            miss_threshold: 4,
        },
        Box::new(move |_w, _e, idx| f2.borrow_mut().push(idx)),
        &mut w,
        &mut eng,
    );
    // 10% random loss: P(4 consecutive losses of ping or pong) is small
    // but not zero over 100 periods × 2 replicas, so the seed is pinned
    // to a draw sequence without such a streak.
    w.fabric.set_drop_prob(0.10);
    eng.run_until(&mut w, SimTime::from_nanos(500_000_000));
    assert!(
        failures.borrow().is_empty(),
        "false positives under 10% loss: {:?}",
        failures.borrow()
    );
}

/// A sustained one-way partition (replica can receive but not send)
/// still gets detected: its pongs never come back.
#[test]
fn one_way_partition_is_detected() {
    let (mut w, mut eng, _client, group) = setup(52);
    let failures = Rc::new(RefCell::new(Vec::new()));
    let f2 = failures.clone();
    recovery::start_heartbeats(
        &group,
        HeartbeatConfig {
            period: SimDuration::from_millis(5),
            miss_threshold: 3,
        },
        Box::new(move |_w, _e, idx| f2.borrow_mut().push(idx)),
        &mut w,
        &mut eng,
    );
    eng.run_until(&mut w, SimTime::from_nanos(30_000_000));
    assert!(failures.borrow().is_empty());
    // Host 1 can receive but everything it sends is dropped.
    w.fabric.partition(HostId(1), HostId(0));
    eng.run_until(&mut w, SimTime::from_nanos(120_000_000));
    assert_eq!(*failures.borrow(), vec![0], "replica index 0 detected");
}

/// A chain op whose forwarding packet is eaten by a partition never
/// ACKs (no phantom completions), and the op after healing succeeds on
/// a rebuilt chain.
#[test]
fn partition_stalls_op_without_phantom_ack() {
    let (mut w, mut eng, client, group) = setup(53);
    // Break replica0 -> replica1 (mid-chain forwarding).
    w.fabric.partition(HostId(1), HostId(2));
    let acked = Rc::new(RefCell::new(0u32));
    let a = acked.clone();
    client
        .gwrite(
            &mut w,
            &mut eng,
            0,
            b"stalled",
            true,
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
    assert_eq!(*acked.borrow(), 0, "no phantom group ACK");
    // Data did reach replica 0 (one-sided write landed before the cut
    // point), but never replica 1.
    {
        let g = group.borrow();
        let r0 = g.replica_rep[0].at(0);
        let r1 = g.replica_rep[1].at(0);
        assert_eq!(w.hosts[1].mem.read(r0, 7).unwrap(), b"stalled");
        assert_eq!(w.hosts[2].mem.read(r1, 7).unwrap(), &[0u8; 7]);
    }
    // Heal and rebuild (the in-flight chain state is gone; recovery
    // constructs a fresh one, as the paper's control path would).
    w.fabric.heal(HostId(1), HostId(2));
    let rebuilt: Rc<RefCell<Option<HyperLoopClient>>> = Rc::new(RefCell::new(None));
    let rb = rebuilt.clone();
    recovery::rebuild_chain(
        &mut w,
        &mut eng,
        &group,
        vec![HostId(1), HostId(2)],
        None,
        32,
        Box::new(move |_w, _e, c| *rb.borrow_mut() = Some(c)),
    );
    let probe = rebuilt.clone();
    eng.run_while(&mut w, move |_| probe.borrow().is_none());
    let client2 = rebuilt.borrow().clone().unwrap();
    let a2 = acked.clone();
    client2
        .gwrite(
            &mut w,
            &mut eng,
            64,
            b"post-heal",
            true,
            Box::new(move |_w, _e, _r| *a2.borrow_mut() += 10),
        )
        .unwrap();
    let probe2 = acked.clone();
    eng.run_while(&mut w, move |_| *probe2.borrow() < 10);
    assert_eq!(*acked.borrow(), 10);
}

/// Catch-up over a lossy fabric: chunked READs fence and complete (a
/// dropped READ would stall that QP; the drill runs lossless here, and
/// the lossy variant asserts the *detector* result instead — REad
/// retransmission is out of scope per DESIGN.md §7).
#[test]
fn catch_up_handles_large_regions() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(8 << 20).seed(54).build();
    let src = w.host(HostId(0)).layout.alloc("src", 2 << 20, 64);
    let dst = w.host(HostId(1)).layout.alloc("dst", 2 << 20, 64);
    let pattern: Vec<u8> = (0..(2 << 20)).map(|i| (i * 31 % 251) as u8).collect();
    w.hosts[0].mem.write(src.addr, &pattern).unwrap();
    let mr = w.hosts[0]
        .nic
        .register_mr(src.addr, src.len, hl_rnic::Access::REMOTE_READ);
    let done = Rc::new(RefCell::new(false));
    let d = done.clone();
    recovery::catch_up(
        &mut w,
        &mut eng,
        HostId(0),
        mr.rkey,
        src.addr,
        HostId(1),
        dst.addr,
        2 << 20,
        256 << 10,
        Box::new(move |_w, _e| *d.borrow_mut() = true),
    );
    let probe = done.clone();
    eng.run_while(&mut w, move |_| !*probe.borrow());
    assert_eq!(w.hosts[1].mem.read_vec(dst.addr, 2 << 20).unwrap(), pattern);
    // 2 MiB at 56 Gbps ≈ 300 µs + per-chunk RTTs: sanity-check timing.
    assert!(eng.now().as_nanos() > 280_000);
    assert!(eng.now() < SimTime::from_nanos(10_000_000));
}
