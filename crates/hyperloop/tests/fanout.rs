//! Tests for the §7 fan-out offload extension.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimTime};
use hyperloop::fanout::{self, FanoutBuilder, FanoutClient, FanoutConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn setup(n_backups: usize) -> (World, Engine<World>, FanoutClient) {
    let (mut w, mut eng) = ClusterBuilder::new(n_backups + 2)
        .arena_size(4 << 20)
        .seed(41)
        .build();
    let cfg = FanoutConfig {
        client: HostId(0),
        primary: HostId(1),
        backups: (2..2 + n_backups).map(HostId).collect(),
        rep_bytes: 512 << 10,
        ring_slots: 32,
        ..Default::default()
    };
    let group = FanoutBuilder::new(cfg).build(&mut w);
    fanout::start_replenisher(&group, &mut w, &mut eng);
    let client = FanoutClient::new(group, &mut w);
    (w, eng, client)
}

#[test]
fn fanout_gwrite_reaches_primary_and_all_backups() {
    let (mut w, mut eng, client) = setup(3);
    let acked = Rc::new(RefCell::new(0u32));
    let a = acked.clone();
    client
        .gwrite(
            &mut w,
            &mut eng,
            0x200,
            b"fanout-payload",
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(2_000_000));
    assert_eq!(*acked.borrow(), 1, "aggregated group ACK arrived");
    // Members: 0 client, 1 primary, 2.. backups.
    for m in 0..5 {
        let host = client.member_host(m);
        let addr = client.member_addr(m, 0x200);
        assert_eq!(
            w.hosts[host.0].mem.read(addr, 14).unwrap(),
            b"fanout-payload",
            "member {m}"
        );
    }
}

#[test]
fn fanout_ack_waits_for_every_backup() {
    // With a backup's link cut AFTER the primary write path is up, the
    // group ACK must NOT fire (the aggregation WAIT counts n acks).
    let (mut w, mut eng, client) = setup(2);
    w.fabric.set_link_down(HostId(3), true); // backup 1 dead
    let acked = Rc::new(RefCell::new(0u32));
    let a = acked.clone();
    client
        .gwrite(
            &mut w,
            &mut eng,
            0,
            b"no-ack-expected",
            Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
        )
        .unwrap();
    eng.run_until(&mut w, SimTime::from_nanos(20_000_000));
    assert_eq!(*acked.borrow(), 0, "ACK must wait for all backups");
    // The healthy backup still received the data.
    let addr = client.member_addr(2, 0);
    let host = client.member_host(2);
    assert_eq!(
        w.hosts[host.0].mem.read(addr, 15).unwrap(),
        b"no-ack-expected"
    );
}

#[test]
fn fanout_pipelines_and_replenishes() {
    let (mut w, mut eng, client) = setup(2);
    let acked = Rc::new(RefCell::new(0u32));
    let total = 100u32;
    // Issue with retry-on-backpressure until all are in.
    fn pump(
        client: FanoutClient,
        acked: Rc<RefCell<u32>>,
        issued: u32,
        total: u32,
        w: &mut World,
        eng: &mut Engine<World>,
    ) {
        let mut issued = issued;
        while issued < total {
            let a = acked.clone();
            match client.gwrite(
                w,
                eng,
                (issued as u64 % 64) * 128,
                &[issued as u8; 64],
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            ) {
                Ok(_) => issued += 1,
                Err(_) => {
                    let c = client.clone();
                    let ak = acked.clone();
                    eng.schedule(hl_sim::SimDuration::from_micros(100), move |w, eng| {
                        pump(c, ak, issued, total, w, eng);
                    });
                    return;
                }
            }
        }
    }
    let c = client.clone();
    let a = acked.clone();
    eng.schedule(hl_sim::SimDuration::ZERO, move |w, eng| {
        pump(c, a, 0, total, w, eng)
    });
    let a2 = acked.clone();
    eng.run_while(&mut w, move |_| *a2.borrow() < total);
    assert_eq!(*acked.borrow(), total);
}

#[test]
fn fanout_replica_cpus_stay_idle() {
    let (mut w, mut eng, client) = setup(3);
    let acked = Rc::new(RefCell::new(0u32));
    for k in 0..50u64 {
        let a = acked.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                k * 64,
                &[7u8; 48],
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
        let a2 = acked.clone();
        let want = k as u32 + 1;
        eng.run_while(&mut w, move |_| *a2.borrow() < want);
    }
    let now = eng.now();
    // Primary runs only the replenisher; backups nothing at all.
    for h in 1..5 {
        let util = w.hosts[h].cpu.host_utilization(now);
        assert!(util < 0.02, "host {h} util {util}");
    }
}
