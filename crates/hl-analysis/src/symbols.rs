//! Nesting-aware extraction of symbols from a token stream.
//!
//! Sits between the flat [`crate::lexer`] and the whole-workspace taint
//! pass ([`crate::taint`]): for one source file it recovers
//!
//! * function definitions with their body extents (line spans), the
//!   `impl` type they belong to, and every call site inside the body
//!   (free calls, `Type::assoc` path calls, `.method()` calls);
//! * `const NAME: <int ty> = <literal>;` items with their enclosing
//!   module path, which the layout verifier reads descriptor offsets
//!   from.
//!
//! It is *approximate by construction* — no type inference, no macro
//! expansion — and the taint pass compensates with conservative
//! name-based call resolution (see DESIGN.md §14 for the blind spots).

use crate::lexer::{lex, Allow, TokKind};

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "as", "in", "let", "fn", "impl", "mod", "pub",
    "use", "const", "static", "struct", "enum", "trait", "where", "move", "ref", "mut", "else",
    "break", "continue", "unsafe", "dyn", "box", "await",
];

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called function name (last path segment).
    pub callee: String,
    /// Path segment immediately before the callee (`Wqe` in
    /// `Wqe::decode(..)`, `metadata` in `metadata::msg_len(..)`), if any.
    pub qualifier: Option<String>,
    /// `.callee(..)` receiver-method form.
    pub method: bool,
    /// 1-based source line of the call.
    pub line: u32,
}

/// One function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// `Type::name` when defined inside `impl Type`, else `name`.
    pub qual: String,
    /// Crate the function lives in.
    pub krate: String,
    /// Workspace-relative file label.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// First and last line of the item (inclusive).
    pub start_line: u32,
    /// Last body line.
    pub end_line: u32,
    /// Enclosing `impl` type, if any.
    pub impl_type: Option<String>,
    /// Calls made from the body (innermost-fn attribution).
    pub calls: Vec<CallSite>,
    /// Lines of `.unwrap()`/`.expect()`/`panic!`-family sites in the
    /// body, for the transitive panic-in-handler pass. Excludes the
    /// provably-panic-free `.try_into().unwrap()` slice→array idiom.
    pub panics: Vec<u32>,
}

/// A `const NAME: <ty> = <integer literal>;` item.
#[derive(Debug, Clone)]
pub struct ConstDef {
    /// Const name.
    pub name: String,
    /// Innermost enclosing `mod`, if any (e.g. `field_offset`).
    pub module: Option<String>,
    /// Parsed value; `None` when the initializer is not a single
    /// integer literal.
    pub value: Option<u64>,
    /// 1-based line of the `const` keyword.
    pub line: u32,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileSyms {
    /// Function definitions (order of appearance).
    pub fns: Vec<FnDef>,
    /// Const items.
    pub consts: Vec<ConstDef>,
    /// Allow-comments, passed through from the lexer.
    pub allows: Vec<Allow>,
}

/// Macro idents whose invocation panics (mirrors the lexical rule).
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

/// Parse an integer literal token (`0x34`, `1_000`, `64u64`, ...).
pub fn parse_int(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    let t = t
        .trim_end_matches("u64")
        .trim_end_matches("u32")
        .trim_end_matches("u16")
        .trim_end_matches("u8")
        .trim_end_matches("usize")
        .trim_end_matches("i64")
        .trim_end_matches("i32")
        .trim_end_matches("isize");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = t.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// Extract the symbol table of one file. `krate`/`file` are labels
/// carried into the emitted definitions.
pub fn parse_file(krate: &str, file: &str, src: &str) -> FileSyms {
    let (toks, allows) = lex(src);
    let mut out = FileSyms {
        allows,
        ..Default::default()
    };
    let t = &toks;

    let mut brace_depth: i64 = 0;
    // (impl type, depth its block opened at)
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    // (mod name, depth)
    let mut mod_stack: Vec<(String, i64)> = Vec::new();
    // (index into out.fns, depth the body opened at)
    let mut fn_stack: Vec<(usize, i64)> = Vec::new();
    // A just-parsed fn header waiting for its body `{`.
    let mut pending_fn: Option<(String, Option<String>, u32)> = None;
    let mut paren_depth: i64 = 0;
    // Depth of the outermost `#[cfg(test)] mod` block we are inside, if
    // any: test code is not datapath, so its fns/consts are not part of
    // the model (a panicking test helper must not taint a handler).
    let mut cfg_test: Option<i64> = None;

    let mut i = 0usize;
    while i < t.len() {
        let tok = &t[i];
        if tok.is_punct('(') || tok.is_punct('[') {
            paren_depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') {
            paren_depth -= 1;
        } else if tok.is_punct('{') {
            brace_depth += 1;
            if paren_depth == 0 {
                if let Some((name, impl_ty, line)) = pending_fn.take() {
                    let qual = match &impl_ty {
                        Some(ty) => format!("{ty}::{name}"),
                        None => name.clone(),
                    };
                    out.fns.push(FnDef {
                        name,
                        qual,
                        krate: krate.to_string(),
                        file: file.to_string(),
                        line,
                        start_line: line,
                        end_line: line,
                        impl_type: impl_ty,
                        calls: Vec::new(),
                        panics: Vec::new(),
                    });
                    fn_stack.push((out.fns.len() - 1, brace_depth));
                }
            }
        } else if tok.is_punct('}') {
            if let Some((idx, open)) = fn_stack.last().copied() {
                if brace_depth == open {
                    out.fns[idx].end_line = tok.line;
                    fn_stack.pop();
                }
            }
            if let Some((_, open)) = impl_stack.last() {
                if brace_depth == *open {
                    impl_stack.pop();
                }
            }
            if let Some((_, open)) = mod_stack.last() {
                if brace_depth == *open {
                    mod_stack.pop();
                }
            }
            if cfg_test == Some(brace_depth) {
                cfg_test = None;
            }
            brace_depth -= 1;
        } else if tok.is_ident("impl") && paren_depth == 0 {
            // Scan the header up to `{`; the self type is the ident after
            // `for` when present, else the last segment of the first
            // angle-depth-0 path after `impl`.
            let mut j = i + 1;
            let mut angle: i64 = 0;
            let mut ty: Option<String> = None;
            let mut after_for = false;
            let mut saw_for = false;
            while j < t.len() && !t[j].is_punct('{') && !t[j].is_punct(';') {
                let tj = &t[j];
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle -= 1;
                } else if tj.is_ident("for") && angle == 0 {
                    saw_for = true;
                    after_for = true;
                    ty = None;
                } else if tj.is_ident("where") && angle == 0 {
                    break;
                } else if tj.kind == TokKind::Ident && angle == 0 {
                    // `a::b::C` — keep overwriting along the path so the
                    // last segment wins.
                    let continues_path = j >= 2 && t[j - 1].is_punct(':') && t[j - 2].is_punct(':');
                    let path_goes_on = j + 1 < t.len() && t[j + 1].is_punct(':');
                    if (after_for || (!saw_for && ty.is_none()) || continues_path)
                        && !matches!(tj.text.as_str(), "crate" | "self" | "dyn" | "mut")
                    {
                        ty = Some(tj.text.clone());
                        if after_for && !path_goes_on {
                            after_for = false;
                        }
                    }
                }
                j += 1;
            }
            if j < t.len() && t[j].is_punct('{') {
                if let Some(ty) = ty {
                    impl_stack.push((ty, brace_depth + 1));
                }
            }
            // Do not consume tokens: fall through so `{` is handled above.
        } else if tok.is_ident("mod")
            && i + 1 < t.len()
            && t[i + 1].kind == TokKind::Ident
            && i + 2 < t.len()
            && t[i + 2].is_punct('{')
        {
            mod_stack.push((t[i + 1].text.clone(), brace_depth + 1));
            // `#[cfg(test)] mod x {` — skip the whole module.
            let test_attr = i >= 7
                && t[i - 7].is_punct('#')
                && t[i - 6].is_punct('[')
                && t[i - 5].is_ident("cfg")
                && t[i - 4].is_punct('(')
                && t[i - 3].is_ident("test")
                && t[i - 2].is_punct(')')
                && t[i - 1].is_punct(']');
            if test_attr && cfg_test.is_none() {
                cfg_test = Some(brace_depth + 1);
            }
        } else if tok.is_ident("fn")
            && cfg_test.is_none()
            && i + 1 < t.len()
            && t[i + 1].kind == TokKind::Ident
        {
            // Trait-method *declarations* (`fn f(..);`) have no body: the
            // pending header is dropped when `;` arrives before `{`.
            let impl_ty = impl_stack.last().map(|(ty, _)| ty.clone());
            pending_fn = Some((t[i + 1].text.clone(), impl_ty, tok.line));
            i += 2;
            continue;
        } else if tok.is_punct(';') && paren_depth == 0 {
            // Terminates a bodiless fn declaration, if one is pending.
            pending_fn = None;
            // Also terminates a const item — handled below by lookahead.
        }

        // Const items (at any nesting, including inside `mod` blocks).
        if cfg_test.is_none()
            && tok.is_ident("const")
            && i + 1 < t.len()
            && t[i + 1].kind == TokKind::Ident
            && i + 2 < t.len()
            && t[i + 2].is_punct(':')
        {
            // `const NAME : ty = <tokens> ;`
            let name = t[i + 1].text.clone();
            let line = tok.line;
            let mut j = i + 2;
            while j < t.len() && !t[j].is_punct('=') && !t[j].is_punct(';') {
                j += 1;
            }
            let mut value = None;
            if j < t.len() && t[j].is_punct('=') {
                // Single integer literal initializer only.
                if j + 2 < t.len() && t[j + 1].kind == TokKind::Int && t[j + 2].is_punct(';') {
                    value = parse_int(&t[j + 1].text);
                }
            }
            out.consts.push(ConstDef {
                name,
                module: mod_stack.last().map(|(m, _)| m.clone()),
                value,
                line,
            });
        }

        // Call sites and panic sites, attributed to the innermost fn.
        if let Some((fn_idx, _)) = fn_stack.last().copied() {
            if tok.kind == TokKind::Ident && !KEYWORDS.contains(&tok.text.as_str()) {
                let next_is = |c: char| i + 1 < t.len() && t[i + 1].is_punct(c);
                let prev_is = |c: char| i > 0 && t[i - 1].is_punct(c);
                if next_is('!') && PANICKY_MACROS.contains(&tok.text.as_str()) {
                    out.fns[fn_idx].panics.push(tok.line);
                } else if next_is('(') && !next_is('!') {
                    if prev_is('.') {
                        if matches!(tok.text.as_str(), "unwrap" | "expect") {
                            // `.try_into().unwrap()` converts a
                            // length-checked slice; panic-free by
                            // construction, so don't taint on it.
                            let after_try_into = i >= 4
                                && t[i - 2].is_punct(')')
                                && t[i - 3].is_punct('(')
                                && t[i - 4].is_ident("try_into");
                            if !after_try_into {
                                out.fns[fn_idx].panics.push(tok.line);
                            }
                        } else {
                            out.fns[fn_idx].calls.push(CallSite {
                                callee: tok.text.clone(),
                                qualifier: None,
                                method: true,
                                line: tok.line,
                            });
                        }
                    } else if i > 0 && t[i - 1].is_ident("fn") {
                        // Definition header, not a call.
                    } else {
                        // Free or path call: look back through `a::b::`.
                        let mut qualifier = None;
                        if i >= 2 && t[i - 1].is_punct(':') && t[i - 2].is_punct(':') && i >= 3 {
                            let q = &t[i - 3];
                            if q.kind == TokKind::Ident {
                                qualifier = Some(q.text.clone());
                            }
                        }
                        out.fns[fn_idx].calls.push(CallSite {
                            callee: tok.text.clone(),
                            qualifier,
                            method: false,
                            line: tok.line,
                        });
                    }
                }
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_and_impl_extraction() {
        let src = "impl Nic {\n    pub fn on_packet(&mut self) {\n        self.fetch(1);\n        helper();\n        Wqe::decode(b);\n    }\n}\nfn helper() { other::leaf(); }\n";
        let s = parse_file("k", "f.rs", src);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].qual, "Nic::on_packet");
        assert_eq!(s.fns[0].start_line, 2);
        assert_eq!(s.fns[0].end_line, 6);
        let calls: Vec<(&str, bool)> = s.fns[0]
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.method))
            .collect();
        assert_eq!(
            calls,
            [("fetch", true), ("helper", false), ("decode", false)]
        );
        assert_eq!(s.fns[0].calls[2].qualifier.as_deref(), Some("Wqe"));
        assert_eq!(s.fns[1].qual, "helper");
        assert_eq!(s.fns[1].calls[0].qualifier.as_deref(), Some("other"));
    }

    #[test]
    fn impl_trait_for_type() {
        let src = "impl fmt::Display for Finding {\n fn fmt(&self) { self.go(); }\n}";
        let s = parse_file("k", "f.rs", src);
        assert_eq!(s.fns[0].qual, "Finding::fmt");
    }

    #[test]
    fn generic_impl() {
        let src = "impl<C: EventCtx> Engine<C> {\n fn step(&mut self) { self.pop(); }\n}";
        let s = parse_file("k", "f.rs", src);
        assert_eq!(s.fns[0].qual, "Engine::step");
    }

    #[test]
    fn consts_with_modules() {
        let src = "pub const WQE_SIZE: u64 = 64;\npub mod field_offset {\n    pub const OP: u64 = 52;\n}\nconst EXPR: u64 = 1 << 3;\n";
        let s = parse_file("k", "f.rs", src);
        assert_eq!(s.consts.len(), 3);
        assert_eq!(s.consts[0].name, "WQE_SIZE");
        assert_eq!(s.consts[0].value, Some(64));
        assert_eq!(s.consts[0].module, None);
        assert_eq!(s.consts[1].name, "OP");
        assert_eq!(s.consts[1].value, Some(52));
        assert_eq!(s.consts[1].module.as_deref(), Some("field_offset"));
        assert_eq!(s.consts[2].value, None); // expression, not a literal
    }

    #[test]
    fn panic_sites_and_try_into_exemption() {
        let src = "fn f(b: &[u8]) -> u32 {\n    let x: [u8; 4] = b[0..4].try_into().unwrap();\n    self.q.front().expect(\"boom\");\n    panic!(\"no\");\n    u32::from_le_bytes(x)\n}";
        let s = parse_file("k", "f.rs", src);
        assert_eq!(s.fns[0].panics, vec![3, 4]);
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn real() { go(); }\n#[cfg(test)]\nmod tests {\n    const FAKE: u64 = 1;\n    fn helper() { x.unwrap(); }\n}\nfn after() { run(); }";
        let s = parse_file("k", "f.rs", src);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["real", "after"]);
        assert!(s.consts.is_empty());
    }

    #[test]
    fn nested_fn_attribution() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    top();\n}";
        let s = parse_file("k", "f.rs", src);
        let outer = s.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = s.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].callee, "top");
        assert_eq!(inner.calls[0].callee, "leaf");
    }

    #[test]
    fn trait_decl_without_body_is_skipped() {
        let src = "trait P {\n fn on_event(&mut self, e: E);\n}\nfn real() { x(); }";
        let s = parse_file("k", "f.rs", src);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "real");
    }

    #[test]
    fn int_literals() {
        assert_eq!(parse_int("64"), Some(64));
        assert_eq!(parse_int("0x34"), Some(0x34));
        assert_eq!(parse_int("1_000u64"), Some(1000));
        assert_eq!(parse_int("0b101"), Some(5));
    }
}
