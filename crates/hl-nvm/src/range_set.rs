//! Sorted, coalescing set of byte ranges.
//!
//! Used to track which byte ranges of an NVM arena are *dirty* — written
//! through a volatile cache (NIC or CPU) but not yet flushed to the
//! durable medium. Ranges are half-open `[start, end)`.

/// A set of non-overlapping, non-adjacent, sorted half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if no bytes are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint ranges (after coalescing).
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Insert `[start, end)`. Zero-length inserts are ignored.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find insertion window: all ranges overlapping or adjacent to
        // [start, end) get merged.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        let mut new_start = start;
        let mut new_end = end;
        if lo < hi {
            new_start = new_start.min(self.ranges[lo].0);
            new_end = new_end.max(self.ranges[hi - 1].1);
        }
        self.ranges.splice(lo..hi, [(new_start, new_end)]);
    }

    /// Remove `[start, end)` from the set, splitting ranges as needed.
    pub fn remove(&mut self, start: u64, end: u64) {
        if start >= end || self.ranges.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            if e <= start || s >= end {
                out.push((s, e));
                continue;
            }
            if s < start {
                out.push((s, start));
            }
            if e > end {
                out.push((end, e));
            }
        }
        self.ranges = out;
    }

    /// Does the set intersect `[start, end)`?
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        self.ranges.get(i).is_some_and(|&(s, _)| s < end)
    }

    /// Is `[start, end)` fully covered by the set?
    pub fn contains(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        self.ranges
            .get(i)
            .is_some_and(|&(s, e)| s <= start && end <= e)
    }

    /// Intersection of the set with `[start, end)`, as concrete ranges.
    pub fn intersection(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for &(s, e) in &self.ranges {
            let lo = s.max(start);
            let hi = e.min(end);
            if lo < hi {
                out.push((lo, hi));
            }
            if s >= end {
                break;
            }
        }
        out
    }

    /// Iterate all ranges.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().copied()
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for w in self.ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "ranges must be sorted & non-adjacent");
        }
        for &(s, e) in &self.ranges {
            assert!(s < e, "empty range stored");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_and_coalesce() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        assert_eq!(rs.len(), 2);
        rs.insert(20, 30); // adjacent on both sides -> coalesce all
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.iter().next(), Some((10, 40)));
        rs.check_invariants();
    }

    #[test]
    fn insert_overlapping() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(15, 25);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(10, 25)]);
        rs.insert(5, 12);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(5, 25)]);
        rs.check_invariants();
    }

    #[test]
    fn remove_splits() {
        let mut rs = RangeSet::new();
        rs.insert(0, 100);
        rs.remove(40, 60);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        assert_eq!(rs.covered_bytes(), 80);
        rs.check_invariants();
    }

    #[test]
    fn remove_edges_and_all() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.remove(0, 15);
        assert_eq!(rs.iter().collect::<Vec<_>>(), vec![(15, 20)]);
        rs.remove(0, 100);
        assert!(rs.is_empty());
    }

    #[test]
    fn queries() {
        let mut rs = RangeSet::new();
        rs.insert(10, 20);
        rs.insert(30, 40);
        assert!(rs.intersects(15, 35));
        assert!(rs.intersects(19, 20));
        assert!(!rs.intersects(20, 30));
        assert!(rs.contains(12, 18));
        assert!(!rs.contains(12, 25));
        assert!(!rs.contains(25, 28));
        assert_eq!(rs.intersection(15, 35), vec![(15, 20), (30, 35)]);
    }

    #[test]
    fn zero_length_noop() {
        let mut rs = RangeSet::new();
        rs.insert(5, 5);
        assert!(rs.is_empty());
        assert!(!rs.intersects(5, 5));
        assert!(rs.contains(5, 5));
    }

    /// Brute-force model: a bitmap over a small domain.
    fn model_ops(ops: &[(bool, u8, u8)]) {
        const N: usize = 64;
        let mut rs = RangeSet::new();
        let mut bits = [false; N];
        for &(insert, a, b) in ops {
            let (s, e) = ((a as u64) % N as u64, (b as u64) % (N as u64 + 1));
            if insert {
                rs.insert(s, e);
                for i in s..e.min(N as u64) {
                    bits[i as usize] = true;
                }
            } else {
                rs.remove(s, e);
                for i in s..e.min(N as u64) {
                    bits[i as usize] = false;
                }
            }
            rs.check_invariants();
        }
        for i in 0..N as u64 {
            assert_eq!(
                rs.intersects(i, i + 1),
                bits[i as usize],
                "mismatch at byte {i}"
            );
        }
        assert_eq!(
            rs.covered_bytes(),
            bits.iter().filter(|&&b| b).count() as u64
        );
    }

    proptest! {
        #[test]
        fn matches_bitmap_model(ops in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u8>()), 0..50)) {
            model_ops(&ops);
        }
    }
}
