//! Plain-text table rendering for experiment output.

/// A simple column-aligned table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (ncol - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &width));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format nanoseconds as microseconds with 1 decimal.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Format nanoseconds (float) as microseconds with 1 decimal.
pub fn us_f(ns: f64) -> String {
    format!("{:.1}", ns / 1e3)
}

/// Format nanoseconds as milliseconds with 2 decimals.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Format nanoseconds (float) as milliseconds with 2 decimals.
pub fn ms_f(ns: f64) -> String {
    format!("{:.2}", ns / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["size", "avg", "p99"]);
        t.row(&["128".into(), "9.1".into(), "14.2".into()]);
        t.row(&["65536".into(), "100.0".into(), "120.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[2].ends_with("14.2"));
        // Columns align right.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(us(9_500), "9.5");
        assert_eq!(ms(2_340_000), "2.34");
        assert_eq!(us_f(100.0), "0.1");
        assert_eq!(ms_f(5e6), "5.00");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["x".into()]);
    }
}
