//! Sharded campaign: aggregate throughput scaling over 1→N HyperLoop
//! groups.
//!
//! Each shard is a full, independent HyperLoop group — its own chain of
//! pre-posted WQE rings, WAIT wiring and NVM region — placed on
//! *disjoint* hosts by [`ShardPlan::place`], all inside one
//! deterministic event engine. A per-shard closed-loop pump keeps
//! `pipeline` supervised gWRITEs outstanding through the
//! [`ShardRouter`], with keys pre-bucketed by the router's own
//! consistent-hash ring so the routed path is exercised end to end.
//! Because shards share no host NIC, CPU or egress FIFO, aggregate
//! ops/sec scales near-linearly with the shard count — the scale-out
//! claim this campaign measures.

use hl_cluster::exec::ShardExecutor;
use hl_cluster::shard::{HashRing, ShardPlan};
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, Histogram, SimDuration, SimTime, Summary};
use hyperloop::api::GroupClient;
use hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupOp, HyperLoopClient, RetryClient,
    ShardRouter,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of one sharded campaign run.
#[derive(Debug, Clone)]
pub struct ShardCampaignCfg {
    /// Number of independent HyperLoop groups.
    pub n_shards: usize,
    /// Replicas per shard (group size is `1 + replicas_per_shard`).
    pub replicas_per_shard: usize,
    /// Recorded operations per shard.
    pub ops_per_shard: usize,
    /// Unrecorded warmup operations per shard.
    pub warmup_per_shard: usize,
    /// Outstanding operations per shard.
    pub pipeline: usize,
    /// gWRITE payload bytes.
    pub write_size: usize,
    /// Pre-posted ring depth per shard.
    pub ring_slots: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Collect labelled metrics (per-shard `router_ops` counters).
    pub telemetry: bool,
}

impl Default for ShardCampaignCfg {
    fn default() -> Self {
        ShardCampaignCfg {
            n_shards: 1,
            replicas_per_shard: 2,
            ops_per_shard: 4_000,
            warmup_per_shard: 200,
            pipeline: 8,
            write_size: 512,
            ring_slots: 256,
            seed: 42,
            telemetry: false,
        }
    }
}

/// Measured outcome of a sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardCampaignResult {
    /// Shard count.
    pub n_shards: usize,
    /// Total recorded operations across shards.
    pub total_ops: usize,
    /// Aggregate throughput over the measured window (Kops/s).
    pub agg_kops: f64,
    /// Per-shard throughput (Kops/s), indexed by shard id.
    pub per_shard_kops: Vec<f64>,
    /// Latency over all recorded operations.
    pub latency: Summary,
    /// Simulated seconds in the measured window.
    pub sim_secs: f64,
    /// Rendered labelled-metrics registry (`Some` iff telemetry).
    pub metrics: Option<String>,
    /// Windowed time-series JSON snapshot (`Some` iff telemetry) —
    /// carries the per-shard `op_latency_ns{shard=N}` sketch series.
    pub timeseries: Option<String>,
    /// One-line deterministic report (identical across same-seed
    /// re-runs; the scaling table and CI byte-identity check use it).
    pub report: String,
}

struct ShardPump {
    sid: usize,
    /// Router shard to issue on: `sid` in the single-world multi-shard
    /// campaign, `0` in a per-shard slice world (whose router is
    /// one-wide even though `sid` is global).
    route: usize,
    issued: usize,
    recorded: usize,
    total: usize,
    warmup: usize,
    done_at: Option<SimTime>,
    hist: Histogram,
    keys: Vec<u64>,
    write_size: usize,
    /// Payload cache keyed by `key & 0xff` (the only byte the payload
    /// depends on): refcount bumps instead of a fresh buffer per op.
    payloads: Vec<Option<hl_sim::Bytes>>,
}

/// Run one sharded campaign.
pub fn run_shard_campaign(cfg: &ShardCampaignCfg) -> ShardCampaignResult {
    let group_size = 1 + cfg.replicas_per_shard;
    let n_hosts = cfg.n_shards * group_size;
    let rep_bytes = (128 * cfg.write_size.max(64) as u64 + (64 << 10)).next_power_of_two();
    let arena = (rep_bytes as usize + (4 << 20)).next_power_of_two();

    let (mut w, mut eng) = ClusterBuilder::new(n_hosts)
        .arena_size(arena)
        .seed(cfg.seed)
        .build();
    if cfg.telemetry {
        w.enable_timeseries(hl_sim::timeseries::DEFAULT_WINDOW);
    }

    // Disjoint placement: every host serves exactly one group member.
    let hosts: Vec<HostId> = (0..n_hosts).map(HostId).collect();
    let plan = ShardPlan::place(cfg.n_shards, cfg.replicas_per_shard, &hosts);
    assert!(plan.is_disjoint(), "sized pool must place disjointly");

    let mut shards = Vec::with_capacity(cfg.n_shards);
    for g in &plan.groups {
        let group = GroupBuilder::new(GroupConfig {
            client: g.client,
            replicas: g.replicas.clone(),
            rep_bytes,
            ring_slots: cfg.ring_slots,
            replenish_period: SimDuration::from_micros(50),
            transport_timeout: None,
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        let client = HyperLoopClient::new(group, &mut w);
        shards.push(RetryClient::with_policy(client, DeadlinePolicy::default()));
    }
    let router = Rc::new(ShardRouter::new(shards));

    // Pre-bucket a deterministic key stream by the router's own ring so
    // the routed (keyed) issue path is what the campaign exercises.
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); cfg.n_shards];
    for k in 0..(1024 * cfg.n_shards as u64) {
        buckets[router.shard_of_u64(k)].push(k);
    }

    let pumps: Vec<Rc<RefCell<ShardPump>>> = buckets
        .into_iter()
        .enumerate()
        .map(|(sid, keys)| {
            Rc::new(RefCell::new(ShardPump {
                sid,
                route: sid,
                issued: 0,
                recorded: 0,
                total: cfg.ops_per_shard + cfg.warmup_per_shard,
                warmup: cfg.warmup_per_shard,
                done_at: None,
                hist: Histogram::new(),
                keys,
                write_size: cfg.write_size,
                payloads: vec![None; 256],
            }))
        })
        .collect();

    // Prime the chains (replenishers, QP wiring), then measure.
    eng.run_until(&mut w, SimTime::from_nanos(2_000_000));
    let measure_from = eng.now();

    for pump in &pumps {
        for _ in 0..cfg.pipeline {
            issue_next(&router, pump, &mut w, &mut eng);
        }
    }
    let all = pumps.clone();
    eng.run_while(&mut w, move |_| {
        all.iter().any(|p| p.borrow().recorded < p.borrow().total)
    });
    let now = eng.now();
    let window = now.duration_since(measure_from).as_secs_f64();

    assert_eq!(
        router.failures().len(),
        0,
        "clean campaign must not fail ops"
    );

    let mut latency = Histogram::new();
    let mut per_shard_kops = Vec::with_capacity(cfg.n_shards);
    let mut total_ops = 0usize;
    for pump in &pumps {
        let p = pump.borrow();
        assert_eq!(p.recorded, p.total, "shard {} did not finish", p.sid);
        // Per-shard rate over that shard's own active window.
        let shard_window = p
            .done_at
            .expect("finished shard has a completion time")
            .duration_since(measure_from)
            .as_secs_f64();
        per_shard_kops.push((p.total - p.warmup) as f64 / shard_window / 1e3);
        total_ops += p.total - p.warmup;
        latency.merge(&p.hist);
    }
    let agg_kops = total_ops as f64 / window / 1e3;

    let metrics = cfg.telemetry.then(|| {
        w.collect_metrics(now);
        w.telemetry.metrics.render()
    });
    let timeseries = cfg.telemetry.then(|| w.telemetry.timeseries_json());

    let summary = latency.summary();
    let per_shard_str = per_shard_kops
        .iter()
        .map(|k| format!("{k:.1}"))
        .collect::<Vec<_>>()
        .join(",");
    let report = format!(
        "shards={} ops={} agg_kops={:.1} window_us={:.0} p50_ns={} p99_ns={} per_shard_kops=[{}]",
        cfg.n_shards,
        total_ops,
        agg_kops,
        window * 1e6,
        summary.p50_ns,
        summary.p99_ns,
        per_shard_str
    );

    ShardCampaignResult {
        n_shards: cfg.n_shards,
        total_ops,
        agg_kops,
        per_shard_kops,
        latency: summary,
        sim_secs: window,
        metrics,
        timeseries,
        report,
    }
}

fn issue_next(
    router: &Rc<ShardRouter>,
    pump: &Rc<RefCell<ShardPump>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let (sid, route, idx, key, size, data) = {
        let mut p = pump.borrow_mut();
        if p.issued >= p.total {
            return;
        }
        let key = p.keys[p.issued % p.keys.len()];
        let size = p.write_size;
        let data = p.payloads[(key & 0xff) as usize]
            .get_or_insert_with(|| hl_sim::Bytes::from(vec![(key & 0xff) as u8; size]))
            .clone();
        (p.sid, p.route, p.issued as u64, key, size, data)
    };
    pump.borrow_mut().issued += 1;
    // In a slice world the router is one-wide while `sid` is global, so
    // the homing check only applies when the router spans every shard.
    debug_assert!(
        router.ring().n_shards() == 1 || router.shard_of_u64(key) == sid,
        "bucketed key must route home"
    );

    let r2 = router.clone();
    let p2 = pump.clone();
    let issued_at = eng.now();
    let done: hyperloop::OnOutcome = Box::new(move |w, eng, r| {
        {
            let mut p = p2.borrow_mut();
            if r.is_ok() && p.recorded >= p.warmup {
                p.hist
                    .record(eng.now().duration_since(issued_at).as_nanos());
            }
            p.recorded += 1;
            if p.recorded == p.total {
                p.done_at = Some(eng.now());
            }
        }
        issue_next(&r2, &p2, w, eng);
    });

    // Rotate over 128 disjoint offsets so pipelined writes don't overlap.
    let slot = idx % 128;
    router.issue_on(
        w,
        eng,
        route,
        GroupOp::Write {
            offset: slot * size.max(64) as u64,
            data,
            flush: false,
        },
        done,
    );
}

/// Per-shard outcome of a partitioned campaign — plain `Send` data
/// (strings, byte vectors, counters) so it can cross the
/// [`ShardExecutor`] thread boundary. A slice is a pure function of
/// `(cfg, sid)`: the shard's world is built, run and torn down inside
/// the job, so the slice is byte-identical whatever thread ran it.
#[derive(Debug, Clone)]
pub struct ShardSlice {
    /// Global shard id (`0..cfg.n_shards`).
    pub sid: usize,
    /// Recorded (post-warmup) operations.
    pub ops: usize,
    /// Throughput over the shard's active window (Kops/s).
    pub kops: f64,
    /// Latency histogram over recorded operations.
    pub hist: Histogram,
    /// Byte snapshot of every member's written region (slot area), in
    /// chain order — the threaded byte-identity suite compares these
    /// against the sequential run.
    pub nvm: Vec<Vec<u8>>,
    /// Rendered labelled-metrics registry (`Some` iff telemetry).
    pub metrics: Option<String>,
    /// Windowed time-series JSON snapshot (`Some` iff telemetry).
    pub timeseries: Option<String>,
    /// One-line deterministic report.
    pub report: String,
}

/// Run shard `sid` of an `cfg.n_shards`-way partitioned campaign in its
/// own single-group world.
///
/// The key stream is bucketed with the *global* [`HashRing`] over
/// `cfg.n_shards` shards — the same keys the shard would own inside the
/// single-world campaign — so the routed workload partition is
/// preserved even though this world holds only shard `sid`'s group.
pub fn run_shard_slice(cfg: &ShardCampaignCfg, sid: usize) -> ShardSlice {
    assert!(sid < cfg.n_shards);
    let group_size = 1 + cfg.replicas_per_shard;
    let rep_bytes = (128 * cfg.write_size.max(64) as u64 + (64 << 10)).next_power_of_two();
    let arena = (rep_bytes as usize + (4 << 20)).next_power_of_two();

    let (mut w, mut eng) = ClusterBuilder::new(group_size)
        .arena_size(arena)
        .seed(cfg.seed.wrapping_add(sid as u64))
        .build();
    if cfg.telemetry {
        w.enable_timeseries(hl_sim::timeseries::DEFAULT_WINDOW);
    }

    let hosts: Vec<HostId> = (0..group_size).map(HostId).collect();
    let plan = ShardPlan::place(1, cfg.replicas_per_shard, &hosts);
    let group = GroupBuilder::new(GroupConfig {
        client: plan.groups[0].client,
        replicas: plan.groups[0].replicas.clone(),
        rep_bytes,
        ring_slots: cfg.ring_slots,
        replenish_period: SimDuration::from_micros(50),
        transport_timeout: None,
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group, &mut w);
    let router = Rc::new(ShardRouter::new(vec![RetryClient::with_policy(
        client,
        DeadlinePolicy::default(),
    )]));

    // Shard `sid`'s cut of the same deterministic key stream the
    // single-world campaign buckets.
    let ring = HashRing::new(cfg.n_shards);
    let keys: Vec<u64> = (0..(1024 * cfg.n_shards as u64))
        .filter(|&k| ring.shard_of_u64(k) == sid)
        .collect();

    let pump = Rc::new(RefCell::new(ShardPump {
        sid,
        route: 0,
        issued: 0,
        recorded: 0,
        total: cfg.ops_per_shard + cfg.warmup_per_shard,
        warmup: cfg.warmup_per_shard,
        done_at: None,
        hist: Histogram::new(),
        keys,
        write_size: cfg.write_size,
        payloads: vec![None; 256],
    }));

    eng.run_until(&mut w, SimTime::from_nanos(2_000_000));
    let measure_from = eng.now();
    for _ in 0..cfg.pipeline {
        issue_next(&router, &pump, &mut w, &mut eng);
    }
    let p2 = pump.clone();
    eng.run_while(&mut w, move |_| {
        let p = p2.borrow();
        p.recorded < p.total
    });
    assert_eq!(router.failures().len(), 0, "clean slice must not fail ops");

    let now = eng.now();
    let metrics = cfg.telemetry.then(|| {
        w.collect_metrics(now);
        w.telemetry.metrics.render()
    });
    let timeseries = cfg.telemetry.then(|| w.telemetry.timeseries_json());

    let (hist, window, ops) = {
        let p = pump.borrow();
        assert_eq!(p.recorded, p.total, "shard {sid} did not finish");
        let window = p
            .done_at
            .expect("finished shard has a completion time")
            .duration_since(measure_from)
            .as_secs_f64();
        (p.hist.clone(), window, p.total - p.warmup)
    };
    let kops = ops as f64 / window / 1e3;

    // Snapshot the written slot area of every member, chain order.
    let c = router.client(0).client();
    let span = 128 * cfg.write_size.max(64);
    let nvm: Vec<Vec<u8>> = (0..c.group_size())
        .map(|m| {
            let host = c.member_host(m);
            let addr = c.member_addr(m, 0);
            w.hosts[host.0]
                .mem
                .read_vec(addr, span)
                .expect("replicated region mapped")
        })
        .collect();

    let summary = hist.summary();
    let report = format!(
        "shard={} ops={} kops={:.1} window_us={:.0} p50_ns={} p99_ns={} events={}",
        sid,
        ops,
        kops,
        window * 1e6,
        summary.p50_ns,
        summary.p99_ns,
        eng.events_executed()
    );

    ShardSlice {
        sid,
        ops,
        kops,
        hist,
        nvm,
        metrics,
        timeseries,
        report,
    }
}

/// Merged outcome of a threaded partitioned campaign.
#[derive(Debug, Clone)]
pub struct ThreadedShardCampaign {
    /// Shard count.
    pub n_shards: usize,
    /// OS threads the executor fanned shards over.
    pub threads: usize,
    /// Total recorded operations across shards.
    pub total_ops: usize,
    /// Sum of per-shard throughputs (Kops/s) — shards share nothing,
    /// so aggregate simulated throughput is additive.
    pub agg_kops: f64,
    /// Latency over all recorded operations (shard-order merge).
    pub latency: Summary,
    /// Per-shard slices, indexed by shard id.
    pub slices: Vec<ShardSlice>,
    /// Deterministic multi-line report: one header plus each shard's
    /// line in shard order; byte-identical whatever the thread count.
    pub report: String,
}

/// Run an `cfg.n_shards`-way partitioned campaign with each shard's
/// event loop on its own thread (up to `threads`), merging results in
/// shard order. `threads == 1` is the sequential baseline the
/// byte-identity suite compares against.
pub fn run_shard_campaign_threaded(
    cfg: &ShardCampaignCfg,
    threads: usize,
) -> ThreadedShardCampaign {
    let exec = ShardExecutor::new(threads);
    let slices = exec.run(cfg.n_shards, |sid| run_shard_slice(cfg, sid));

    let mut latency = Histogram::new();
    let mut agg_kops = 0.0;
    let mut total_ops = 0usize;
    for s in &slices {
        latency.merge(&s.hist);
        agg_kops += s.kops;
        total_ops += s.ops;
    }
    let summary = latency.summary();
    let mut report = format!(
        "threaded_shards={} ops={} agg_kops={:.1} p50_ns={} p99_ns={}\n",
        cfg.n_shards, total_ops, agg_kops, summary.p50_ns, summary.p99_ns
    );
    for s in &slices {
        report.push_str(&s.report);
        report.push('\n');
    }

    ThreadedShardCampaign {
        n_shards: cfg.n_shards,
        threads: exec.threads(),
        total_ops,
        agg_kops,
        latency: summary,
        slices,
        report,
    }
}

/// Run the campaign at each shard count and render the scaling table.
/// Returns the per-count results plus the aggregate speedup of the last
/// entry relative to the first.
pub fn scaling_sweep(
    base: &ShardCampaignCfg,
    shard_counts: &[usize],
) -> (Vec<ShardCampaignResult>, f64) {
    let mut results = Vec::with_capacity(shard_counts.len());
    for &n in shard_counts {
        let cfg = ShardCampaignCfg {
            n_shards: n,
            ..base.clone()
        };
        results.push(run_shard_campaign(&cfg));
    }
    let speedup = results.last().map_or(0.0, |last| {
        results.first().map_or(0.0, |first| {
            if first.agg_kops > 0.0 {
                last.agg_kops / first.agg_kops
            } else {
                0.0
            }
        })
    });
    (results, speedup)
}
