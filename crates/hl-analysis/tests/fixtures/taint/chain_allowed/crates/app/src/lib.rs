// Allow fixture: identical chain to chain_pos, but the source is
// suppressed where it lives — so no taint finding anywhere.
pub fn on_packet(x: u64) -> u64 {
    stage(x)
}

fn stage(x: u64) -> u64 {
    mid::mid_helper(x)
}
