//! Property tests: the fabric's delivery guarantees.

use hl_fabric::{Delivery, Fabric, HostId};
use hl_sim::config::NetProfile;
use hl_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// Per ordered pair, arrival times are strictly monotonic in send
    /// order (the in-order property RC transport needs), regardless of
    /// message sizes and send times.
    #[test]
    fn per_pair_fifo(
        msgs in proptest::collection::vec(
            // (send_at_ns sorted later, size)
            (0u64..10_000, 0usize..4096),
            1..50,
        )
    ) {
        let mut f = Fabric::new(2, NetProfile::default());
        let mut msgs = msgs;
        msgs.sort_by_key(|m| m.0);
        let mut last = None;
        for (at, size) in msgs {
            let d = f.send(SimTime::from_nanos(at), HostId(0), HostId(1), size, 1.0);
            let Delivery::At(t) = d else { panic!("lossless fabric dropped") };
            if let Some(prev) = last {
                prop_assert!(t >= prev, "reordered: {t} before {prev}");
            }
            // Arrival is never before send + propagation.
            prop_assert!(t.as_nanos() >= at + 700);
            last = Some(t);
        }
    }

    /// Bandwidth conservation: k back-to-back messages of equal size
    /// take at least k × serialization time end-to-end.
    #[test]
    fn bandwidth_is_not_exceeded(k in 1usize..40, size in 1usize..8192) {
        let mut f = Fabric::new(2, NetProfile::default());
        let mut final_t = SimTime::ZERO;
        for _ in 0..k {
            if let Delivery::At(t) = f.send(SimTime::ZERO, HostId(0), HostId(1), size, 1.0) {
                final_t = t;
            }
        }
        let min_serialization = NetProfile::default().transfer_time(size).as_nanos() * k as u64;
        prop_assert!(final_t.as_nanos() >= min_serialization);
        prop_assert_eq!(f.bytes_tx(HostId(0)), (k * size) as u64);
    }
}
