//! kvlite: a replicated RocksDB-like store whose write path is a single
//! durable `Append` to the NIC-offloaded write-ahead log, with replicas
//! replaying their own NVM log copies off the critical path.
//!
//! ```sh
//! cargo run --example replicated_kv
//! ```

use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::{Histogram, SimTime};
use hyperloop_repro::store::kv::{KvConfig, KvDb};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let (mut world, mut engine) = ClusterBuilder::new(4).arena_size(8 << 20).seed(11).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2), HostId(3)],
        rep_bytes: 4 << 20,
        ring_slots: 128,
        ..Default::default()
    })
    .build(&mut world);
    replica::start_replenishers(&group, &mut world, &mut engine);
    let client = Rc::new(HyperLoopClient::new(group, &mut world));
    let mut db = KvDb::open(client.clone(), KvConfig::default(), &mut world, &mut engine);

    // Write 500 keys, measuring the durable-replicated-put latency.
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let acked = Rc::new(RefCell::new(0u32));
    for k in 0..500u32 {
        let h = hist.clone();
        let a = acked.clone();
        db.put(
            &mut world,
            &mut engine,
            format!("user{k:06}").as_bytes(),
            format!("profile-data-{k}").as_bytes(),
            Box::new(move |_w, _e, r| {
                h.borrow_mut().record(r.latency.as_nanos());
                *a.borrow_mut() += 1;
            }),
        )
        .unwrap();
        let a2 = acked.clone();
        let want = k + 1;
        engine.run_while(&mut world, move |_| *a2.borrow() < want);
    }

    let s = hist.borrow().summary();
    println!("500 durable replicated puts (3 replicas):");
    println!(
        "  avg {:.1}us  p50 {:.1}us  p99 {:.1}us",
        s.mean_us(),
        s.p50_ns as f64 / 1e3,
        s.p99_us()
    );

    // Strong reads at the client.
    println!(
        "client read user000042 -> {:?}",
        db.get(b"user000042")
            .map(|v| String::from_utf8_lossy(v).into_owned())
    );
    let scan = db.scan(b"user000100", 3);
    println!(
        "client scan from user000100 -> {:?}",
        scan.iter()
            .map(|(k, _)| String::from_utf8_lossy(k))
            .collect::<Vec<_>>()
    );

    // Eventually-consistent reads at a replica, once its syncer has
    // replayed the log from its own NVM.
    engine.run_until(
        &mut world,
        SimTime::from_nanos(engine.now().as_nanos() + 20_000_000),
    );
    println!(
        "replica-1 read user000042 -> {:?}",
        db.get_at_replica(0, b"user000042")
            .map(|v| String::from_utf8_lossy(&v).into_owned())
    );
    println!("replica applied log cursors: {:?}", db.replica_applied());
    println!("log cursors (head, tail): {:?}", db.log_cursors());

    // Crash all replicas: every acked put survives in NVM.
    for h in 1..4 {
        world.hosts[h].mem.crash();
    }
    println!("after crashing every replica, the WAL tail pointer survives:");
    for m in 1..4 {
        use hyperloop_repro::hyperloop::api::GroupClient;
        let addr = client.member_addr(m, 8);
        println!(
            "  member {m}: tail = {}",
            world.hosts[m].mem.read_u64(addr).unwrap()
        );
    }
}
