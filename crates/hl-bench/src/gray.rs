//! Gray-failure campaign: tail latency per impairment class per
//! backend, plus the crashed-host live-rejoin case.
//!
//! Each point runs one HyperLoop group (client + 2 replicas) through a
//! fixed closed-loop gWRITE workload while a *persistent* gray
//! impairment — jitter, loss, a token-bucket rate cap, or a straggler
//! NIC — shapes the chain's links, and records **end-to-end supervised
//! latency** (issue → settle, retries and transitions included; this is
//! what a storage client actually waits). Three backends per class:
//!
//! * `hyperloop` — the offloaded chain under deadline supervision.
//! * `naive` — the CPU-forwarding baseline under the same supervision.
//! * `degrade` — the offloaded chain plus [`HealthMonitor`], free to
//!   degrade to the Naïve path (and re-promote) as its health score
//!   moves.
//!
//! [`run_rejoin_case`] is the live-traffic membership change: two
//! disjoint shards, the victim's tail replica crashes and is rebuilt
//! out, the healed host rejoins via streaming catch-up
//! ([`hyperloop::health::rejoin_member`]) while both shards keep
//! serving — and the bystander shard's per-op latency vector must be
//! byte-identical to a fault-free control run.

use hl_cluster::chaos::{BystanderProbe, FaultEvent, FaultKind, FaultSchedule};
use hl_cluster::shard::ShardPlan;
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, Histogram, SimDuration, SimTime, Summary};
use hyperloop::api::GroupClient;
use hyperloop::deadline::Backend;
use hyperloop::health::{rejoin_member, HealthConfig, HealthMonitor};
use hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop::recovery::{self, HeartbeatConfig};
use hyperloop::slo::{SloEngine, SloRule};
use hyperloop::{replica, DeadlinePolicy, GroupBuilder, GroupConfig, HyperLoopClient, RetryClient};
use std::cell::RefCell;
use std::rc::Rc;

const CLIENT: HostId = HostId(0);
const R1: HostId = HostId(1);
const R2: HostId = HostId(2);
const SLOTS: usize = 128;

/// Which replication path serves the point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrayBackend {
    /// Offloaded chain, supervision only.
    Hyper,
    /// CPU-forwarding baseline, same supervision.
    Naive,
    /// Offloaded chain + health monitor (may degrade / re-promote).
    Degrade,
}

impl GrayBackend {
    /// Stable label used in reports and BENCH_6.json keys.
    pub fn label(self) -> &'static str {
        match self {
            GrayBackend::Hyper => "hyperloop",
            GrayBackend::Naive => "naive",
            GrayBackend::Degrade => "degrade",
        }
    }
}

/// Configuration of one gray campaign point.
#[derive(Debug, Clone)]
pub struct GrayCfg {
    /// Recorded operations.
    pub ops: usize,
    /// Outstanding supervised operations.
    pub pipeline: usize,
    /// gWRITE payload bytes.
    pub write_size: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for GrayCfg {
    fn default() -> Self {
        GrayCfg {
            ops: 400,
            pipeline: 4,
            write_size: 256,
            seed: 6006,
        }
    }
}

/// Measured outcome of one (class, backend) point.
#[derive(Debug, Clone)]
pub struct GrayPoint {
    /// Impairment class label.
    pub class: &'static str,
    /// Backend that served the point.
    pub backend: GrayBackend,
    /// End-to-end supervised latency over all recorded ops.
    pub latency: Summary,
    /// Operations that failed with a typed error.
    pub failed_ops: u32,
    /// Health-monitor degradations (0 unless [`GrayBackend::Degrade`]).
    pub degrades: u64,
    /// Health-monitor re-promotions (0 unless [`GrayBackend::Degrade`]).
    pub promotes: u64,
    /// One-line deterministic report.
    pub report: String,
}

/// The impairment matrix: label → persistent gray faults over the
/// group's links (client `h0`, replicas `h1`/`h2`). "baseline" is the
/// unimpaired control row.
pub fn impairment_classes() -> Vec<(&'static str, Vec<FaultEvent>)> {
    let at = SimTime::from_nanos(1_000);
    vec![
        ("baseline", vec![]),
        (
            "jitter",
            vec![
                FaultEvent {
                    at,
                    duration: None,
                    kind: FaultKind::Jitter {
                        src: CLIENT,
                        dst: R1,
                        delay: SimDuration::from_micros(10),
                        jitter: SimDuration::from_micros(30),
                    },
                },
                FaultEvent {
                    at,
                    duration: None,
                    kind: FaultKind::Jitter {
                        src: R2,
                        dst: CLIENT,
                        delay: SimDuration::from_micros(20),
                        jitter: SimDuration::from_micros(60),
                    },
                },
            ],
        ),
        (
            "lossy_link",
            vec![FaultEvent {
                at,
                duration: None,
                kind: FaultKind::LossyLink {
                    src: CLIENT,
                    dst: R1,
                    prob: 0.15,
                },
            }],
        ),
        (
            "rate_limit",
            vec![FaultEvent {
                at,
                duration: None,
                kind: FaultKind::RateLimit {
                    host: R1,
                    bps: 800_000_000,
                },
            }],
        ),
        (
            "straggler_nic",
            vec![FaultEvent {
                at,
                duration: None,
                kind: FaultKind::StragglerNic {
                    host: R1,
                    delay: SimDuration::from_micros(40),
                },
            }],
        ),
    ]
}

// The per-attempt deadline sits *above* the transport's go-back-N
// recovery time (3ms): a lost packet is re-driven by the NIC before the
// supervisor re-issues, so sustained loss degrades tail latency instead
// of compounding into a duplicate-traffic storm through the lossy link.
fn policy() -> DeadlinePolicy {
    DeadlinePolicy {
        deadline: SimDuration::from_millis(4),
        max_attempts: 40,
        backoff: SimDuration::from_micros(500),
        backoff_cap: SimDuration::from_millis(4),
    }
}

fn payload(k: usize, write_size: usize) -> Vec<u8> {
    let mut v = format!("gray-{k:06}-").into_bytes();
    while v.len() < write_size {
        v.push(b'a' + (k % 26) as u8);
    }
    v.truncate(write_size);
    v
}

struct Pump {
    issued: usize,
    total: usize,
    write_size: usize,
    hist: Histogram,
    failed: u32,
}

fn pump_next(
    pump: &Rc<RefCell<Pump>>,
    retry: &RetryClient,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let (k, write_size) = {
        let mut p = pump.borrow_mut();
        if p.issued >= p.total {
            return;
        }
        let k = p.issued;
        p.issued += 1;
        (k, p.write_size)
    };
    let issued_at = eng.now();
    let pump2 = pump.clone();
    let retry2 = retry.clone();
    retry.gwrite(
        w,
        eng,
        ((k % SLOTS) * write_size) as u64,
        &payload(k, write_size),
        true,
        Box::new(move |w, eng, r| {
            {
                let mut p = pump2.borrow_mut();
                match r {
                    Ok(_) => {
                        let e2e = eng.now().duration_since(issued_at);
                        p.hist.record(e2e.as_nanos());
                    }
                    Err(_) => p.failed += 1,
                }
            }
            pump_next(&pump2, &retry2, w, eng);
        }),
    );
}

/// Run one (class, backend) point of the gray campaign.
pub fn run_gray_point(
    class: &'static str,
    faults: &[FaultEvent],
    backend: GrayBackend,
    cfg: &GrayCfg,
) -> GrayPoint {
    let rep_bytes = ((SLOTS * cfg.write_size) as u64 + (64 << 10)).next_power_of_two();
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size((rep_bytes as usize + (2 << 20)).next_power_of_two())
        .seed(cfg.seed)
        .build();
    w.enable_telemetry();

    let mut monitor = None;
    let retry = match backend {
        GrayBackend::Naive => {
            let naive = NaiveBuilder::new(NaiveConfig {
                client: CLIENT,
                replicas: vec![R1, R2],
                rep_bytes,
                ring_slots: 128,
                mode: Mode::Event,
                ..Default::default()
            })
            .build(&mut w, &mut eng);
            RetryClient::with_policy_backend(Backend::Naive(naive), policy())
        }
        GrayBackend::Hyper | GrayBackend::Degrade => {
            let group = GroupBuilder::new(GroupConfig {
                client: CLIENT,
                replicas: vec![R1, R2],
                rep_bytes,
                ring_slots: 128,
                transport_timeout: Some((SimDuration::from_millis(3), 7)),
                ..Default::default()
            })
            .build(&mut w);
            replica::start_replenishers(&group, &mut w, &mut eng);
            let client = HyperLoopClient::new(group.clone(), &mut w);
            let retry = RetryClient::with_policy(client, policy());
            if backend == GrayBackend::Degrade {
                monitor = Some(HealthMonitor::start(
                    retry.clone(),
                    group,
                    HealthConfig {
                        period: SimDuration::from_millis(2),
                        degrade_score: 20,
                        healthy_score: 5,
                        degrade_after: 2,
                        promote_after: 3,
                        min_degraded_dwell: SimDuration::from_millis(3),
                        ring_slots: 128,
                        naive_mode: Mode::Event,
                    },
                    &mut w,
                    &mut eng,
                ));
            }
            retry
        }
    };

    if !faults.is_empty() {
        FaultSchedule {
            seed: cfg.seed,
            events: faults.to_vec(),
        }
        .apply(&mut eng);
    }

    let pump = Rc::new(RefCell::new(Pump {
        issued: 0,
        total: cfg.ops,
        write_size: cfg.write_size,
        hist: Histogram::new(),
        failed: 0,
    }));
    for _ in 0..cfg.pipeline {
        let pump = pump.clone();
        let retry2 = retry.clone();
        eng.schedule_at(SimTime::from_nanos(1_000_000), move |w: &mut World, eng| {
            pump_next(&pump, &retry2, w, eng);
        });
    }

    eng.run_until(&mut w, SimTime::from_nanos(2_000_000_000));
    if let Some(m) = &monitor {
        m.stop();
    }

    let p = pump.borrow();
    assert_eq!(
        p.hist.count() + p.failed as u64,
        cfg.ops as u64,
        "gray point {class}/{}: ops unsettled",
        backend.label()
    );
    let latency = p.hist.summary();
    let (degrades, promotes) = monitor
        .as_ref()
        .map(|m| (m.degrades(), m.promotes()))
        .unwrap_or((0, 0));
    let report = format!(
        "class={class} backend={} ops={} failed={} p50_ns={} p99_ns={} degrades={degrades} promotes={promotes}",
        backend.label(),
        cfg.ops,
        p.failed,
        latency.p50_ns,
        latency.p99_ns,
    );
    GrayPoint {
        class,
        backend,
        latency,
        failed_ops: p.failed,
        degrades,
        promotes,
        report,
    }
}

/// Outcome of the crashed-host live-rejoin case (or its control run).
#[derive(Debug, Clone)]
pub struct RejoinOutcome {
    /// Victim-shard ops that settled OK.
    pub victim_acked: usize,
    /// Victim-shard ops that failed with a typed error.
    pub victim_failed: u32,
    /// Members of the victim's final chain.
    pub victim_members: Vec<HostId>,
    /// True iff the crashed host is back in the final chain.
    pub rejoined: bool,
    /// Bystander per-op `(op, latency_ns)` vector, in settle order —
    /// byte-compared against the control run.
    pub bystander_latencies: Vec<(usize, u64)>,
    /// Bystander ops that failed (must be 0).
    pub bystander_failed: u32,
}

/// Crashed-host live-rejoin under traffic. With `fault` the victim
/// shard's tail replica link-drops at 10ms (healing at 20ms), the
/// heartbeat detector rebuilds the chain down to the survivor, and at
/// 30ms the healed host rejoins via streaming catch-up while both
/// shards keep serving. Without `fault` the same world runs untouched —
/// the control whose bystander latencies the faulted run must match
/// byte for byte.
pub fn run_rejoin_case(seed: u64, ops_per_shard: usize, fault: bool) -> RejoinOutcome {
    const N_SHARDS: usize = 2;
    const REPLICAS: usize = 2;
    let hosts: Vec<HostId> = (0..N_SHARDS * (1 + REPLICAS)).map(HostId).collect();
    let plan = ShardPlan::place(N_SHARDS, REPLICAS, &hosts);
    assert!(plan.is_disjoint());
    let victim_tail = plan.groups[0].replicas[REPLICAS - 1];

    let (mut w, mut eng) = ClusterBuilder::new(hosts.len())
        .arena_size(2 << 20)
        .seed(seed)
        .build();

    let mut retries = Vec::new();
    for g in &plan.groups {
        let group = GroupBuilder::new(GroupConfig {
            client: g.client,
            replicas: g.replicas.clone(),
            rep_bytes: 256 << 10,
            ring_slots: 64,
            transport_timeout: Some((SimDuration::from_millis(3), 7)),
            ..Default::default()
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        let client = HyperLoopClient::new(group.clone(), &mut w);
        let retry = RetryClient::with_policy(client, policy());
        // Heartbeat-driven shrink on the victim shard only: on a missed
        // heartbeat the chain rebuilds over the survivors (no standby —
        // the crashed host itself rejoins later).
        if g.shard == 0 {
            let latch = Rc::new(RefCell::new(false));
            let members = g.replicas.clone();
            let grp = group.clone();
            let r = retry.clone();
            recovery::start_heartbeats(
                &group,
                HeartbeatConfig {
                    period: SimDuration::from_millis(2),
                    miss_threshold: 3,
                },
                Box::new(move |w, eng, idx| {
                    if std::mem::replace(&mut *latch.borrow_mut(), true) {
                        return;
                    }
                    let survivors: Vec<HostId> = members
                        .iter()
                        .copied()
                        .filter(|&h| h != members[idx])
                        .collect();
                    let r2 = r.clone();
                    recovery::rebuild_chain(
                        w,
                        eng,
                        &grp,
                        survivors,
                        None,
                        64,
                        Box::new(move |_w, _e, new_client| r2.swap(new_client)),
                    );
                }),
                &mut w,
                &mut eng,
            );
        }
        retries.push(retry);
    }

    if fault {
        FaultSchedule {
            seed,
            events: vec![FaultEvent {
                at: SimTime::from_nanos(10_000_000),
                duration: Some(SimDuration::from_millis(10)),
                kind: FaultKind::LinkDown { host: victim_tail },
            }],
        }
        .apply(&mut eng);
        // The healed host rejoins at 30ms, traffic still flowing.
        let retry = retries[0].clone();
        eng.schedule_at(
            SimTime::from_nanos(30_000_000),
            move |w: &mut World, eng| {
                rejoin_member(
                    &retry,
                    victim_tail,
                    64,
                    w,
                    eng,
                    Box::new(|_w, _e, _client| {}),
                );
            },
        );
    }

    // Open-loop: each shard writes one record every 200µs. Settlement
    // goes through the shared bystander probe so this case, the chaos
    // suites and the migration battery all record identically.
    let acked: Vec<_> = (0..N_SHARDS)
        .map(|_| Rc::new(RefCell::new(0usize)))
        .collect();
    let probes: Vec<_> = (0..N_SHARDS).map(|_| BystanderProbe::new()).collect();
    for sid in 0..N_SHARDS {
        for k in 0..ops_per_shard {
            let retry = retries[sid].clone();
            let acked = acked[sid].clone();
            let probe = probes[sid].clone();
            let at = SimTime::from_nanos(1_000_000 + k as u64 * 200_000);
            eng.schedule_at(at, move |w: &mut World, eng| {
                let issued_at = eng.now();
                retry.gwrite(
                    w,
                    eng,
                    ((k % SLOTS) * 256) as u64,
                    &payload(k, 256),
                    true,
                    Box::new(move |_w, eng, r| match r {
                        Ok(_) => {
                            *acked.borrow_mut() += 1;
                            probe.record(k, eng.now().duration_since(issued_at).as_nanos());
                        }
                        Err(_) => probe.record_failure(),
                    }),
                );
            });
        }
    }

    eng.run_until(&mut w, SimTime::from_nanos(500_000_000));

    let c = retries[0].client();
    let victim_members: Vec<HostId> = (0..c.group_size()).map(|m| c.member_host(m)).collect();
    let victim_acked = *acked[0].borrow();
    let victim_failed = probes[0].failed() as u32;
    let bystander_latencies = probes[1].latencies();
    let bystander_failed = probes[1].failed() as u32;
    RejoinOutcome {
        victim_acked,
        victim_failed,
        rejoined: victim_members.contains(&victim_tail),
        victim_members,
        bystander_latencies,
        bystander_failed,
    }
}

/// The SLO threshold the excursion case alerts on: supervised p99 must
/// stay under this many nanoseconds per window.
pub const EXCURSION_SLO_NS: u64 = 150_000;

/// Outcome of the SLO-excursion case: one degrade/re-promote round trip
/// with the full time-series snapshot and the causal chain extracted
/// from the mark stream.
#[derive(Debug, Clone)]
pub struct ExcursionOutcome {
    /// Deterministic JSON snapshot of the whole time-series store
    /// (byte-compared across same-seed re-runs).
    pub snapshot_json: String,
    /// CSV flattening of the same snapshot.
    pub snapshot_csv: String,
    /// Rendered `op_latency_ns` timeline (per-window p50/p99 bars with
    /// fault / SLO / transition marks overlaid).
    pub timeline: String,
    /// Time-series window width in nanoseconds.
    pub window_ns: u64,
    /// First window whose supervised p99 crossed [`EXCURSION_SLO_NS`].
    pub excursion_window: u64,
    /// End of that window (ns) — the earliest instant the SLO engine
    /// could have observed the excursion.
    pub excursion_end_ns: u64,
    /// When `slo:fire:supervised-p99` was stamped.
    pub slo_fire_ns: Option<u64>,
    /// When `transition:backend:offloaded->degrading` was stamped.
    pub degrading_ns: Option<u64>,
    /// Health-monitor degradations (must be >= 1).
    pub degrades: u64,
    /// Health-monitor re-promotions (must be >= 1).
    pub promotes: u64,
    /// Flight-recorder dumps requested during the run.
    pub flight_dumps: u64,
    /// Ops that settled OK.
    pub ops_ok: usize,
    /// Ops that failed with a typed error.
    pub ops_failed: u32,
    /// One-line deterministic report.
    pub report: String,
}

/// Run the SLO-excursion case: an offloaded group under health
/// supervision with an attached burn-rate SLO rule
/// (`p99(op_latency_ns{layer=supervised}) < 150us over 8 windows`)
/// takes a 25ms jitter excursion on its client links. The expected
/// causal chain, all visible in one time-series snapshot, is:
///
/// 1. per-window supervised p99 crosses the threshold (the excursion),
/// 2. the SLO alert fires (`slo:fire:` mark, `slo_alerts_fired`
///    counter),
/// 3. the monitor — whose sick signal the alert feeds — degrades to the
///    Naïve path (`transition:backend:offloaded->degrading`),
/// 4. the fault heals, the alert resolves, and the monitor re-promotes.
///
/// Open-loop (one write per 100µs) so the workload spans the fault
/// window regardless of per-op latency.
pub fn run_excursion_case(seed: u64, ops: usize) -> ExcursionOutcome {
    let rep_bytes = ((SLOTS * 256) as u64 + (64 << 10)).next_power_of_two();
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size((rep_bytes as usize + (2 << 20)).next_power_of_two())
        .seed(seed)
        .build();
    w.enable_timeseries(hl_sim::timeseries::DEFAULT_WINDOW);

    let group = GroupBuilder::new(GroupConfig {
        client: CLIENT,
        replicas: vec![R1, R2],
        rep_bytes,
        ring_slots: 128,
        transport_timeout: Some((SimDuration::from_millis(3), 7)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);
    let retry = RetryClient::with_policy(client, policy());
    let monitor = HealthMonitor::start(
        retry.clone(),
        group,
        HealthConfig {
            period: SimDuration::from_millis(2),
            degrade_score: 20,
            healthy_score: 5,
            degrade_after: 2,
            promote_after: 3,
            min_degraded_dwell: SimDuration::from_millis(3),
            ring_slots: 128,
            naive_mode: Mode::Event,
        },
        &mut w,
        &mut eng,
    );
    let slo = Rc::new(RefCell::new(SloEngine::new()));
    slo.borrow_mut().add_rule(
        SloRule::parse(
            "supervised-p99",
            "p99(op_latency_ns{layer=supervised}) < 150us over 8 windows",
        )
        .expect("rule parses")
        .with_short_windows(2),
    );
    monitor.attach_slo(slo.clone());

    // The excursion: heavy jitter on the client's links from 10ms,
    // healing at 35ms. The health score barely moves (nothing times
    // out), so the SLO alert is the only signal that can degrade.
    FaultSchedule {
        seed,
        events: vec![
            FaultEvent {
                at: SimTime::from_nanos(10_000_000),
                duration: Some(SimDuration::from_millis(25)),
                kind: FaultKind::Jitter {
                    src: CLIENT,
                    dst: R1,
                    delay: SimDuration::from_micros(40),
                    jitter: SimDuration::from_micros(120),
                },
            },
            FaultEvent {
                at: SimTime::from_nanos(10_000_000),
                duration: Some(SimDuration::from_millis(25)),
                kind: FaultKind::Jitter {
                    src: R2,
                    dst: CLIENT,
                    delay: SimDuration::from_micros(40),
                    jitter: SimDuration::from_micros(120),
                },
            },
        ],
    }
    .apply(&mut eng);

    let ops_ok = Rc::new(RefCell::new(0usize));
    let ops_failed = Rc::new(RefCell::new(0u32));
    for k in 0..ops {
        let retry = retry.clone();
        let ops_ok = ops_ok.clone();
        let ops_failed = ops_failed.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 100_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry.gwrite(
                w,
                eng,
                ((k % SLOTS) * 256) as u64,
                &payload(k, 256),
                true,
                Box::new(move |_w, _e, r| match r {
                    Ok(_) => *ops_ok.borrow_mut() += 1,
                    Err(_) => *ops_failed.borrow_mut() += 1,
                }),
            );
        });
    }

    let horizon = 1_000_000 + ops as u64 * 100_000 + 150_000_000;
    eng.run_until(&mut w, SimTime::from_nanos(horizon));
    monitor.stop();
    let now = eng.now();
    w.collect_metrics(now);

    let window_ns = hl_sim::timeseries::DEFAULT_WINDOW.as_nanos();
    let p99_series = w
        .telemetry
        .series
        .quantile_series("op_latency_ns", "layer=supervised", 0.99);
    let (excursion_window, excursion_end_ns) = p99_series
        .iter()
        .find(|(_, p99)| *p99 >= EXCURSION_SLO_NS)
        .map(|(wdw, _)| (*wdw, (*wdw + 1) * window_ns))
        .unwrap_or((0, 0));
    let mark_ns = |name: &str| {
        w.telemetry
            .marks()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.at.as_nanos())
    };
    let slo_fire_ns = mark_ns("slo:fire:supervised-p99");
    let degrading_ns = mark_ns("transition:backend:offloaded->degrading");

    let snapshot_json = w.telemetry.timeseries_json();
    let snapshot_csv = w.telemetry.timeseries_csv();
    let timeline = w.telemetry.timeline("op_latency_ns");
    let degrades = monitor.degrades();
    let promotes = monitor.promotes();
    let flight_dumps = w.telemetry.flight.requested();
    let ops_ok = *ops_ok.borrow();
    let ops_failed = *ops_failed.borrow();
    let report = format!(
        "excursion seed={seed} ops={ops} ok={ops_ok} failed={ops_failed} \
         excursion_window={excursion_window} excursion_end_ns={excursion_end_ns} \
         slo_fire_ns={} degrading_ns={} degrades={degrades} promotes={promotes} \
         slo_fired={} flight_dumps={flight_dumps}",
        slo_fire_ns.map_or(-1, |v| v as i64),
        degrading_ns.map_or(-1, |v| v as i64),
        slo.borrow().fired("supervised-p99"),
    );
    ExcursionOutcome {
        snapshot_json,
        snapshot_csv,
        timeline,
        window_ns,
        excursion_window,
        excursion_end_ns,
        slo_fire_ns,
        degrading_ns,
        degrades,
        promotes,
        flight_dumps,
        ops_ok,
        ops_failed,
        report,
    }
}
