//! Shard-partitioned store frontends.
//!
//! A sharded deployment opens one [`KvDb`] / [`DocStore`] per shard —
//! each backed by its own HyperLoop group with its own log, slots and
//! lock word — and these thin frontends route every operation to the
//! owning shard with the same deterministic [`HashRing`] the client
//! router uses. Cross-shard reads/scans are merges of per-shard state;
//! there are no cross-shard transactions (each key lives entirely
//! within one group, as in the paper's per-group scoping).

use crate::doc::{DocStore, Document};
use crate::kv::KvDb;
use hl_cluster::shard::HashRing;
use hl_cluster::World;
use hl_sim::Engine;
use hyperloop::api::GroupClient;
use hyperloop::{Backpressure, OnDone};

/// A key-value store partitioned over per-shard [`KvDb`] instances.
pub struct ShardedKv<C: GroupClient> {
    ring: HashRing,
    shards: Vec<KvDb<C>>,
}

impl<C: GroupClient + 'static> ShardedKv<C> {
    /// Build from one opened [`KvDb`] per shard (shard id = index).
    pub fn new(shards: Vec<KvDb<C>>) -> Self {
        assert!(!shards.is_empty());
        ShardedKv {
            ring: HashRing::new(shards.len()),
            shards,
        }
    }

    /// Build with an explicit ring (shared with the op router).
    pub fn with_ring(ring: HashRing, shards: Vec<KvDb<C>>) -> Self {
        assert_eq!(ring.n_shards(), shards.len());
        ShardedKv { ring, shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.ring.shard_of(key)
    }

    /// The per-shard store (e.g. for log cursors or replica reads).
    pub fn shard(&self, sid: usize) -> &KvDb<C> {
        &self.shards[sid]
    }

    /// Mutable access to a per-shard store.
    pub fn shard_mut(&mut self, sid: usize) -> &mut KvDb<C> {
        &mut self.shards[sid]
    }

    /// Durable put, routed to the owning shard's replicated log.
    pub fn put(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        value: &[u8],
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let sid = self.ring.shard_of(key);
        self.shards[sid].put(w, eng, key, value, done)
    }

    /// Durable delete, routed to the owning shard.
    pub fn delete(
        &mut self,
        w: &mut World,
        eng: &mut Engine<World>,
        key: &[u8],
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let sid = self.ring.shard_of(key);
        self.shards[sid].delete(w, eng, key, done)
    }

    /// Read from the owning shard's client memtable.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.shards[self.ring.shard_of(key)].get(key)
    }

    /// Eventually-consistent read from replica `replica` of the owning
    /// shard's group.
    pub fn get_at_replica(&self, replica: usize, key: &[u8]) -> Option<Vec<u8>> {
        self.shards[self.ring.shard_of(key)].get_at_replica(replica, key)
    }

    /// Total keys across all shard memtables.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Ordered scan merged across shards: collects each shard's scan
    /// from `from` and returns the `limit` smallest keys overall.
    pub fn scan(&self, from: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for s in &self.shards {
            all.extend(
                s.scan(from, limit)
                    .into_iter()
                    .map(|(k, v)| (k.to_vec(), v.to_vec())),
            );
        }
        all.sort();
        all.truncate(limit);
        all
    }

    /// Entries of shard `sid` whose owner changes under `next_ring` —
    /// the moving set a split or merge must re-home.
    pub fn moving_entries(&self, sid: usize, next_ring: &HashRing) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.shards[sid]
            .scan(b"", usize::MAX)
            .into_iter()
            .filter(|(k, _)| next_ring.shard_of(k) != sid)
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect()
    }

    /// Split shard `parent`: extract its moving entries (the split ring
    /// moves keys only `parent → new`, so no other shard is touched),
    /// write each durably through `new_db`'s replicated log, delete it
    /// from the parent's log, then install the split ring. Returns the
    /// number of re-homed keys.
    ///
    /// A `Backpressure` error leaves the re-home incomplete (the ring is
    /// only installed after every entry lands); size the logs for the
    /// moving set or retry from a snapshot.
    pub fn split_install(
        &mut self,
        parent: usize,
        new_db: KvDb<C>,
        w: &mut World,
        eng: &mut Engine<World>,
    ) -> Result<usize, Backpressure> {
        let next = self.ring.split_shard(parent);
        let moving = self.moving_entries(parent, &next);
        self.shards.push(new_db);
        let new_sid = self.shards.len() - 1;
        for (k, v) in &moving {
            debug_assert_eq!(next.shard_of(k), new_sid, "split moved a key off-target");
            self.shards[new_sid].put(w, eng, k, v, Box::new(|_, _, _| {}))?;
            self.shards[parent].delete(w, eng, k, Box::new(|_, _, _| {}))?;
        }
        self.ring = next;
        Ok(moving.len())
    }

    /// Merge the **last** shard into survivor `into`: re-home every one
    /// of the victim's entries through the survivor's replicated log
    /// (the merge ring relabels all victim points to `into`, so the
    /// survivor is the single destination), install the merged ring and
    /// return the retired [`KvDb`] so its group can be torn down.
    pub fn merge_install(
        &mut self,
        into: usize,
        w: &mut World,
        eng: &mut Engine<World>,
    ) -> Result<(usize, KvDb<C>), Backpressure> {
        let victim = self.shards.len() - 1;
        let next = self.ring.merge_shard(victim, into);
        let moving = self.moving_entries(victim, &next);
        for (k, v) in &moving {
            debug_assert_eq!(next.shard_of(k), into, "merge moved a key off-target");
            self.shards[into].put(w, eng, k, v, Box::new(|_, _, _| {}))?;
        }
        let retired = self.shards.pop().expect("victim shard present");
        self.ring = next;
        Ok((moving.len(), retired))
    }
}

/// A document store partitioned over per-shard [`DocStore`] instances;
/// documents route by id.
pub struct ShardedDoc<C: GroupClient> {
    ring: HashRing,
    shards: Vec<DocStore<C>>,
}

impl<C: GroupClient + 'static> ShardedDoc<C> {
    /// Build from one opened [`DocStore`] per shard (shard id = index).
    pub fn new(shards: Vec<DocStore<C>>) -> Self {
        assert!(!shards.is_empty());
        ShardedDoc {
            ring: HashRing::new(shards.len()),
            shards,
        }
    }

    /// Build with an explicit ring (shared with the op router).
    pub fn with_ring(ring: HashRing, shards: Vec<DocStore<C>>) -> Self {
        assert_eq!(ring.n_shards(), shards.len());
        ShardedDoc { ring, shards }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard owning document `id`.
    pub fn shard_of(&self, id: u64) -> usize {
        self.ring.shard_of_u64(id)
    }

    /// The per-shard store.
    pub fn shard(&self, sid: usize) -> &DocStore<C> {
        &self.shards[sid]
    }

    /// Journaled upsert routed to the owning shard (strong consistency
    /// under that shard's group lock when enabled).
    pub fn upsert(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        doc: &Document,
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let sid = self.shard_of(doc.id);
        self.shards[sid].upsert(w, eng, doc, done)
    }

    /// Read `id` from the owning shard's client copy.
    pub fn read(&self, w: &mut World, id: u64) -> Option<Document> {
        self.shards[self.shard_of(id)].read(w, id)
    }

    /// Read `id` from member `member` of the owning shard's group.
    pub fn read_at(&self, w: &mut World, member: usize, id: u64) -> Option<Document> {
        self.shards[self.shard_of(id)].read_at(w, member, id)
    }

    /// Committed operations summed across shards.
    pub fn committed(&self) -> u64 {
        self.shards.iter().map(|s| s.committed()).sum()
    }

    /// Of the candidate `ids` (document ids are journaled, not
    /// enumerable — the catalog supplies the universe), those owned by
    /// shard `sid` today whose owner changes under `next_ring`.
    pub fn moving_ids(&self, sid: usize, next_ring: &HashRing, ids: &[u64]) -> Vec<u64> {
        ids.iter()
            .copied()
            .filter(|&id| self.shard_of(id) == sid && next_ring.shard_of_u64(id) != sid)
            .collect()
    }

    /// Split shard `parent`: copy each moving document (read from the
    /// parent's client region, journaled upsert into `new_store`), then
    /// install the split ring. The parent's stale copies become
    /// unreachable through routing. Returns the re-homed ids.
    pub fn split_install(
        &mut self,
        parent: usize,
        new_store: DocStore<C>,
        ids: &[u64],
        w: &mut World,
        eng: &mut Engine<World>,
    ) -> Result<Vec<u64>, Backpressure> {
        let next = self.ring.split_shard(parent);
        let moving = self.moving_ids(parent, &next, ids);
        self.shards.push(new_store);
        let new_sid = self.shards.len() - 1;
        for &id in &moving {
            debug_assert_eq!(
                next.shard_of_u64(id),
                new_sid,
                "split moved a doc off-target"
            );
            if let Some(doc) = self.shards[parent].read(w, id) {
                self.shards[new_sid].upsert(w, eng, &doc, Box::new(|_, _, _| {}))?;
            }
        }
        self.ring = next;
        Ok(moving)
    }

    /// Merge the **last** shard into survivor `into`: copy each of the
    /// victim's documents into the survivor (journaled upsert), install
    /// the merged ring and return the retired [`DocStore`] for group
    /// teardown.
    pub fn merge_install(
        &mut self,
        into: usize,
        ids: &[u64],
        w: &mut World,
        eng: &mut Engine<World>,
    ) -> Result<(Vec<u64>, DocStore<C>), Backpressure> {
        let victim = self.shards.len() - 1;
        let next = self.ring.merge_shard(victim, into);
        let moving = self.moving_ids(victim, &next, ids);
        for &id in &moving {
            debug_assert_eq!(next.shard_of_u64(id), into, "merge moved a doc off-target");
            if let Some(doc) = self.shards[victim].read(w, id) {
                self.shards[into].upsert(w, eng, &doc, Box::new(|_, _, _| {}))?;
            }
        }
        let retired = self.shards.pop().expect("victim shard present");
        self.ring = next;
        Ok((moving, retired))
    }
}
