//! Threaded shard execution: run disjoint shards' event loops on OS
//! threads without giving up determinism.
//!
//! The repo-wide contract is that one simulated world is strictly
//! single-threaded — every host, NIC and engine inside a `World` shares
//! one event loop, and determinism falls out of the total order on
//! `(time, seq)` plus seeded RNG streams. Threads therefore cannot go
//! *inside* a world. They can go *between* worlds: a sharded campaign
//! whose groups are placed disjointly ([`ShardPlan::is_disjoint`]
//! proves no host, NIC, CPU or egress FIFO is shared) decomposes into
//! one world per shard, and those worlds exchange nothing at all.
//!
//! [`ShardExecutor`] is that decomposition's runtime: each shard id is
//! mapped to a job closure that builds the shard's own `World` +
//! `Engine`, runs its event loop to completion, and reduces the outcome
//! to plain `Send` data (strings, byte vectors, counters — never `Rc`
//! simulation state). Jobs are claimed from a shared atomic counter so
//! a slow shard never stalls a static partition, and results are merged
//! by shard index, so the output is byte-identical whatever the thread
//! count or the OS schedule. `threads == 1` degenerates to a plain
//! sequential loop on the caller's thread — the baseline the
//! byte-identity suites compare against.
//!
//! Why determinism survives threading, in one paragraph: a shard job's
//! result is a pure function of `(shard id, job closure)` — the closure
//! seeds its world from data it owns, the world never reads the wall
//! clock or OS entropy (enforced by `hl-analysis`), and no two jobs
//! share mutable state. Thread scheduling can only choose *which worker
//! executes which shard and when*, which affects neither any job's
//! result nor where it lands in the output (slot `sid`). The merge then
//! reads the slots in index order. See DESIGN.md §16.
//!
//! [`ShardPlan::is_disjoint`]: crate::shard::ShardPlan::is_disjoint

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs per-shard jobs across a fixed-size pool of OS threads and
/// merges their results in shard order.
///
/// See the module docs for the determinism argument. The executor holds
/// no threads between runs — each [`ShardExecutor::run`] call spawns a
/// scoped pool and joins it before returning, so a panicking shard job
/// propagates to the caller instead of poisoning a long-lived pool.
#[derive(Debug, Clone, Copy)]
pub struct ShardExecutor {
    threads: usize,
}

impl ShardExecutor {
    /// An executor that fans shards over `threads` OS threads (clamped
    /// to at least 1; also clamped to the shard count per run).
    pub fn new(threads: usize) -> Self {
        ShardExecutor {
            threads: threads.max(1),
        }
    }

    /// The sequential baseline: everything on the caller's thread.
    pub fn sequential() -> Self {
        ShardExecutor { threads: 1 }
    }

    /// An executor sized to the host (`available_parallelism`, or 1
    /// when the host won't say).
    pub fn host_sized() -> Self {
        ShardExecutor::new(host_parallelism())
    }

    /// Configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `job` for every shard id in `0..n_shards`, returning the
    /// results indexed by shard id.
    ///
    /// `job` must be a pure function of the shard id (build the shard's
    /// world inside the closure; return only `Send` data). With more
    /// than one thread, workers claim shard ids from a shared counter
    /// and each result is moved into its own slot, so the returned
    /// vector is byte-identical to the `threads == 1` run.
    pub fn run<R, F>(&self, n_shards: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let threads = self.threads.min(n_shards.max(1));
        if threads <= 1 {
            return (0..n_shards).map(job).collect();
        }

        // The claim counter lives alone on its cache line so worker
        // fetch_adds never false-share with each other's result
        // batches.
        #[repr(align(64))]
        struct PaddedCounter(AtomicUsize);
        let next = PaddedCounter(AtomicUsize::new(0));
        let mut out: Vec<Option<R>> = (0..n_shards).map(|_| None).collect();
        // Threads never enter a simulated world here: each job owns a
        // whole disjoint shard world, and results merge by shard index,
        // so the OS schedule cannot reach any simulated outcome (see
        // module docs).
        // hl-lint: allow(thread-spawn)
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let sid = next.0.fetch_add(1, Ordering::Relaxed);
                            if sid >= n_shards {
                                break;
                            }
                            mine.push((sid, job(sid)));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                for (sid, r) in h.join().expect("shard worker panicked") {
                    debug_assert!(out[sid].is_none(), "shard slot claimed twice");
                    out[sid] = Some(r);
                }
            }
        });
        out.into_iter()
            .map(|r| r.expect("every shard id was claimed"))
            .collect()
    }
}

/// The host's available parallelism (1 when unknown). Callers use this
/// to size executors and to annotate benchmark artifacts with how many
/// cores the numbers were taken on.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterBuilder;
    use hl_sim::SimTime;

    /// A miniature per-shard world: seed by shard id, run the event
    /// loop, reduce to a deterministic string.
    fn shard_job(sid: usize) -> String {
        let (mut w, mut eng) = ClusterBuilder::new(2)
            .arena_size(1 << 16)
            .seed(0xC0FFEE ^ sid as u64)
            .build();
        eng.run_until(&mut w, SimTime::from_nanos(1_000_000));
        format!(
            "sid={} events={} end_ns={}",
            sid,
            eng.events_executed(),
            eng.now().as_nanos()
        )
    }

    #[test]
    fn results_come_back_in_shard_order() {
        let got = ShardExecutor::new(4).run(8, |sid| sid * 10);
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn threaded_worlds_match_sequential_byte_for_byte() {
        let seq = ShardExecutor::sequential().run(8, shard_job);
        // More workers than the host has cores is fine — claim order
        // just gets noisier, which is exactly what must not show.
        let par = ShardExecutor::new(8).run(8, shard_job);
        assert_eq!(seq, par);
    }

    #[test]
    fn thread_count_clamps_to_shard_count() {
        let got = ShardExecutor::new(64).run(2, |sid| sid);
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn zero_shards_is_empty() {
        let got: Vec<usize> = ShardExecutor::new(4).run(0, |sid| sid);
        assert!(got.is_empty());
    }
}
