//! Gray-failure health monitoring and the degradation state machine.
//!
//! Fail-stop faults surface as error CQEs or missed heartbeats and are
//! handled by [`crate::recovery`]. *Gray* faults — a jittery or lossy
//! link, a rate-limited or straggling NIC — leave the chain nominally
//! alive but slow, which offloaded WQE chains cannot route around: the
//! NICs keep executing, just badly. The countermeasure is a control
//! loop that *scores* chain health from cheap end-to-end signals and
//! drives the backend both ways:
//!
//! * **degrade** — after `degrade_after` consecutive sick evaluations,
//!   fall back to the CPU-driven Naïve chain over the same members
//!   (via [`crate::recovery::degrade_to_naive`]), swapped into the
//!   supervising [`RetryClient`] so in-flight operations simply
//!   re-issue on the fallback;
//! * **re-promote** — after `promote_after` consecutive healthy
//!   evaluations *and* a minimum degraded dwell (hysteresis, so a
//!   flapping link cannot thrash the backend), rebuild a fresh
//!   offloaded chain and cut over **live**: the bulk of the replica
//!   seed streams while the Naïve chain keeps serving, and only the
//!   final delta copy runs under a brief pause ([`live_cutover`]).
//!
//! The same cutover machinery implements crash-rejoin under live
//! traffic ([`rejoin_member`]): a healed host is caught up with
//! streaming [`crate::recovery::catch_up`] copies while the serving
//! chain keeps ACKing client operations — no stop-the-world.
//!
//! The health score is a weighted sum of *windowed deltas* (this
//! evaluation period only) of per-member NIC counters (retransmits,
//! ACK timeouts, error CQEs) and the supervising client's
//! [`RetryStats`] (attempt timeouts, re-issues, exhausted deadlines) —
//! all signals the client can observe without instrumenting the sick
//! middle of the chain.

use crate::deadline::{Backend, RetryClient, RetryStats};
use crate::group::{GroupBuilder, GroupConfig, GroupRef};
use crate::naive::Mode;
use crate::recovery::{catch_up, degrade_to_naive, OnRebuilt};
use crate::slo::SloEngine;
use crate::HyperLoopClient;
use hl_cluster::World;
use hl_fabric::HostId;
use hl_rnic::Access;
use hl_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Health-loop knobs.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Evaluation period.
    pub period: SimDuration,
    /// A period scoring at or above this is *sick*.
    pub degrade_score: u64,
    /// A period scoring at or below this is *healthy* (the gap to
    /// `degrade_score` is the hysteresis band).
    pub healthy_score: u64,
    /// Consecutive sick evaluations before degrading.
    pub degrade_after: u32,
    /// Consecutive healthy evaluations before re-promoting.
    pub promote_after: u32,
    /// Minimum time spent degraded before a re-promotion may start.
    pub min_degraded_dwell: SimDuration,
    /// Ring slots for rebuilt offloaded chains.
    pub ring_slots: u32,
    /// Replica scheduling mode of the degraded (Naïve) chain.
    pub naive_mode: Mode,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            period: SimDuration::from_micros(200),
            degrade_score: 20,
            healthy_score: 2,
            degrade_after: 3,
            promote_after: 5,
            min_degraded_dwell: SimDuration::from_millis(2),
            ring_slots: 64,
            naive_mode: Mode::Event,
        }
    }
}

/// Where the monitored group currently is in the degradation state
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// The offloaded chain is serving.
    Offloaded,
    /// Degradation in progress (Naïve chain being built and seeded).
    Degrading,
    /// The Naïve fallback is serving.
    Degraded,
    /// Re-promotion in progress (live cutover running).
    Promoting,
}

impl HealthState {
    fn name(self) -> &'static str {
        match self {
            HealthState::Offloaded => "offloaded",
            HealthState::Degrading => "degrading",
            HealthState::Degraded => "degraded",
            HealthState::Promoting => "promoting",
        }
    }
}

// Signal weights: an error CQE or an end-to-end attempt timeout is far
// stronger evidence than a single retransmit.
const W_RETRANSMIT: u64 = 1;
const W_TIMEOUT: u64 = 20;
const W_ERROR_CQE: u64 = 50;
const W_ATTEMPT_TIMEOUT: u64 = 25;
const W_REISSUE: u64 = 5;
const W_DEADLINE_EXCEEDED: u64 = 100;

struct MonitorInner {
    cfg: HealthConfig,
    retry: RetryClient,
    /// The current (or, while degraded, the last) offloaded group —
    /// the config template for re-promotion rebuilds.
    group: GroupRef,
    hosts: Vec<HostId>,
    client_host: HostId,
    state: HealthState,
    sick: u32,
    healthy: u32,
    degraded_at: SimTime,
    base_nic: Vec<(u64, u64, u64)>,
    base_stats: RetryStats,
    last_score: u64,
    degrades: u64,
    promotes: u64,
    stopped: bool,
    /// Optional SLO engine evaluated each period; a firing alert is a
    /// structured *sick* input beside the counter-delta score.
    slo: Option<Rc<RefCell<SloEngine>>>,
}

/// The periodic health evaluator driving degrade / re-promote.
///
/// Cloning shares the monitor state.
#[derive(Clone)]
pub struct HealthMonitor {
    inner: Rc<RefCell<MonitorInner>>,
}

impl HealthMonitor {
    /// Start monitoring `retry` (currently serving the offloaded
    /// `group`). The first evaluation runs one period from now.
    pub fn start(
        retry: RetryClient,
        group: GroupRef,
        cfg: HealthConfig,
        w: &mut World,
        eng: &mut Engine<World>,
    ) -> HealthMonitor {
        let (client_host, mut hosts) = {
            let g = group.borrow();
            (g.cfg.client, vec![g.cfg.client])
        };
        hosts.extend(group.borrow().cfg.replicas.iter().copied());
        let base_nic = hosts
            .iter()
            .map(|&h| {
                let c = w.host(h).nic.counters();
                (c.retransmits, c.timeouts, c.error_cqes)
            })
            .collect();
        let base_stats = retry.stats();
        let inner = Rc::new(RefCell::new(MonitorInner {
            cfg,
            retry,
            group,
            hosts,
            client_host,
            state: HealthState::Offloaded,
            sick: 0,
            healthy: 0,
            degraded_at: SimTime::ZERO,
            base_nic,
            base_stats,
            last_score: 0,
            degrades: 0,
            promotes: 0,
            stopped: false,
            slo: None,
        }));
        let period = inner.borrow().cfg.period;
        let m = inner.clone();
        eng.schedule(period, move |w: &mut World, eng| tick(m, w, eng));
        HealthMonitor { inner }
    }

    /// Stop evaluating (any in-flight transition still completes).
    pub fn stop(&self) {
        self.inner.borrow_mut().stopped = true;
    }

    /// Attach an [`SloEngine`]: every evaluation period the engine runs
    /// first, and [`SloEngine::any_firing`] then counts as a sick
    /// signal — while offloaded a firing alert accrues toward the
    /// degrade threshold even when the counter score looks clean, and
    /// while degraded it blocks re-promotion. Because degrading takes
    /// `degrade_after` consecutive sick periods, the alert's fire mark
    /// always precedes the `Degrading` transition it predicts.
    pub fn attach_slo(&self, slo: Rc<RefCell<SloEngine>>) {
        self.inner.borrow_mut().slo = Some(slo);
    }

    /// Current state-machine position.
    pub fn state(&self) -> HealthState {
        self.inner.borrow().state
    }

    /// The most recent period score.
    pub fn last_score(&self) -> u64 {
        self.inner.borrow().last_score
    }

    /// Completed degradations.
    pub fn degrades(&self) -> u64 {
        self.inner.borrow().degrades
    }

    /// Completed re-promotions.
    pub fn promotes(&self) -> u64 {
        self.inner.borrow().promotes
    }
}

fn sample_score(m: &Rc<RefCell<MonitorInner>>, w: &mut World) -> u64 {
    let hosts = m.borrow().hosts.clone();
    let nic_now: Vec<(u64, u64, u64)> = hosts
        .iter()
        .map(|&h| {
            let c = w.host(h).nic.counters();
            (c.retransmits, c.timeouts, c.error_cqes)
        })
        .collect();
    let mut mm = m.borrow_mut();
    let mut score = 0u64;
    for (now, base) in nic_now.iter().zip(mm.base_nic.iter()) {
        score += W_RETRANSMIT * now.0.saturating_sub(base.0)
            + W_TIMEOUT * now.1.saturating_sub(base.1)
            + W_ERROR_CQE * now.2.saturating_sub(base.2);
    }
    let stats = mm.retry.stats();
    let base = mm.base_stats;
    score += W_ATTEMPT_TIMEOUT * stats.attempt_timeouts.saturating_sub(base.attempt_timeouts)
        + W_REISSUE * stats.reissues.saturating_sub(base.reissues)
        + W_DEADLINE_EXCEEDED
            * stats
                .deadline_exceeded
                .saturating_sub(base.deadline_exceeded);
    mm.base_nic = nic_now;
    mm.base_stats = stats;
    mm.last_score = score;
    score
}

fn tick(m: Rc<RefCell<MonitorInner>>, w: &mut World, eng: &mut Engine<World>) {
    if m.borrow().stopped {
        return;
    }
    let score = sample_score(&m, w);
    if w.telemetry.enabled() {
        let now = eng.now();
        w.telemetry
            .metrics
            .gauge_set("health_score", "layer=health", score as f64);
        w.telemetry
            .series
            .gauge_sample(now, "health_score", "layer=health", score as f64);
    }
    // Evaluate attached SLO rules *before* the state decision, so a
    // firing alert's mark precedes any transition it contributes to.
    let slo_alert = {
        let slo = m.borrow().slo.clone();
        match slo {
            Some(s) => s.borrow_mut().eval(eng.now(), &mut w.telemetry),
            None => false,
        }
    };

    enum Action {
        None,
        Degrade,
        Promote,
    }
    let action = {
        let mut mm = m.borrow_mut();
        match mm.state {
            HealthState::Offloaded => {
                if score >= mm.cfg.degrade_score || slo_alert {
                    mm.sick += 1;
                    mm.healthy = 0;
                    if mm.sick >= mm.cfg.degrade_after {
                        Action::Degrade
                    } else {
                        Action::None
                    }
                } else {
                    mm.sick = 0;
                    Action::None
                }
            }
            HealthState::Degraded => {
                if score <= mm.cfg.healthy_score && !slo_alert {
                    mm.healthy += 1;
                    let dwelt = eng.now().duration_since(mm.degraded_at);
                    if mm.healthy >= mm.cfg.promote_after && dwelt >= mm.cfg.min_degraded_dwell {
                        Action::Promote
                    } else {
                        Action::None
                    }
                } else {
                    mm.healthy = 0;
                    Action::None
                }
            }
            // A transition is already in flight; let it land.
            HealthState::Degrading | HealthState::Promoting => Action::None,
        }
    };
    match action {
        Action::Degrade => start_degrade(&m, w, eng),
        Action::Promote => start_promote(&m, w, eng),
        Action::None => {}
    }
    let period = m.borrow().cfg.period;
    eng.schedule(period, move |w: &mut World, eng| tick(m, w, eng));
}

fn transition_to(
    m: &Rc<RefCell<MonitorInner>>,
    w: &mut World,
    eng: &mut Engine<World>,
    to: HealthState,
) {
    let (from, host) = {
        let mut mm = m.borrow_mut();
        let from = mm.state;
        mm.state = to;
        (from, mm.client_host.0)
    };
    let now = eng.now();
    w.telemetry
        .transition(now, "backend", from.name(), to.name(), host);
}

fn start_degrade(m: &Rc<RefCell<MonitorInner>>, w: &mut World, eng: &mut Engine<World>) {
    transition_to(m, w, eng, HealthState::Degrading);
    let (group, mode, retry) = {
        let mm = m.borrow();
        (mm.group.clone(), mm.cfg.naive_mode, mm.retry.clone())
    };
    let m = m.clone();
    degrade_to_naive(
        &group,
        w,
        eng,
        mode,
        Box::new(move |w, eng, naive| {
            retry.swap_naive(naive);
            {
                let mut mm = m.borrow_mut();
                mm.degraded_at = eng.now();
                mm.degrades += 1;
                mm.sick = 0;
                mm.healthy = 0;
            }
            transition_to(&m, w, eng, HealthState::Degraded);
            if w.telemetry.enabled() {
                w.telemetry
                    .metrics
                    .counter_add("health_degrades", "layer=health", 1);
            }
        }),
    );
}

fn start_promote(m: &Rc<RefCell<MonitorInner>>, w: &mut World, eng: &mut Engine<World>) {
    transition_to(m, w, eng, HealthState::Promoting);
    let (retry, cfg) = {
        let mm = m.borrow();
        let g = mm.group.borrow();
        (
            mm.retry.clone(),
            GroupConfig {
                client: g.cfg.client,
                replicas: g.cfg.replicas.clone(),
                rep_bytes: g.cfg.rep_bytes,
                ring_slots: mm.cfg.ring_slots,
                replenish_period: g.cfg.replenish_period,
                transport_timeout: g.cfg.transport_timeout,
            },
        )
    };
    let m = m.clone();
    live_cutover(
        &retry,
        cfg,
        w,
        eng,
        Box::new(move |w, eng, client| {
            {
                let mut mm = m.borrow_mut();
                mm.group = client.group().clone();
                mm.promotes += 1;
                mm.sick = 0;
                mm.healthy = 0;
            }
            transition_to(&m, w, eng, HealthState::Offloaded);
            if w.telemetry.enabled() {
                w.telemetry
                    .metrics
                    .counter_add("health_promotes", "layer=health", 1);
            }
        }),
    );
}

// ---------------------------------------------------------------------------
// Live cutover
// ---------------------------------------------------------------------------

/// How long the drain phase polls for outstanding supervised ops
/// before proceeding anyway (under loss, in-flight ops may never reach
/// zero within any bound; re-issue on the new chain covers them).
pub(crate) const DRAIN_POLLS: u32 = 20;
const DRAIN_POLL_PERIOD: SimDuration = SimDuration::from_micros(100);

/// Cut the supervised group over to a freshly built offloaded chain
/// **without stopping client traffic**:
///
/// 1. start dirty-range logging at the [`RetryClient`];
/// 2. build the new chain and stream the bulk seed to every new
///    replica with chunked RDMA READs while the old backend keeps
///    serving;
/// 3. pause the old backend, drain in-flight ops (bounded — unACKed
///    survivors re-issue on the new chain and their target ranges are
///    in the dirty log);
/// 4. copy only the dirty bounding range as a delta;
/// 5. swap the new chain's client into the `RetryClient` and hand it
///    to `done`.
///
/// The source of truth throughout is the *client's* copy of the
/// replicated region: both backends apply every mutation locally at
/// issue time, so a range written mid-cutover is (a) already current
/// in the source region and (b) recorded in the dirty log.
pub fn live_cutover(
    retry: &RetryClient,
    cfg: GroupConfig,
    w: &mut World,
    eng: &mut Engine<World>,
    done: OnRebuilt,
) {
    let backend = retry.backend();
    let (src_host, src_rep) = match &backend {
        Backend::Hyper(c) => {
            let g = c.group().borrow();
            (g.cfg.client, g.client_rep.clone())
        }
        Backend::Naive(n) => {
            let g = n.group().borrow();
            (g.cfg.client, g.client_rep.clone())
        }
    };
    assert_eq!(src_host, cfg.client, "cutover keeps the coordinator");
    let rep_bytes = cfg.rep_bytes;
    retry.begin_dirty_log();
    let now = eng.now();
    w.telemetry.mark(now, "cutover:start", src_host.0);

    let new_group = GroupBuilder::new(cfg).build(w);

    // Local seed of the new chain's client region.
    let new_rep_addr = new_group.borrow().client_rep.addr;
    let bytes = w
        .host(src_host)
        .mem
        .read_vec(src_rep.addr, rep_bytes as usize)
        .unwrap();
    w.host(src_host).mem.write(new_rep_addr, &bytes).unwrap();

    let src_mr = w
        .host(src_host)
        .nic
        .register_mr(src_rep.addr, src_rep.len, Access::REMOTE_READ);
    let targets: Vec<(HostId, u64)> = {
        let g = new_group.borrow();
        (0..g.n_replicas())
            .map(|i| (g.cfg.replicas[i], g.replica_rep[i].addr))
            .collect()
    };

    // Phase 2: bulk streaming seed, old backend still serving.
    let total = targets.len();
    let finished = Rc::new(RefCell::new(0usize));
    let done_cell = Rc::new(RefCell::new(Some(done)));
    let retry = retry.clone();
    for (th, taddr) in targets.clone() {
        let finished = finished.clone();
        let done_cell = done_cell.clone();
        let retry = retry.clone();
        let backend = backend.clone();
        let new_group = new_group.clone();
        let targets = targets.clone();
        let src_rkey = src_mr.rkey;
        catch_up(
            w,
            eng,
            src_host,
            src_mr.rkey,
            src_rep.addr,
            th,
            taddr,
            rep_bytes,
            64 * 1024,
            Box::new(move |w, eng| {
                *finished.borrow_mut() += 1;
                if *finished.borrow() < total {
                    return;
                }
                // Phase 3: pause the old backend; new issues see
                // Backpressure and back off until the swap.
                match &backend {
                    Backend::Hyper(c) => c.group().borrow_mut().paused = true,
                    Backend::Naive(n) => n.group().borrow_mut().paused = true,
                }
                let now = eng.now();
                w.telemetry.mark(now, "cutover:pause", src_host.0);
                let retry2 = retry.clone();
                drain_then(
                    retry.clone(),
                    DRAIN_POLLS,
                    eng,
                    Box::new(move |w, eng| {
                        delta_and_swap(
                            retry2,
                            new_group,
                            targets,
                            src_host,
                            src_rkey,
                            src_rep.addr,
                            new_rep_addr,
                            done_cell,
                            w,
                            eng,
                        );
                    }),
                );
            }),
        );
    }
}

pub(crate) type OnDrained = Box<dyn FnOnce(&mut World, &mut Engine<World>)>;

/// Poll until no supervised ops are outstanding, or the poll budget is
/// spent — then run `then`. Shared with the migration driver, whose
/// drain phase is the same bounded wait.
pub(crate) fn drain_then(
    retry: RetryClient,
    polls_left: u32,
    eng: &mut Engine<World>,
    then: OnDrained,
) {
    eng.schedule(DRAIN_POLL_PERIOD, move |w: &mut World, eng| {
        if retry.outstanding() == 0 || polls_left == 0 {
            then(w, eng);
        } else {
            drain_then(retry, polls_left - 1, eng, then);
        }
    });
}

#[allow(clippy::too_many_arguments)]
fn delta_and_swap(
    retry: RetryClient,
    new_group: GroupRef,
    targets: Vec<(HostId, u64)>,
    src_host: HostId,
    src_rkey: u32,
    src_addr: u64,
    new_rep_addr: u64,
    done_cell: Rc<RefCell<Option<OnRebuilt>>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let dirty = retry.take_dirty_log();
    let finish = move |w: &mut World, eng: &mut Engine<World>| {
        crate::replica::start_replenishers(&new_group, w, eng);
        let client = HyperLoopClient::new(new_group.clone(), w);
        retry.swap(client.clone());
        let now = eng.now();
        w.telemetry.mark(now, "cutover:swap", src_host.0);
        if let Some(done) = done_cell.borrow_mut().take() {
            done(w, eng, client);
        }
    };
    if dirty.is_empty() {
        finish(w, eng);
        return;
    }
    // Phase 4: delta — the bounding range of everything dirtied since
    // the log was armed (bulk copies may have raced any of it).
    let lo = dirty.iter().map(|&(o, _)| o).min().unwrap();
    let hi = dirty.iter().map(|&(o, l)| o + l as u64).max().unwrap();
    let len = hi - lo;
    if w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("cutover_delta_bytes", "layer=health", len);
    }
    let bytes = w
        .host(src_host)
        .mem
        .read_vec(src_addr + lo, len as usize)
        .unwrap();
    w.host(src_host)
        .mem
        .write(new_rep_addr + lo, &bytes)
        .unwrap();

    let total = targets.len();
    let finished = Rc::new(RefCell::new(0usize));
    let finish_cell = Rc::new(RefCell::new(Some(finish)));
    for (th, taddr) in targets {
        let finished = finished.clone();
        let finish_cell = finish_cell.clone();
        catch_up(
            w,
            eng,
            src_host,
            src_rkey,
            src_addr + lo,
            th,
            taddr + lo,
            len,
            64 * 1024,
            Box::new(move |w, eng| {
                *finished.borrow_mut() += 1;
                if *finished.borrow() == total {
                    if let Some(finish) = finish_cell.borrow_mut().take() {
                        finish(w, eng);
                    }
                }
            }),
        );
    }
}

// ---------------------------------------------------------------------------
// Crash-rejoin under live traffic
// ---------------------------------------------------------------------------

/// Re-admit a healed host into the supervised group without stopping
/// client traffic: a fresh offloaded chain is built over the current
/// membership *plus* `new_member`, seeded with streaming catch-up while
/// the serving chain keeps ACKing, and swapped in via [`live_cutover`].
pub fn rejoin_member(
    retry: &RetryClient,
    new_member: HostId,
    ring_slots: u32,
    w: &mut World,
    eng: &mut Engine<World>,
    done: OnRebuilt,
) {
    let backend = retry.backend();
    let mut cfg = match &backend {
        Backend::Hyper(c) => {
            let g = c.group().borrow();
            GroupConfig {
                client: g.cfg.client,
                replicas: g.cfg.replicas.clone(),
                rep_bytes: g.cfg.rep_bytes,
                ring_slots,
                replenish_period: g.cfg.replenish_period,
                transport_timeout: g.cfg.transport_timeout,
            }
        }
        Backend::Naive(n) => {
            let g = n.group().borrow();
            GroupConfig {
                client: g.cfg.client,
                replicas: g.cfg.replicas.clone(),
                rep_bytes: g.cfg.rep_bytes,
                ring_slots,
                ..Default::default()
            }
        }
    };
    assert!(
        !cfg.replicas.contains(&new_member) && cfg.client != new_member,
        "rejoining host must not already be a member"
    );
    cfg.replicas.push(new_member);
    let now = eng.now();
    w.telemetry.mark(now, "rejoin:start", new_member.0);
    if w.telemetry.enabled() {
        w.telemetry
            .metrics
            .counter_add("health_rejoins", "layer=health", 1);
    }
    live_cutover(retry, cfg, w, eng, done);
}
