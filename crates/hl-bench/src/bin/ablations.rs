//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **WAIT-chaining vs CPU forwarding** — the same chain with NIC
//!    auto-forwarding vs an *uncontended* CPU forwarder (no stress):
//!    isolates the mechanism cost from the scheduling tail.
//! 2. **Interleaved gFLUSH** — durability's price on the critical path.
//! 3. **Ring depth** — throughput as pre-posted slot rings shrink
//!    (replenishment becomes the bottleneck; backpressure onset).
//! 4. **Metadata/group size** — per-hop overhead of the remote-WQE
//!    metadata as the chain grows, on an idle cluster.
//!
//! Usage: `ablations [--ops N]`

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_bench::table::{us, Table};
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_rnic::{flags, Access, CqeKind, Opcode, RecvWqe, Wqe, WQE_SIZE};
use hl_sim::{Engine, Histogram, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Fixed replication (no remote WQE manipulation): every slot's
/// descriptors are fully pre-set at post time — offset, length and
/// destination are baked in, and the client merely sends a 4-byte
/// trigger. This is what a WAIT-only design could do (paper §4.1:
/// "NICs can only forward a fixed size buffer of data at a pre-defined
/// memory location, which we call fixed replication").
fn run_fixed_replication(size: usize, ops: u32) -> hl_sim::Summary {
    const SLOTS: u64 = 4096;
    let (mut w, mut eng) = ClusterBuilder::new(3)
        .arena_size((SLOTS as usize * size + (4 << 20)).next_power_of_two())
        .seed(3)
        .build();
    // Regions: per host a data region of SLOTS*size plus rings.
    let mut rep = Vec::new();
    let mut rkeys = Vec::new();
    for h in 0..3 {
        let r = w
            .host(HostId(h))
            .layout
            .alloc("rep", SLOTS * size as u64, 64);
        let mr = w
            .host(HostId(h))
            .nic
            .register_mr(r.addr, r.len, Access::REMOTE_WRITE);
        rep.push(r);
        rkeys.push(mr.rkey);
    }
    // Chain QPs: 0->1, 1->2, 2->0 (ack).
    let mk_qp = |w: &mut World, h: usize, name: &str, cap: u32| {
        let sq = w
            .host(HostId(h))
            .layout
            .alloc(name, cap as u64 * WQE_SIZE, 64);
        let scq = w.hosts[h].nic.create_cq();
        let rcq = w.hosts[h].nic.create_cq();
        let qp = w.hosts[h].nic.create_qp(scq, rcq, sq.addr, cap);
        (qp, scq, rcq)
    };
    let (qp0_out, _s0, _r0) = mk_qp(&mut w, 0, "out", 2 * SLOTS as u32 + 8);
    let (qp1_in, _s1i, rcq1) = mk_qp(&mut w, 1, "in", 8);
    let (qp1_out, _s1o, _r1o) = mk_qp(&mut w, 1, "fwd", 3 * SLOTS as u32 + 8);
    let (qp2_in, _s2i, rcq2) = mk_qp(&mut w, 2, "in", 8);
    let (qp2_out, _s2o, _r2o) = mk_qp(&mut w, 2, "ack", 2 * SLOTS as u32 + 8);
    let (qp0_ack, _s0a, arcq0) = mk_qp(&mut w, 0, "ackin", 8);
    w.connect_qps(HostId(0), qp0_out, HostId(1), qp1_in);
    w.connect_qps(HostId(1), qp1_out, HostId(2), qp2_in);
    w.connect_qps(HostId(2), qp2_out, HostId(0), qp0_ack);
    let trig = w.host(HostId(0)).layout.alloc("trig", 8, 8);

    // Pre-post ALL slots with fixed descriptors (no replenisher: sized
    // for the whole run).
    for k in 0..SLOTS.min(ops as u64 + 8) {
        // r1: WAIT + fixed WRITE(r1 slot -> r2 slot) + fixed SEND(trigger).
        let wait = Wqe {
            opcode: Opcode::Wait,
            flags: flags::HW_OWNED,
            raddr: Wqe::wait_params(rcq1, 1),
            activate_n: 2,
            wr_id: k,
            ..Default::default()
        };
        w.hosts[1].post_send(qp1_out, wait, false).unwrap();
        let write = Wqe {
            opcode: Opcode::Write,
            len: size as u32,
            laddr: rep[1].at(k % SLOTS * size as u64),
            raddr: rep[2].at(k % SLOTS * size as u64),
            rkey: rkeys[2],
            wr_id: k,
            ..Default::default()
        };
        w.hosts[1].post_send(qp1_out, write, true).unwrap();
        let fwd = Wqe {
            opcode: Opcode::Send,
            len: 4,
            laddr: rep[1].addr,
            wr_id: k,
            ..Default::default()
        };
        w.hosts[1].post_send(qp1_out, fwd, true).unwrap();
        w.hosts[1].post_recv(
            qp1_in,
            RecvWqe {
                wr_id: k,
                scatter: vec![],
            },
        );
        // r2 (tail): WAIT + fixed WRITE_IMM ack.
        let wait2 = Wqe {
            opcode: Opcode::Wait,
            flags: flags::HW_OWNED,
            raddr: Wqe::wait_params(rcq2, 1),
            activate_n: 1,
            wr_id: k,
            ..Default::default()
        };
        w.hosts[2].post_send(qp2_out, wait2, false).unwrap();
        let wimm = Wqe {
            opcode: Opcode::WriteImm,
            len: 0,
            raddr: rep[0].addr,
            rkey: rkeys[0],
            imm: k as u32,
            wr_id: k,
            ..Default::default()
        };
        w.hosts[2].post_send(qp2_out, wimm, true).unwrap();
        w.hosts[2].post_recv(
            qp2_in,
            RecvWqe {
                wr_id: k,
                scatter: vec![],
            },
        );
        w.hosts[0].post_recv(
            qp0_ack,
            RecvWqe {
                wr_id: k,
                scatter: vec![],
            },
        );
    }
    for (h, qp) in [(1usize, qp1_out), (2, qp2_out)] {
        w.ring_doorbell(HostId(h), qp, &mut eng);
    }

    // Driver: sequential fixed-slot writes.
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let issued_at = Rc::new(RefCell::new(
        std::collections::HashMap::<u32, SimTime>::new(),
    ));
    let done = Rc::new(RefCell::new(0u32));
    {
        let hist = hist.clone();
        let issued_at2 = issued_at.clone();
        let done = done.clone();
        w.subscribe_cq_callback(HostId(0), arcq0, move |cqe, w, eng| {
            if cqe.kind != CqeKind::RecvImm {
                return;
            }
            let t0 = issued_at2.borrow_mut().remove(&cqe.imm).unwrap();
            hist.borrow_mut()
                .record(eng.now().duration_since(t0).as_nanos());
            let k = *done.borrow() + 1;
            *done.borrow_mut() = k;
            if k < TOTAL.with(|t| *t.borrow()) {
                issue_fixed(k, w, eng);
            }
        });
    }
    thread_local! {
        static TOTAL: RefCell<u32> = const { RefCell::new(0) };
        static CTX: RefCell<Option<FixedCtx>> = const { RefCell::new(None) };
    }
    #[derive(Clone)]
    struct FixedCtx {
        qp0_out: u32,
        rep0: u64,
        rep1: u64,
        rkey1: u32,
        trig: u64,
        size: usize,
        slots: u64,
        issued_at: Rc<RefCell<std::collections::HashMap<u32, SimTime>>>,
    }
    fn issue_fixed(k: u32, w: &mut World, eng: &mut Engine<World>) {
        let c = CTX.with(|c| c.borrow().clone()).unwrap();
        c.issued_at.borrow_mut().insert(k, eng.now());
        let off = (k as u64 % c.slots) * c.size as u64;
        w.hosts[0]
            .post_send(
                c.qp0_out,
                Wqe {
                    opcode: Opcode::Write,
                    len: c.size as u32,
                    laddr: c.rep0 + off,
                    raddr: c.rep1 + off,
                    rkey: c.rkey1,
                    wr_id: k as u64,
                    ..Default::default()
                },
                false,
            )
            .unwrap();
        w.hosts[0]
            .post_send(
                c.qp0_out,
                Wqe {
                    opcode: Opcode::Send,
                    len: 4,
                    laddr: c.trig,
                    wr_id: k as u64,
                    ..Default::default()
                },
                false,
            )
            .unwrap();
        w.ring_doorbell(HostId(0), c.qp0_out, eng);
    }
    TOTAL.with(|t| *t.borrow_mut() = ops);
    CTX.with(|c| {
        *c.borrow_mut() = Some(FixedCtx {
            qp0_out,
            rep0: rep[0].addr,
            rep1: rep[1].addr,
            rkey1: rkeys[1],
            trig: trig.addr,
            size,
            slots: SLOTS,
            issued_at: issued_at.clone(),
        })
    });
    issue_fixed(0, &mut w, &mut eng);
    let probe = done.clone();
    eng.run_while(&mut w, move |_| *probe.borrow() < ops);
    let s = hist.borrow().summary();
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000);

    // 1. Mechanism cost: NIC chaining vs CPU forwarding without any
    //    co-located load (pinned pollers = the CPU's best case).
    println!("== Ablation 1: forwarding mechanism (no background load, 1KB gWRITE) ==");
    let mut t = Table::new(&["mechanism", "avg", "p99"]);
    for (label, backend) in [
        ("NIC WAIT-chaining", Backend::HyperLoop),
        ("CPU event-driven", Backend::NaiveEvent),
        (
            "CPU polling (dedicated)",
            Backend::NaivePolling { pinned: true },
        ),
    ] {
        let r = run_micro(&MicroCfg {
            backend,
            op: MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
            ops,
            stress_per_host: 0,
            ..Default::default()
        });
        t.row(&[
            label.to_string(),
            format!("{:.1}", r.latency.mean_us()),
            us(r.latency.p99_ns),
        ]);
    }
    t.print();

    // 2. Durability cost: interleaved gFLUSH on/off.
    println!("\n== Ablation 2: interleaved gFLUSH (HyperLoop, no load) ==");
    let mut t = Table::new(&["size", "no-flush avg", "flush avg", "overhead"]);
    for size in [128usize, 1024, 8192] {
        let base = run_micro(&MicroCfg {
            backend: Backend::HyperLoop,
            op: MicroOp::GWrite { size, flush: false },
            ops,
            stress_per_host: 0,
            ..Default::default()
        });
        let fl = run_micro(&MicroCfg {
            backend: Backend::HyperLoop,
            op: MicroOp::GWrite { size, flush: true },
            ops,
            stress_per_host: 0,
            ..Default::default()
        });
        t.row(&[
            size.to_string(),
            format!("{:.1}", base.latency.mean_us()),
            format!("{:.1}", fl.latency.mean_us()),
            format!(
                "+{:.1}us",
                (fl.latency.mean_ns - base.latency.mean_ns) / 1e3
            ),
        ]);
    }
    t.print();
    println!("(each hop adds a fenced 0-byte-READ round trip before forwarding)");

    // 3. Ring depth: throughput vs pre-posted slots.
    println!("\n== Ablation 3: pre-posted ring depth (gWRITE 1KB, pipeline 16) ==");
    let mut t = Table::new(&["ring-slots", "kops", "note"]);
    for slots in [8u32, 16, 32, 64, 256, 1024] {
        let r = run_micro(&MicroCfg {
            backend: Backend::HyperLoop,
            op: MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
            ops: ops.min(4000),
            pipeline: 16,
            ring_slots: slots,
            stress_per_host: 0,
            ..Default::default()
        });
        let note = if slots <= 16 { "replenisher-bound" } else { "" };
        t.row(&[
            slots.to_string(),
            format!("{:.0}", r.kops),
            note.to_string(),
        ]);
    }
    t.print();

    // 4. Group size on an idle cluster: the pure per-hop cost (wire +
    //    NIC work + 48B/replica metadata).
    println!("\n== Ablation 4: chain length (gWRITE 1KB, no load) ==");
    let mut t = Table::new(&["group", "avg", "p99", "per-extra-hop"]);
    let mut prev: Option<f64> = None;
    for group_size in [3usize, 5, 7, 9] {
        let r = run_micro(&MicroCfg {
            backend: Backend::HyperLoop,
            group_size,
            op: MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
            ops: ops.min(4000),
            stress_per_host: 0,
            ..Default::default()
        });
        let inc = prev.map(|p| (r.latency.mean_ns - p) / 2e3).unwrap_or(0.0);
        t.row(&[
            group_size.to_string(),
            format!("{:.1}", r.latency.mean_us()),
            us(r.latency.p99_ns),
            if prev.is_some() {
                format!("{inc:.1}us")
            } else {
                "-".to_string()
            },
        ]);
        prev = Some(r.latency.mean_ns);
    }
    t.print();
    println!(
        "(latency grows linearly with chain length; the NIC datapath adds ~a wire+NIC hop each)"
    );

    // 5. Fixed replication vs remote WQE manipulation: the flexibility
    //    of rewriting descriptors over the wire costs only the metadata
    //    SEND's bytes.
    println!("\n== Ablation 5: fixed replication vs remote WQE manipulation (group 3, no load) ==");
    let mut t = Table::new(&["size", "fixed avg", "manipulated avg", "overhead"]);
    for size in [128usize, 1024, 8192] {
        let fixed = run_fixed_replication(size, ops.min(3000) as u32);
        let manip = run_micro(&MicroCfg {
            backend: Backend::HyperLoop,
            op: MicroOp::GWrite { size, flush: false },
            ops: ops.min(3000),
            stress_per_host: 0,
            ..Default::default()
        });
        t.row(&[
            size.to_string(),
            format!("{:.1}", fixed.mean_us()),
            format!("{:.1}", manip.latency.mean_us()),
            format!("+{:.1}us", (manip.latency.mean_ns - fixed.mean_ns) / 1e3),
        ]);
    }
    t.print();
    println!("(manipulation adds the ~150B metadata message per hop — generality for ~2% latency;");
    println!(
        " without it, offsets and sizes would be frozen at pre-post time, unusable for a real log)"
    );
}
