//! Completion queues.

use std::collections::VecDeque;

/// Completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeStatus {
    /// Operation completed successfully.
    Ok,
    /// The responder refused the access (bad key, range, or permission).
    RemoteAccess,
    /// The responder had no RECV posted (receiver-not-ready).
    ReceiverNotReady,
    /// The transport retry budget was exhausted (peer dead, partitioned,
    /// or stalled past `retry_cnt` timeouts). The QP is in
    /// [`QpState::Error`](crate::QpState::Error).
    RetryExceeded,
    /// The WQE was flushed without executing because the QP entered the
    /// Error state (ibv `IBV_WC_WR_FLUSH_ERR`).
    FlushedInError,
    /// A local memory access failed while landing a response or running
    /// a loopback operation (ibv `IBV_WC_LOC_PROT_ERR`): the address
    /// fell outside the arena, typically a corrupted descriptor.
    LocalProtection,
}

/// What kind of operation completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqeKind {
    /// A send-queue operation (send/write/read/cas/flush/nop) finished.
    SendOp,
    /// An inbound SEND consumed a RECV.
    Recv,
    /// An inbound WRITE_WITH_IMM consumed a RECV.
    RecvImm,
}

/// A completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// QP the operation belonged to.
    pub qpn: u32,
    /// Caller cookie from the WQE.
    pub wr_id: u64,
    /// Completion kind.
    pub kind: CqeKind,
    /// Status.
    pub status: CqeStatus,
    /// Bytes transferred (payload length).
    pub byte_len: u32,
    /// Immediate data (valid for `RecvImm`).
    pub imm: u32,
    /// Telemetry op id carried from the WQE/packet (0 = untracked).
    pub op: u32,
}

/// A completion queue.
///
/// Tracks a monotonic `produced` counter that WAIT WQEs compare against:
/// a WAIT armed for `count` completions fires when `produced` advances
/// `count` past the previous WAIT's consumption point — exactly the
/// CORE-Direct semantics HyperLoop leans on.
#[derive(Debug, Default)]
pub struct Cq {
    entries: VecDeque<Cqe>,
    /// Total CQEs ever pushed.
    produced: u64,
    /// Completions consumed by WAIT triggers so far.
    wait_consumed: u64,
    /// One-shot event arm (ibv_req_notify_cq semantics).
    armed: bool,
}

impl Cq {
    /// Empty CQ.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push a completion; returns `true` if the queue was armed (the
    /// caller should deliver an event and the arm is cleared).
    pub fn push(&mut self, cqe: Cqe) -> bool {
        self.entries.push_back(cqe);
        self.produced += 1;
        std::mem::take(&mut self.armed)
    }

    /// Poll up to `max` completions (consumer side; does not affect WAIT
    /// accounting, which is by production).
    pub fn poll(&mut self, max: usize) -> Vec<Cqe> {
        let mut out = Vec::new();
        self.poll_into(max, &mut out);
        out
    }

    /// Poll up to `max` completions into a caller-owned buffer, appending
    /// to whatever is already there. Lets hot drain loops reuse one
    /// scratch `Vec` instead of allocating per poll.
    pub fn poll_into(&mut self, max: usize, out: &mut Vec<Cqe>) {
        let n = max.min(self.entries.len());
        out.extend(self.entries.drain(..n));
    }

    /// Arm the one-shot completion event.
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Completions produced over all time.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Would a WAIT for `count` more completions fire right now?
    pub fn wait_satisfied(&self, count: u32) -> bool {
        self.produced >= self.wait_consumed + count as u64
    }

    /// Consume `count` completions on behalf of a fired WAIT.
    pub fn consume_for_wait(&mut self, count: u32) {
        debug_assert!(self.wait_satisfied(count));
        self.wait_consumed += count as u64;
    }

    /// Entries currently available to poll.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cqe(wr_id: u64) -> Cqe {
        Cqe {
            qpn: 1,
            wr_id,
            kind: CqeKind::SendOp,
            status: CqeStatus::Ok,
            byte_len: 0,
            imm: 0,
            op: 0,
        }
    }

    #[test]
    fn poll_drains_fifo() {
        let mut cq = Cq::new();
        cq.push(cqe(1));
        cq.push(cqe(2));
        cq.push(cqe(3));
        let got = cq.poll(2);
        assert_eq!(got.iter().map(|c| c.wr_id).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(cq.depth(), 1);
        assert_eq!(cq.poll(10).len(), 1);
        assert!(cq.poll(10).is_empty());
    }

    #[test]
    fn arm_is_one_shot() {
        let mut cq = Cq::new();
        assert!(!cq.push(cqe(1)));
        cq.arm();
        assert!(cq.push(cqe(2)));
        assert!(!cq.push(cqe(3)));
    }

    #[test]
    fn wait_accounting() {
        let mut cq = Cq::new();
        assert!(!cq.wait_satisfied(1));
        cq.push(cqe(1));
        assert!(cq.wait_satisfied(1));
        assert!(!cq.wait_satisfied(2));
        cq.consume_for_wait(1);
        assert!(!cq.wait_satisfied(1));
        cq.push(cqe(2));
        cq.push(cqe(3));
        assert!(cq.wait_satisfied(2));
        cq.consume_for_wait(2);
        assert!(!cq.wait_satisfied(1));
    }

    #[test]
    fn polling_does_not_affect_wait() {
        let mut cq = Cq::new();
        cq.push(cqe(1));
        cq.poll(1);
        // The completion was produced even though it was polled away.
        assert!(cq.wait_satisfied(1));
    }
}
