//! Smoke tests guarding the experiment harness: every runner completes
//! with miniature parameters and returns sane shapes. (The full-scale
//! runs live in the `fig*` binaries and EXPERIMENTS.md.)

use hl_bench::apps::{
    run_fig11, run_fig12, run_fig2, DocMode, Fig11Cfg, Fig12Cfg, Fig2Cfg, KvBackend,
};
use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_ycsb::Workload;

#[test]
fn micro_runner_covers_all_backends_and_ops() {
    for backend in [
        Backend::HyperLoop,
        Backend::NaiveEvent,
        Backend::NaivePolling { pinned: true },
    ] {
        for op in [
            MicroOp::GWrite {
                size: 512,
                flush: false,
            },
            MicroOp::GWrite {
                size: 512,
                flush: true,
            },
            MicroOp::GMemcpy {
                size: 512,
                flush: true,
            },
            MicroOp::GCas,
        ] {
            let r = run_micro(&MicroCfg {
                backend,
                op,
                ops: 100,
                warmup: 10,
                stress_per_host: 4,
                ring_slots: 64,
                ..Default::default()
            });
            assert_eq!(r.latency.count, 100, "{backend:?} {op:?}");
            assert!(r.latency.mean_ns > 1_000.0);
            assert!(r.kops > 0.0);
            assert!(r.sim_secs > 0.0);
        }
    }
}

#[test]
fn micro_hyperloop_beats_naive_under_stress() {
    let mk = |backend| MicroCfg {
        backend,
        op: MicroOp::GWrite {
            size: 1024,
            flush: false,
        },
        ops: 300,
        warmup: 20,
        stress_per_host: 32,
        ..Default::default()
    };
    let hl = run_micro(&mk(Backend::HyperLoop));
    let nv = run_micro(&mk(Backend::NaiveEvent));
    assert!(
        nv.latency.p99_ns > 20 * hl.latency.p99_ns,
        "naive p99 {} vs hl p99 {}",
        nv.latency.p99_ns,
        hl.latency.p99_ns
    );
}

#[test]
fn fig2_runner_scales_with_sets() {
    let small = run_fig2(&Fig2Cfg {
        sets: 3,
        cores: 8,
        ops_per_set: 30,
        threads_per_set: 4,
        seed: 1,
    });
    let big = run_fig2(&Fig2Cfg {
        sets: 12,
        cores: 8,
        ops_per_set: 30,
        threads_per_set: 4,
        seed: 1,
    });
    assert!(small.writes.count > 0 && big.writes.count > 0);
    assert!(big.server_util >= small.server_util);
    assert!(big.writes.mean_ns > small.writes.mean_ns * 0.8);
}

#[test]
fn fig11_runner_orders_backends() {
    let hl = run_fig11(&Fig11Cfg {
        backend: KvBackend::HyperLoop,
        ops: 150,
        ..Default::default()
    });
    let ev = run_fig11(&Fig11Cfg {
        backend: KvBackend::NaiveEvent,
        ops: 150,
        ..Default::default()
    });
    assert!(hl.count > 0 && ev.count > 0);
    assert!(
        ev.mean_ns > hl.mean_ns,
        "event {} <= hl {}",
        ev.mean_ns,
        hl.mean_ns
    );
}

#[test]
fn fig12_runner_shows_offload_gap() {
    let native = run_fig12(&Fig12Cfg {
        mode: DocMode::Native,
        workload: Workload::A,
        sets: 4,
        ops: 120,
        ..Default::default()
    });
    let hl = run_fig12(&Fig12Cfg {
        mode: DocMode::HyperLoop,
        workload: Workload::A,
        sets: 4,
        ops: 120,
        ..Default::default()
    });
    assert!(native.writes.count > 0 && hl.writes.count > 0);
    assert!(native.writes.mean_ns > hl.writes.mean_ns);
    assert!(native.server_util > hl.server_util * 3.0);
}
