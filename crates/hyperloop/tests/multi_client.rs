//! Tests for the §5 multi-client SRQ chain.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimDuration, SimTime};
use hyperloop::multi::{self, MultiBuilder, MultiClient, MultiConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// 2 clients (hosts 0-1) share a 3-replica chain (hosts 2-4).
fn setup() -> (World, Engine<World>, Vec<MultiClient>) {
    let (mut w, mut eng) = ClusterBuilder::new(5).arena_size(4 << 20).seed(81).build();
    let chain = MultiBuilder::new(MultiConfig {
        clients: vec![HostId(0), HostId(1)],
        replicas: vec![HostId(2), HostId(3), HostId(4)],
        rep_bytes: 512 << 10,
        ring_slots: 32,
        replenish_period: SimDuration::from_micros(100),
    })
    .build(&mut w);
    multi::start_replenisher(&chain, &mut w, &mut eng);
    let clients = (0..2)
        .map(|c| MultiClient::new(chain.clone(), c, &mut w))
        .collect();
    (w, eng, clients)
}

#[test]
fn both_clients_write_through_one_chain() {
    let (mut w, mut eng, clients) = setup();
    let acked = Rc::new(RefCell::new([0u32; 2]));
    for (c, client) in clients.iter().enumerate() {
        let a = acked.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                (c as u64 + 1) * 0x1000,
                format!("from-client-{c}").as_bytes(),
                true,
                Box::new(move |_w, _e, _r| a.borrow_mut()[c] += 1),
            )
            .unwrap();
    }
    eng.run_until(&mut w, SimTime::from_nanos(5_000_000));
    assert_eq!(*acked.borrow(), [1, 1], "each client got its own ACK");
    // Both writes landed durably on every replica.
    for r in 0..3 {
        let host = clients[0].replica_host(r);
        for c in 0..2usize {
            let addr = clients[0].replica_addr(r, (c as u64 + 1) * 0x1000);
            let want = format!("from-client-{c}");
            assert_eq!(
                w.hosts[host.0].mem.read(addr, want.len()).unwrap(),
                want.as_bytes(),
                "replica {r} client {c}"
            );
            assert!(w.hosts[host.0].mem.is_durable(addr, want.len()));
        }
    }
}

#[test]
fn interleaved_writes_from_two_clients_all_complete() {
    let (mut w, mut eng, clients) = setup();
    let acked = Rc::new(RefCell::new(0u32));
    let per_client = 40u32;
    // Interleave issues with per-op drain so slots serialize cleanly.
    for k in 0..per_client {
        for (c, client) in clients.iter().enumerate() {
            loop {
                let a = acked.clone();
                let r = client.gwrite(
                    &mut w,
                    &mut eng,
                    0x2000 + (k as u64 * 2 + c as u64) * 256,
                    &[(16 * c as u8) ^ k as u8; 128],
                    false,
                    Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
                );
                if r.is_ok() {
                    break;
                }
                let deadline = eng.now() + SimDuration::from_micros(200);
                eng.run_until(&mut w, deadline);
            }
        }
    }
    let probe = acked.clone();
    eng.run_while(&mut w, move |_| *probe.borrow() < per_client * 2);
    assert_eq!(*acked.borrow(), per_client * 2);
    // Spot-check contents on the tail replica.
    let host = clients[0].replica_host(2);
    for (k, c) in [(0u64, 0u64), (17, 1), (39, 0)] {
        let addr = clients[0].replica_addr(2, 0x2000 + (k * 2 + c) * 256);
        let want = [(16 * c as u8) ^ k as u8; 128];
        assert_eq!(w.hosts[host.0].mem.read(addr, 128).unwrap(), want);
    }
}

#[test]
fn replica_cpus_stay_idle_with_multiple_clients() {
    let (mut w, mut eng, clients) = setup();
    let acked = Rc::new(RefCell::new(0u32));
    for k in 0..30u32 {
        let c = (k % 2) as usize;
        let a = acked.clone();
        clients[c]
            .gwrite(
                &mut w,
                &mut eng,
                k as u64 * 512,
                &[k as u8; 64],
                true,
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
        let probe = acked.clone();
        let want = k + 1;
        eng.run_while(&mut w, move |_| *probe.borrow() < want);
    }
    let now = eng.now();
    for h in 2..5 {
        let util = w.hosts[h].cpu.host_utilization(now);
        assert!(util < 0.02, "replica host {h} util {util}");
    }
}

#[test]
fn single_replica_multi_client_chain_works() {
    // Degenerate chain: one replica is both head (SRQ) and tail
    // (per-client ack queues).
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(82).build();
    let chain = MultiBuilder::new(MultiConfig {
        clients: vec![HostId(0), HostId(1)],
        replicas: vec![HostId(2)],
        rep_bytes: 256 << 10,
        ring_slots: 16,
        replenish_period: SimDuration::from_micros(100),
    })
    .build(&mut w);
    multi::start_replenisher(&chain, &mut w, &mut eng);
    let clients: Vec<MultiClient> = (0..2)
        .map(|c| MultiClient::new(chain.clone(), c, &mut w))
        .collect();
    let acked = Rc::new(RefCell::new(0u32));
    for (c, client) in clients.iter().enumerate() {
        let a = acked.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                c as u64 * 128,
                &[7 + c as u8; 64],
                false,
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
    }
    eng.run_until(&mut w, SimTime::from_nanos(5_000_000));
    assert_eq!(*acked.borrow(), 2);
    for c in 0..2usize {
        let addr = clients[0].replica_addr(0, c as u64 * 128);
        assert_eq!(w.hosts[2].mem.read(addr, 64).unwrap(), [7 + c as u8; 64]);
    }
}
