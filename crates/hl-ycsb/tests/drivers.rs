//! End-to-end driver tests: small YCSB runs against both backends.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimTime};
use hl_store::doc::native::{self, NativeDocCosts};
use hl_store::doc::{DocLayout, DocStore};
use hl_ycsb::{
    preload_docstore, run_until_done, ycsb_document, FrontEndCosts, HlDriver, NativeDriver, OpKind,
    Workload, YcsbStats,
};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::rc::Rc;

fn hl_setup() -> (World, Engine<World>, DocStore<HyperLoopClient>) {
    let (mut w, mut eng) = ClusterBuilder::new(4).arena_size(8 << 20).seed(31).build();
    // Client host 0, replicas 1..3.
    let cfg = GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2), HostId(3)],
        rep_bytes: 4 << 20,
        ring_slots: 64,
        ..Default::default()
    };
    let group = GroupBuilder::new(cfg).build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = Rc::new(HyperLoopClient::new(group, &mut w));
    let layout = DocLayout {
        n_slots: 256,
        ..Default::default()
    };
    preload_docstore(&mut w, &*client, &layout, 200, 100);
    let store = DocStore::open(client, layout, 1, true);
    (w, eng, store)
}

#[test]
fn hl_driver_runs_workload_a() {
    let (mut w, mut eng, store) = hl_setup();
    let stats = YcsbStats::shared();
    w.start_process(
        HostId(0),
        "ycsb-a",
        None,
        Box::new(HlDriver::new(
            store.clone(),
            Workload::A,
            200,
            100,
            10,
            w.rng.stream("drv"),
            stats.clone(),
            FrontEndCosts::default(),
        )),
        hl_sim::SimDuration::from_micros(1),
        &mut eng,
    );
    run_until_done(
        &mut w,
        &mut eng,
        &stats,
        1,
        SimTime::from_nanos(30_000_000_000),
    );
    let s = stats.borrow();
    assert_eq!(s.completed, 100);
    assert!(s.kind(OpKind::Read).count() > 20);
    assert!(s.kind(OpKind::Update).count() > 20);
    assert!(s.writes.count() > 20);
    // Reads are client-local: fast. Writes traverse the chain 5+ times
    // (lock, append×2, execute, unlock) plus front-end cost.
    assert!(s.kind(OpKind::Read).mean() < 200_000.0);
    let wmean = s.writes.mean();
    assert!(
        wmean > 150_000.0 && wmean < 3_000_000.0,
        "write mean {wmean}"
    );
}

#[test]
fn hl_driver_reads_preloaded_data() {
    let (mut w, eng, store) = hl_setup();
    // Preload put documents in every member's slots.
    let d = store.read(&mut w, 42).expect("preloaded doc");
    assert_eq!(d.id, 42);
    assert_eq!(d.get("field0"), Some([42u8; 100].as_slice()));
    let d2 = store.read_at(&mut w, 2, 77).expect("on replica too");
    assert_eq!(d2.id, 77);
    let _ = eng;
}

#[test]
fn native_driver_runs_workload_b() {
    let (mut w, mut eng) = ClusterBuilder::new(4).arena_size(8 << 20).seed(32).build();
    let set = native::spawn_native_set(
        &mut w,
        &mut eng,
        "set0",
        &[HostId(1), HostId(2), HostId(3)],
        1536,
        256,
        NativeDocCosts::default(),
    );
    let docs: Vec<_> = (0..200).map(|id| ycsb_document(id, 100)).collect();
    native::preload(&mut w, &set, 1536, 256, &docs);

    let stats = YcsbStats::shared();
    w.start_process(
        HostId(0),
        "ycsb-b",
        None,
        Box::new(NativeDriver::new(
            set.primary,
            set.write_recv_cost,
            set.read_recv_cost,
            Workload::B,
            200,
            200,
            20,
            w.rng.stream("drv"),
            stats.clone(),
            FrontEndCosts::default(),
        )),
        hl_sim::SimDuration::from_micros(1),
        &mut eng,
    );
    run_until_done(
        &mut w,
        &mut eng,
        &stats,
        1,
        SimTime::from_nanos(60_000_000_000),
    );
    let s = stats.borrow();
    assert_eq!(s.completed, 200);
    // B is 95/5.
    assert!(s.kind(OpKind::Read).count() > 160);
    assert!(s.kind(OpKind::Update).count() >= 1);
    // Writes include two CPU replica hops: slower than reads.
    assert!(s.writes.mean() > s.kind(OpKind::Read).mean());
}

#[test]
fn scans_work_against_native() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(8 << 20).seed(33).build();
    let set = native::spawn_native_set(
        &mut w,
        &mut eng,
        "set0",
        &[HostId(1)],
        1536,
        256,
        NativeDocCosts::default(),
    );
    let docs: Vec<_> = (0..200).map(|id| ycsb_document(id, 100)).collect();
    native::preload(&mut w, &set, 1536, 256, &docs);
    let stats = YcsbStats::shared();
    w.start_process(
        HostId(0),
        "ycsb-e",
        None,
        Box::new(NativeDriver::new(
            set.primary,
            set.write_recv_cost,
            set.read_recv_cost,
            Workload::E,
            200,
            100,
            0,
            w.rng.stream("drv"),
            stats.clone(),
            FrontEndCosts::default(),
        )),
        hl_sim::SimDuration::from_micros(1),
        &mut eng,
    );
    run_until_done(
        &mut w,
        &mut eng,
        &stats,
        1,
        SimTime::from_nanos(60_000_000_000),
    );
    let s = stats.borrow();
    assert_eq!(s.completed, 100);
    assert!(s.kind(OpKind::Scan).count() > 80);
}
