//! Wire messages between NICs (reliable-connection transport).
//!
//! The model is message-granular: one packet per verb operation plus an
//! explicit acknowledgement, mirroring RC semantics without MTU
//! segmentation (DESIGN.md §7). Per-connection ordering is guaranteed by
//! the fabric's FIFO egress model.
//!
//! QPs configured with [`Nic::set_qp_timeout`](crate::Nic::set_qp_timeout)
//! additionally stamp request packets with a packet sequence number and
//! the `reliable` flag; the responder then enforces expected-PSN ordering
//! (duplicate suppression, gap drop) and the requester runs an
//! ack/retransmit timer — real RC loss recovery. Packets from QPs without
//! a timeout carry `psn = 0, reliable = false` and behave exactly as
//! before.

/// Fixed per-packet header overhead (Ethernet + IP + UDP + BTH ≈ RoCEv2).
pub const HEADER_BYTES: usize = 48;

use hl_sim::Bytes;

/// A packet between two connected QPs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sending NIC (cluster host index).
    pub src_nic: u32,
    /// Sending QP number.
    pub src_qpn: u32,
    /// Destination QP number on the receiving NIC.
    pub dst_qpn: u32,
    /// Packet sequence number. Meaningful only when `reliable` is set on
    /// a request; responses echo the request's PSN so the requester can
    /// ack cumulatively.
    pub psn: u64,
    /// Request is covered by the sender's retransmit protocol: the
    /// responder must apply expected-PSN ordering (execute at `epsn`,
    /// re-ack duplicates below it, drop gaps above it).
    pub reliable: bool,
    /// Telemetry op id carried from the originating WQE (0 = untracked).
    /// Responses echo the request's id. Occupies reserved BTH header
    /// bits, so it adds no wire bytes.
    pub op: u32,
    /// Operation payload.
    pub kind: PacketKind,
}

/// Operation carried by a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketKind {
    /// One-sided write of `data` at `raddr`.
    Write {
        /// Remote destination address.
        raddr: u64,
        /// Remote key.
        rkey: u32,
        /// Payload (shared, zero-copy).
        data: Bytes,
        /// Requester cookie for the ack.
        wr_id: u64,
        /// Requester wants a completion.
        signaled: bool,
    },
    /// Write with immediate: consumes a RECV at the responder.
    WriteImm {
        /// Remote destination address.
        raddr: u64,
        /// Remote key.
        rkey: u32,
        /// Payload (shared, zero-copy).
        data: Bytes,
        /// Immediate value delivered in the responder's CQE.
        imm: u32,
        /// Requester cookie for the ack.
        wr_id: u64,
        /// Requester wants a completion.
        signaled: bool,
    },
    /// Two-sided send: scattered per the responder's posted RECV.
    Send {
        /// Payload (shared, zero-copy).
        data: Bytes,
        /// Requester cookie for the ack.
        wr_id: u64,
        /// Requester wants a completion.
        signaled: bool,
    },
    /// Read request.
    Read {
        /// Remote source address.
        raddr: u64,
        /// Remote key.
        rkey: u32,
        /// Bytes requested.
        len: u32,
        /// Requester cookie.
        wr_id: u64,
    },
    /// Durability flush (0-byte READ carrying the range to drain).
    Flush {
        /// Remote range start.
        raddr: u64,
        /// Remote key.
        rkey: u32,
        /// Range length.
        len: u32,
        /// Requester cookie.
        wr_id: u64,
    },
    /// Remote compare-and-swap.
    Cas {
        /// Remote target (8-byte aligned u64).
        raddr: u64,
        /// Remote key.
        rkey: u32,
        /// Compare value.
        cmp: u64,
        /// Swap value.
        swp: u64,
        /// Requester cookie.
        wr_id: u64,
    },
    /// Read response with the data.
    ReadResp {
        /// Returned bytes (shared, zero-copy).
        data: Bytes,
        /// Echoed cookie.
        wr_id: u64,
    },
    /// Flush acknowledgement (data is durable at the responder).
    FlushResp {
        /// Echoed cookie.
        wr_id: u64,
    },
    /// CAS response with the original value.
    CasResp {
        /// Value before the swap attempt.
        orig: u64,
        /// Echoed cookie.
        wr_id: u64,
    },
    /// Positive acknowledgement for Write/WriteImm/Send.
    Ack {
        /// Echoed cookie.
        wr_id: u64,
        /// Whether the requester asked for a completion.
        signaled: bool,
        /// Payload length that was transferred (for the CQE).
        byte_len: u32,
    },
    /// Negative acknowledgement (access refused or no RECV posted).
    Nak {
        /// Echoed cookie.
        wr_id: u64,
        /// Reason.
        reason: NakReason,
    },
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NakReason {
    /// MR key/range/permission check failed.
    RemoteAccess,
    /// No RECV posted for a two-sided operation.
    ReceiverNotReady,
    /// Packet arrived on a QP not connected to the sender.
    NotConnected,
}

impl Packet {
    /// Bytes this packet occupies on the wire.
    pub fn wire_size(&self) -> usize {
        let payload = match &self.kind {
            PacketKind::Write { data, .. }
            | PacketKind::WriteImm { data, .. }
            | PacketKind::Send { data, .. }
            | PacketKind::ReadResp { data, .. } => data.len(),
            PacketKind::Cas { .. } | PacketKind::CasResp { .. } => 16,
            PacketKind::Read { .. }
            | PacketKind::Flush { .. }
            | PacketKind::FlushResp { .. }
            | PacketKind::Ack { .. }
            | PacketKind::Nak { .. } => 0,
        };
        HEADER_BYTES + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let w = Packet {
            src_nic: 0,
            src_qpn: 1,
            dst_qpn: 2,
            psn: 0,
            reliable: false,
            op: 0,
            kind: PacketKind::Write {
                raddr: 0,
                rkey: 0,
                data: vec![0; 100].into(),
                wr_id: 0,
                signaled: false,
            },
        };
        assert_eq!(w.wire_size(), HEADER_BYTES + 100);
        let ack = Packet {
            src_nic: 0,
            src_qpn: 1,
            dst_qpn: 2,
            psn: 0,
            reliable: false,
            op: 0,
            kind: PacketKind::Ack {
                wr_id: 0,
                signaled: true,
                byte_len: 100,
            },
        };
        assert_eq!(ack.wire_size(), HEADER_BYTES);
        let cas = Packet {
            src_nic: 0,
            src_qpn: 1,
            dst_qpn: 2,
            psn: 0,
            reliable: false,
            op: 0,
            kind: PacketKind::Cas {
                raddr: 0,
                rkey: 0,
                cmp: 0,
                swp: 0,
                wr_id: 0,
            },
        };
        assert_eq!(cas.wire_size(), HEADER_BYTES + 16);
    }
}
