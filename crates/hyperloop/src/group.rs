//! Group setup: QP wiring, memory layout, and WQE pre-posting.
//!
//! A HyperLoop group is a chain `client → r0 → r1 → … → r(n-1) → client`
//! (the tail ACKs straight back to the client). Per *primitive* each hop
//! gets its own QP pair so that RECV ordering can never mix rings, plus
//! a loopback QP for the NIC-local legs of gMEMCPY/gCAS — exactly the
//! extra-QP construction of paper Figures 6 and 7.
//!
//! Every replica pre-posts a ring of *slots*. One slot is the WQE bundle
//! that executes one group operation hop without CPU:
//!
//! | ring     | loopback QP                  | downstream QP                  |
//! |----------|------------------------------|--------------------------------|
//! | gWRITE   | —                            | WAIT·WRITE·FLUSH·SEND (tail: WAIT·WRITE_IMM) |
//! | gMEMCPY  | WAIT·LOCAL_COPY·LOCAL_FLUSH  | WAIT(2)·SEND (tail: WAIT(2)·WRITE_IMM) |
//! | gCAS     | WAIT·LOCAL_CAS               | WAIT·SEND (tail: WAIT·WRITE_IMM) |
//!
//! All operation WQEs are posted *deferred* (software-owned, blank
//! descriptors); the slot's RECV scatters the client's metadata into
//! their descriptor fields and the WAIT grants them to the NIC. Slots
//! are consumed in order and replenished off the critical path by the
//! [`crate::replica::Replenisher`] process.

use crate::metadata::{self, crec, wrec, Primitive};
use hl_cluster::World;
use hl_fabric::HostId;
use hl_nvm::Region;
use hl_rnic::{field_offset, flags, Access, Opcode, RecvWqe, ScatterEntry, Wqe, WQE_SIZE};
use hl_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Group configuration.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// The client (chain head / transaction coordinator).
    pub client: HostId,
    /// Replicas in chain order.
    pub replicas: Vec<HostId>,
    /// Size of the replicated region (identical layout on every member).
    pub rep_bytes: u64,
    /// Pre-posted slots per primitive ring.
    pub ring_slots: u32,
    /// Replenisher wakeup period.
    pub replenish_period: SimDuration,
    /// Opt-in reliable transport on the client's outbound QPs:
    /// `(ack timeout, retry_cnt)`. When set, a head-hop loss is repaired
    /// by NIC retransmission, and retry exhaustion surfaces as an error
    /// CQE on the client send CQ (see [`crate::recovery`]). `None`
    /// keeps the historical lossless-fabric assumption.
    pub transport_timeout: Option<(SimDuration, u8)>,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            client: HostId(0),
            replicas: Vec::new(),
            rep_bytes: 1 << 20,
            ring_slots: 128,
            replenish_period: SimDuration::from_micros(200),
            transport_timeout: None,
        }
    }
}

/// Per-op completion data handed to the issuer's callback.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// Operation sequence number.
    pub seq: u32,
    /// Result map (gCAS): one u64 per member, client first.
    pub results: Vec<u64>,
    /// Issue → group-ACK latency.
    pub latency: SimDuration,
}

/// Completion callback type.
pub type OnDone = Box<dyn FnOnce(&mut World, &mut hl_sim::Engine<World>, OpResult)>;

/// The client refused to issue: too many operations in flight for the
/// pre-posted ring depth. Retry after completions drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure;

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "group ring credits exhausted")
    }
}
impl std::error::Error for Backpressure {}

/// Client-side state of one primitive ring.
pub(crate) struct ClientRing {
    /// QP toward replica 0.
    pub qp_out: u32,
    /// Send CQ of `qp_out`: transport error CQEs land here.
    pub out_scq: u32,
    /// QP receiving the tail's ACK WRITE_IMM.
    pub ack_qp: u32,
    /// Recv CQ of `ack_qp` (callback-subscribed).
    pub ack_rcq: u32,
    /// Staging buffer: `slots × msg_len` for outgoing metadata.
    pub staging: Region,
    /// ACK landing buffer: `slots × 8·g`.
    pub ack_buf: Region,
}

/// Replica-side state of one primitive ring.
pub(crate) struct RepRing {
    /// QP from upstream (client or previous replica).
    pub qp_prev: u32,
    /// Recv CQ of `qp_prev` (watched by this slot's first WAIT).
    pub prev_rcq: u32,
    /// QP toward downstream (next replica, or client for the tail).
    pub qp_next: u32,
    /// Loopback QP (gMEMCPY/gCAS), with its send CQ.
    pub qp_local: Option<u32>,
    /// Send CQ of the loopback QP.
    pub local_scq: u32,
    /// Metadata staging: `slots × msg_len`.
    pub staging: Region,
    /// Slots pre-posted so far (monotonic).
    pub slots_posted: u64,
    /// rkey of the downstream write target (next replica's rep region,
    /// or the client's ack buffer for the tail).
    pub next_rkey: u32,
    /// WQEs per slot on `qp_next` / `qp_local` (for consumption math).
    pub next_per_slot: u64,
    /// WQEs per slot on the loopback QP (0 when unused).
    pub local_per_slot: u64,
}

struct Pending {
    prim: Primitive,
    issued_at: SimTime,
    slot: u64,
    /// Telemetry op id (0 when tracing is off).
    op: u32,
    done: Option<OnDone>,
}

/// Counters for reporting and ablations.
#[derive(Debug, Default, Clone)]
pub struct GroupStats {
    /// Operations issued.
    pub issued: u64,
    /// Group ACKs received.
    pub acked: u64,
    /// Issue attempts refused for lack of ring credits.
    pub backpressured: u64,
    /// Slots reposted by replenishers.
    pub reposted: u64,
}

/// Shared mutable group state (client handle + replenishers + recovery).
pub struct GroupInner {
    /// Static configuration.
    pub cfg: GroupConfig,
    /// Group size (replicas + client).
    pub g: usize,
    /// Metadata message length.
    pub msg_len: u64,
    /// Client's copy of the replicated region.
    pub client_rep: Region,
    /// Each replica's replicated region (identical sizes).
    pub replica_rep: Vec<Region>,
    /// rkey of each replica's rep region.
    pub rep_rkeys: Vec<u32>,
    pub(crate) client_rings: [ClientRing; 3],
    pub(crate) rep_rings: Vec<[RepRing; 3]>, // [replica][primitive]
    pending: BTreeMap<u32, Pending>,
    next_seq: u32,
    inflight: [u32; 3],
    /// Per-ring issued-operation counters (= next slot index).
    pub(crate) issued_ops: [u64; 3],
    /// Credits: slots each replica has reported as posted, per
    /// primitive. The client may issue op `k` on a ring only when every
    /// replica has posted more than `k` slots.
    pub(crate) posted_seen: Vec<[u64; 3]>,
    max_inflight: u32,
    /// Counters.
    pub stats: GroupStats,
    /// Writes paused (recovery in progress).
    pub paused: bool,
}

/// Shared handle to a group.
pub type GroupRef = Rc<RefCell<GroupInner>>;

impl GroupInner {
    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.g - 1
    }

    /// Absolute address of `offset` in member `m`'s rep region
    /// (member 0 = client).
    pub fn member_addr(&self, m: usize, offset: u64) -> u64 {
        if m == 0 {
            self.client_rep.at(offset)
        } else {
            self.replica_rep[m - 1].at(offset)
        }
    }

    pub(crate) fn take_credit(&mut self, prim: Primitive) -> Result<(), Backpressure> {
        let ring_credit = self
            .posted_seen
            .iter()
            .map(|p| p[prim.idx()])
            .min()
            .unwrap_or(0);
        if self.paused
            || self.inflight[prim.idx()] >= self.max_inflight
            || self.issued_ops[prim.idx()] >= ring_credit
        {
            self.stats.backpressured += 1;
            return Err(Backpressure);
        }
        self.inflight[prim.idx()] += 1;
        Ok(())
    }

    pub(crate) fn alloc_seq(&mut self) -> u32 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Reserve the next slot index on a ring.
    pub(crate) fn alloc_slot(&mut self, prim: Primitive) -> u64 {
        let s = self.issued_ops[prim.idx()];
        self.issued_ops[prim.idx()] += 1;
        self.stats.issued += 1;
        s
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn register_pending(
        &mut self,
        seq: u32,
        prim: Primitive,
        slot: u64,
        issued_at: SimTime,
        op: u32,
        done: OnDone,
    ) {
        self.pending.insert(
            seq,
            Pending {
                prim,
                issued_at,
                slot,
                op,
                done: Some(done),
            },
        );
    }

    pub(crate) fn complete_pending(&mut self, seq: u32) -> Option<crate::client::CompletedPending> {
        let p = self.pending.remove(&seq)?;
        self.inflight[p.prim.idx()] -= 1;
        self.stats.acked += 1;
        Some(crate::client::CompletedPending {
            prim: p.prim,
            issued_at: p.issued_at,
            slot: p.slot,
            op: p.op,
            done: p.done,
        })
    }

    /// Number of operations currently awaiting their group ACK.
    pub fn inflight_total(&self) -> u32 {
        self.inflight.iter().sum()
    }
}

/// Builds a group: allocates regions, wires QPs, pre-posts all rings.
pub struct GroupBuilder {
    cfg: GroupConfig,
    gid: u32,
}

/// Monotonic group id for unique region names.
fn next_gid() -> u32 {
    use std::sync::atomic::{AtomicU32, Ordering};
    static GID: AtomicU32 = AtomicU32::new(0);
    GID.fetch_add(1, Ordering::Relaxed)
}

impl GroupBuilder {
    /// Start building from a config.
    pub fn new(cfg: GroupConfig) -> Self {
        assert!(!cfg.replicas.is_empty(), "a group needs >= 1 replica");
        assert!(cfg.ring_slots >= 4);
        GroupBuilder {
            cfg,
            gid: next_gid(),
        }
    }

    /// Allocate, wire and pre-post everything. Setup is control-path and
    /// is not timed (the paper's CPUs also only initialize the group).
    pub fn build(self, w: &mut World) -> GroupRef {
        let cfg = self.cfg;
        let gid = self.gid;
        let g = cfg.replicas.len() + 1;
        let n = cfg.replicas.len();
        let msg_len = metadata::msg_len(g);
        let slots = cfg.ring_slots;

        // --- client regions ------------------------------------------------
        let ch = cfg.client;
        let client_rep = w
            .host(ch)
            .layout
            .alloc(&format!("g{gid}.rep"), cfg.rep_bytes, 64);
        // The client's own copy is persisted by its CPU; no remote access
        // needed, but recovery reads it, so allow remote read.
        w.host(ch)
            .nic
            .register_mr(client_rep.addr, client_rep.len, Access::REMOTE_READ);

        // --- replica rep regions -------------------------------------------
        let mut replica_rep = Vec::new();
        let mut rep_rkeys = Vec::new();
        for &rh in &cfg.replicas {
            let r = w
                .host(rh)
                .layout
                .alloc(&format!("g{gid}.rep"), cfg.rep_bytes, 64);
            let mr = w.host(rh).nic.register_mr(
                r.addr,
                r.len,
                Access::REMOTE_WRITE | Access::REMOTE_READ | Access::REMOTE_ATOMIC,
            );
            replica_rep.push(r);
            rep_rkeys.push(mr.rkey);
        }

        // --- per-primitive rings --------------------------------------------
        let mut client_rings = Vec::new();
        let mut rep_rings: Vec<Vec<RepRing>> = (0..n).map(|_| Vec::new()).collect();

        for prim in Primitive::ALL {
            let pname = match prim {
                Primitive::GWrite => "gw",
                Primitive::GMemcpy => "gm",
                Primitive::GCas => "gc",
            };

            // Client side.
            let out_sq = w.host(ch).layout.alloc(
                &format!("g{gid}.{pname}.out_sq"),
                4 * slots as u64 * WQE_SIZE,
                64,
            );
            let staging = w.host(ch).layout.alloc(
                &format!("g{gid}.{pname}.staging"),
                slots as u64 * msg_len,
                64,
            );
            let ack_buf = w.host(ch).layout.alloc(
                &format!("g{gid}.{pname}.ack"),
                slots as u64 * 8 * g as u64,
                64,
            );
            let ack_mr =
                w.host(ch)
                    .nic
                    .register_mr(ack_buf.addr, ack_buf.len, Access::REMOTE_WRITE);
            let out_scq = w.host(ch).nic.create_cq();
            let out_rcq = w.host(ch).nic.create_cq();
            let qp_out = w
                .host(ch)
                .nic
                .create_qp(out_scq, out_rcq, out_sq.addr, 4 * slots);
            if let Some((to, retry_cnt)) = cfg.transport_timeout {
                w.host(ch).nic.set_qp_timeout(qp_out, to, retry_cnt);
            }
            let ack_sq =
                w.host(ch)
                    .layout
                    .alloc(&format!("g{gid}.{pname}.ack_sq"), 4 * WQE_SIZE, 64);
            let ack_scq = w.host(ch).nic.create_cq();
            let ack_rcq = w.host(ch).nic.create_cq();
            let ack_qp = w.host(ch).nic.create_qp(ack_scq, ack_rcq, ack_sq.addr, 4);

            // Pre-post client ACK receives.
            for k in 0..slots as u64 {
                w.host(ch).post_recv(ack_qp, ack_recv(k));
            }

            // Replica side.
            let mut prev_qp = qp_out; // upstream QP handle on the *upstream host*
            let mut prev_host = ch;
            for (i, &rh) in cfg.replicas.iter().enumerate() {
                let is_tail = i == n - 1;
                let next_per_slot = per_slot_next(prim, is_tail);
                let local_per_slot = per_slot_local(prim);

                let prev_sq =
                    w.host(rh)
                        .layout
                        .alloc(&format!("g{gid}.{pname}.prev_sq"), 4 * WQE_SIZE, 64);
                let next_sq = w.host(rh).layout.alloc(
                    &format!("g{gid}.{pname}.next_sq"),
                    next_per_slot.max(1) * slots as u64 * WQE_SIZE,
                    64,
                );
                let staging_r = w.host(rh).layout.alloc(
                    &format!("g{gid}.{pname}.staging"),
                    slots as u64 * msg_len,
                    64,
                );
                // Paper §4.1: the WQE ring itself is registered as an
                // RDMA-accessible region (with safety checks).
                w.host(rh)
                    .nic
                    .register_mr(next_sq.addr, next_sq.len, Access::REMOTE_WRITE);

                let prev_scq = w.host(rh).nic.create_cq();
                let prev_rcq = w.host(rh).nic.create_cq();
                let qp_prev = w
                    .host(rh)
                    .nic
                    .create_qp(prev_scq, prev_rcq, prev_sq.addr, 4);

                let next_scq = w.host(rh).nic.create_cq();
                let next_rcq = w.host(rh).nic.create_cq();
                let qp_next = w.host(rh).nic.create_qp(
                    next_scq,
                    next_rcq,
                    next_sq.addr,
                    (next_per_slot.max(1) * slots as u64) as u32,
                );

                let (qp_local, local_scq) = if local_per_slot > 0 {
                    let local_sq = w.host(rh).layout.alloc(
                        &format!("g{gid}.{pname}.local_sq"),
                        local_per_slot * slots as u64 * WQE_SIZE,
                        64,
                    );
                    let lcq = w.host(rh).nic.create_cq();
                    let qpl = w.host(rh).nic.create_qp(
                        lcq,
                        lcq,
                        local_sq.addr,
                        (local_per_slot * slots as u64) as u32,
                    );
                    (Some(qpl), lcq)
                } else {
                    (None, u32::MAX)
                };

                // Wire upstream: prev_qp on prev_host <-> qp_prev here.
                w.connect_qps(prev_host, prev_qp, rh, qp_prev);

                let next_rkey = if is_tail {
                    ack_mr.rkey
                } else {
                    rep_rkeys[i + 1]
                };

                rep_rings[i].push(RepRing {
                    qp_prev,
                    prev_rcq,
                    qp_next,
                    qp_local,
                    local_scq,
                    staging: staging_r,
                    slots_posted: 0,
                    next_rkey,
                    next_per_slot,
                    local_per_slot,
                });

                prev_qp = qp_next;
                prev_host = rh;
            }
            // Tail -> client ack wiring.
            w.connect_qps(prev_host, prev_qp, ch, ack_qp);

            client_rings.push(ClientRing {
                qp_out,
                out_scq,
                ack_qp,
                ack_rcq,
                staging,
                ack_buf,
            });
        }

        let inner = GroupInner {
            g,
            msg_len,
            client_rep,
            replica_rep,
            rep_rkeys,
            client_rings: client_rings
                .try_into()
                .unwrap_or_else(|_| unreachable!("three rings")),
            rep_rings: rep_rings
                .into_iter()
                .map(|r| r.try_into().unwrap_or_else(|_| unreachable!()))
                .collect(),
            pending: BTreeMap::new(),
            next_seq: 0,
            inflight: [0; 3],
            issued_ops: [0; 3],
            posted_seen: vec![[slots as u64; 3]; n],
            max_inflight: slots / 2,
            stats: GroupStats::default(),
            paused: false,
            cfg,
        };
        let group: GroupRef = Rc::new(RefCell::new(inner));

        // Pre-post every slot on every replica ring.
        {
            let mut inner = group.borrow_mut();
            for i in 0..n {
                for prim in Primitive::ALL {
                    for _ in 0..slots {
                        post_slot(&mut inner, w, i, prim);
                    }
                }
            }
            // Arm the rings (park their WAITs) with one doorbell each.
            for i in 0..n {
                let rh = inner.cfg.replicas[i];
                for prim in Primitive::ALL {
                    let ring = &inner.rep_rings[i][prim.idx()];
                    let (qn, ql) = (ring.qp_next, ring.qp_local);
                    let h = &mut w.hosts[rh.0];
                    let outs = h.nic.ring_doorbell(SimTime::ZERO, qn, &mut h.mem);
                    debug_assert!(outs.is_empty(), "arming must only park WAITs");
                    if let Some(ql) = ql {
                        let outs = h.nic.ring_doorbell(SimTime::ZERO, ql, &mut h.mem);
                        debug_assert!(outs.is_empty());
                    }
                }
            }
        }
        group
    }
}

/// WQEs per slot on the downstream QP.
fn per_slot_next(prim: Primitive, is_tail: bool) -> u64 {
    match (prim, is_tail) {
        (Primitive::GWrite, false) => 4, // WAIT WRITE FLUSH SEND
        (Primitive::GWrite, true) => 2,  // WAIT WRITE_IMM
        (Primitive::GMemcpy, _) => 2,    // WAIT SEND/WRITE_IMM
        (Primitive::GCas, _) => 2,       // WAIT SEND/WRITE_IMM
    }
}

/// WQEs per slot on the loopback QP (0 = no loopback leg).
fn per_slot_local(prim: Primitive) -> u64 {
    match prim {
        Primitive::GWrite => 0,
        Primitive::GMemcpy => 3, // WAIT COPY LFLUSH
        Primitive::GCas => 2,    // WAIT CAS
    }
}

fn ack_recv(slot: u64) -> RecvWqe {
    RecvWqe {
        wr_id: slot,
        scatter: vec![], // WRITE_IMM places data via raddr; no scatter
    }
}

/// Pre-post one slot (WQEs + RECV) on replica `i`'s `prim` ring.
/// Callable at build time and from the replenisher.
pub(crate) fn post_slot(inner: &mut GroupInner, w: &mut World, i: usize, prim: Primitive) {
    let n = inner.n_replicas();
    let is_tail = i == n - 1;
    let g = inner.g;
    let msg_len = inner.msg_len;
    let rh = inner.cfg.replicas[i];
    let slots = inner.cfg.ring_slots as u64;
    let ring = &inner.rep_rings[i][prim.idx()];
    let slot = ring.slots_posted;
    let staging_slot = ring.staging.at((slot % slots) * msg_len);
    let rec = metadata::rec_off(g, i);
    let next_rkey = ring.next_rkey;
    let prev_rcq = ring.prev_rcq;
    let local_scq = ring.local_scq;
    let qp_next = ring.qp_next;
    let qp_local = ring.qp_local;
    let qp_prev = ring.qp_prev;
    // The tail's ACK lands at the client's per-slot ack address.
    let ack_slot_addr = inner.client_rings[prim.idx()]
        .ack_buf
        .at((slot % slots) * 8 * g as u64);

    let host = &mut w.hosts[rh.0];
    let mut scatter: Vec<ScatterEntry> = vec![ScatterEntry {
        msg_off: 0,
        len: msg_len as u32,
        addr: staging_slot,
    }];

    let se = |msg_off: u64, len: u64, addr: u64| ScatterEntry {
        msg_off: msg_off as u32,
        len: len as u32,
        addr,
    };

    match prim {
        Primitive::GWrite => {
            let wait = Wqe {
                opcode: Opcode::Wait,
                flags: flags::HW_OWNED,
                raddr: Wqe::wait_params(prev_rcq, 1),
                activate_n: if is_tail { 1 } else { 3 },
                wr_id: slot,
                ..Default::default()
            };
            host.post_send(qp_next, wait, false)
                .expect("ring sized for slots");
            if is_tail {
                let wimm = Wqe {
                    opcode: Opcode::WriteImm,
                    len: 8 * g as u32,
                    laddr: staging_slot + metadata::results_off(),
                    raddr: ack_slot_addr,
                    rkey: next_rkey,
                    wr_id: slot,
                    ..Default::default()
                };
                let idx = host.post_send(qp_next, wimm, true).unwrap();
                let wimm_addr = slot_wqe_addr(host, qp_next, idx);
                scatter.push(se(0, 4, wimm_addr + field_offset::IMM));
                scatter.push(se(metadata::OP_OFF, 4, wimm_addr + field_offset::OP));
            } else {
                let write = Wqe {
                    opcode: Opcode::Write,
                    rkey: next_rkey,
                    wr_id: slot,
                    ..Default::default()
                };
                let widx = host.post_send(qp_next, write, true).unwrap();
                let flush = Wqe {
                    opcode: Opcode::Flush,
                    rkey: next_rkey,
                    wr_id: slot,
                    ..Default::default()
                };
                let fidx = host.post_send(qp_next, flush, true).unwrap();
                let send = Wqe {
                    opcode: Opcode::Send,
                    len: msg_len as u32,
                    laddr: staging_slot,
                    wr_id: slot,
                    ..Default::default()
                };
                let sidx = host.post_send(qp_next, send, true).unwrap();
                let waddr = slot_wqe_addr(host, qp_next, widx);
                let faddr = slot_wqe_addr(host, qp_next, fidx);
                let saddr = slot_wqe_addr(host, qp_next, sidx);
                scatter.extend([
                    se(rec + wrec::LEN, 4, waddr + field_offset::LEN),
                    se(rec + wrec::SRC, 8, waddr + field_offset::LADDR),
                    se(rec + wrec::DST, 8, waddr + field_offset::RADDR),
                    se(rec + wrec::FOP, 1, faddr + field_offset::OPCODE),
                    se(rec + wrec::FADDR, 8, faddr + field_offset::RADDR),
                    se(rec + wrec::FLEN, 4, faddr + field_offset::LEN),
                    // Telemetry op id rides the same scatter into every
                    // data WQE, so causal spans cost zero replica CPU.
                    se(metadata::OP_OFF, 4, waddr + field_offset::OP),
                    se(metadata::OP_OFF, 4, faddr + field_offset::OP),
                    se(metadata::OP_OFF, 4, saddr + field_offset::OP),
                ]);
            }
        }
        Primitive::GMemcpy | Primitive::GCas => {
            let qp_local = qp_local.expect("local leg");
            // Loopback leg: WAIT on the upstream recv, then local op(s).
            let local_ops = if prim == Primitive::GMemcpy { 2 } else { 1 };
            let wait_l = Wqe {
                opcode: Opcode::Wait,
                flags: flags::HW_OWNED,
                raddr: Wqe::wait_params(prev_rcq, 1),
                activate_n: local_ops,
                wr_id: slot,
                ..Default::default()
            };
            host.post_send(qp_local, wait_l, false).unwrap();
            if prim == Primitive::GMemcpy {
                let copy = Wqe {
                    opcode: Opcode::LocalCopy,
                    flags: flags::SIGNALED,
                    wr_id: slot,
                    ..Default::default()
                };
                let cidx = host.post_send(qp_local, copy, true).unwrap();
                let lflush = Wqe {
                    opcode: Opcode::LocalFlush,
                    flags: flags::SIGNALED,
                    wr_id: slot,
                    ..Default::default()
                };
                let fidx = host.post_send(qp_local, lflush, true).unwrap();
                let caddr = slot_wqe_addr(host, qp_local, cidx);
                let faddr = slot_wqe_addr(host, qp_local, fidx);
                scatter.extend([
                    se(rec + wrec::LEN, 4, caddr + field_offset::LEN),
                    se(rec + wrec::SRC, 8, caddr + field_offset::LADDR),
                    se(rec + wrec::DST, 8, caddr + field_offset::RADDR),
                    se(rec + wrec::FOP, 1, faddr + field_offset::OPCODE),
                    se(rec + wrec::FADDR, 8, faddr + field_offset::RADDR),
                    se(rec + wrec::FLEN, 4, faddr + field_offset::LEN),
                    se(metadata::OP_OFF, 4, caddr + field_offset::OP),
                    se(metadata::OP_OFF, 4, faddr + field_offset::OP),
                ]);
            } else {
                let cas = Wqe {
                    opcode: Opcode::LocalCas,
                    flags: flags::SIGNALED,
                    len: 8,
                    wr_id: slot,
                    ..Default::default()
                };
                let cidx = host.post_send(qp_local, cas, true).unwrap();
                let caddr = slot_wqe_addr(host, qp_local, cidx);
                scatter.extend([
                    se(rec + crec::COP, 1, caddr + field_offset::OPCODE),
                    se(rec + crec::TARGET, 8, caddr + field_offset::RADDR),
                    se(rec + crec::CMP, 8, caddr + field_offset::CMP),
                    se(rec + crec::SWP, 8, caddr + field_offset::SWP),
                    se(rec + crec::RESULT, 8, caddr + field_offset::LADDR),
                    se(metadata::OP_OFF, 4, caddr + field_offset::OP),
                ]);
            }
            // Downstream leg: WAIT for the local CQEs, then forward.
            let wait_n = Wqe {
                opcode: Opcode::Wait,
                flags: flags::HW_OWNED,
                raddr: Wqe::wait_params(local_scq, local_ops as u32),
                activate_n: 1,
                wr_id: slot,
                ..Default::default()
            };
            host.post_send(qp_next, wait_n, false).unwrap();
            if is_tail {
                let wimm = Wqe {
                    opcode: Opcode::WriteImm,
                    len: 8 * g as u32,
                    laddr: staging_slot + metadata::results_off(),
                    raddr: ack_slot_addr,
                    rkey: next_rkey,
                    wr_id: slot,
                    ..Default::default()
                };
                let idx = host.post_send(qp_next, wimm, true).unwrap();
                let wimm_addr = slot_wqe_addr(host, qp_next, idx);
                scatter.push(se(0, 4, wimm_addr + field_offset::IMM));
                scatter.push(se(metadata::OP_OFF, 4, wimm_addr + field_offset::OP));
            } else {
                let send = Wqe {
                    opcode: Opcode::Send,
                    len: msg_len as u32,
                    laddr: staging_slot,
                    wr_id: slot,
                    ..Default::default()
                };
                let sidx = host.post_send(qp_next, send, true).unwrap();
                let saddr = slot_wqe_addr(host, qp_next, sidx);
                scatter.push(se(metadata::OP_OFF, 4, saddr + field_offset::OP));
            }
        }
    }

    host.post_recv(
        qp_prev,
        RecvWqe {
            wr_id: slot,
            scatter,
        },
    );
    inner.rep_rings[i][prim.idx()].slots_posted += 1;
}

/// Address of the WQE at ring index `idx` of `qpn` on this host.
fn slot_wqe_addr(host: &hl_cluster::Host, qpn: u32, idx: u64) -> u64 {
    host.nic.sq_slot_addr(qpn, idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_shapes_match_ring_sizing() {
        // gWRITE: WAIT WRITE FLUSH SEND downstream, no loopback.
        assert_eq!(per_slot_next(Primitive::GWrite, false), 4);
        assert_eq!(per_slot_next(Primitive::GWrite, true), 2);
        assert_eq!(per_slot_local(Primitive::GWrite), 0);
        // gMEMCPY: WAIT COPY LFLUSH loopback; WAIT SEND downstream.
        assert_eq!(per_slot_next(Primitive::GMemcpy, false), 2);
        assert_eq!(per_slot_local(Primitive::GMemcpy), 3);
        // gCAS: WAIT CAS loopback; WAIT SEND downstream.
        assert_eq!(per_slot_next(Primitive::GCas, true), 2);
        assert_eq!(per_slot_local(Primitive::GCas), 2);
    }

    #[test]
    fn credit_math_refuses_at_ring_edge() {
        let mut inner = GroupInner {
            cfg: GroupConfig {
                replicas: vec![hl_fabric::HostId(1)],
                ring_slots: 8,
                ..Default::default()
            },
            g: 2,
            msg_len: metadata::msg_len(2),
            client_rep: hl_nvm::Region {
                name: "t".into(),
                addr: 0,
                len: 64,
            },
            replica_rep: vec![],
            rep_rkeys: vec![],
            client_rings: std::array::from_fn(|_| ClientRing {
                qp_out: 0,
                out_scq: 0,
                ack_qp: 0,
                ack_rcq: 0,
                staging: hl_nvm::Region {
                    name: "s".into(),
                    addr: 0,
                    len: 0,
                },
                ack_buf: hl_nvm::Region {
                    name: "a".into(),
                    addr: 0,
                    len: 0,
                },
            }),
            rep_rings: vec![],
            pending: BTreeMap::new(),
            next_seq: 0,
            inflight: [0; 3],
            issued_ops: [0; 3],
            posted_seen: vec![[8; 3]],
            max_inflight: 4,
            stats: GroupStats::default(),
            paused: false,
        };
        // max_inflight bound.
        for _ in 0..4 {
            assert!(inner.take_credit(Primitive::GWrite).is_ok());
        }
        assert!(inner.take_credit(Primitive::GWrite).is_err());
        assert_eq!(inner.stats.backpressured, 1);
        // Pause bound.
        inner.inflight = [0; 3];
        inner.paused = true;
        assert!(inner.take_credit(Primitive::GWrite).is_err());
        inner.paused = false;
        // Ring-credit bound: replica reported only 8 slots posted.
        inner.issued_ops[0] = 8;
        assert!(inner.take_credit(Primitive::GWrite).is_err());
        // Credit report unblocks.
        inner.posted_seen[0][0] = 16;
        assert!(inner.take_credit(Primitive::GWrite).is_ok());
    }
}
