//! Failure detection and chain-recovery tests.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_rnic::Access;
use hl_sim::{Engine, SimDuration, SimTime};
use hyperloop::recovery::{self, HeartbeatConfig};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

fn build_group(
    w: &mut World,
    eng: &mut Engine<World>,
    replicas: Vec<HostId>,
) -> (hyperloop::GroupRef, HyperLoopClient) {
    let cfg = GroupConfig {
        client: HostId(0),
        replicas,
        rep_bytes: 256 << 10,
        ring_slots: 32,
        ..Default::default()
    };
    let group = GroupBuilder::new(cfg).build(w);
    replica::start_replenishers(&group, w, eng);
    let client = HyperLoopClient::new(group.clone(), w);
    (group, client)
}

#[test]
fn heartbeats_detect_link_failure() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(3).build();
    let (group, _client) = build_group(&mut w, &mut eng, vec![HostId(1), HostId(2)]);

    let failures = Rc::new(RefCell::new(Vec::new()));
    let f2 = failures.clone();
    recovery::start_heartbeats(
        &group,
        HeartbeatConfig {
            period: SimDuration::from_millis(5),
            miss_threshold: 3,
        },
        Box::new(move |_w, _e, idx| f2.borrow_mut().push(idx)),
        &mut w,
        &mut eng,
    );

    // Healthy for 50 ms: no failures.
    eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
    assert!(failures.borrow().is_empty());

    // Replica 1 (host 2) loses its link.
    w.fabric.set_link_down(HostId(2), true);
    eng.run_until(&mut w, SimTime::from_nanos(120_000_000));
    assert_eq!(
        *failures.borrow(),
        vec![1],
        "replica index 1 must be detected"
    );
}

#[test]
fn catch_up_copies_region_over_fabric() {
    let (mut w, mut eng) = ClusterBuilder::new(2).arena_size(2 << 20).seed(3).build();
    // Source data on host 0.
    let src = w.host(HostId(0)).layout.alloc("src", 64 << 10, 64);
    let dst = w.host(HostId(1)).layout.alloc("dst", 64 << 10, 64);
    let pattern: Vec<u8> = (0..(64 << 10)).map(|i| (i % 251) as u8).collect();
    w.hosts[0].mem.write(src.addr, &pattern).unwrap();
    let mr = w.hosts[0]
        .nic
        .register_mr(src.addr, src.len, Access::REMOTE_READ);

    let done = Rc::new(RefCell::new(false));
    let d2 = done.clone();
    recovery::catch_up(
        &mut w,
        &mut eng,
        HostId(0),
        mr.rkey,
        src.addr,
        HostId(1),
        dst.addr,
        64 << 10,
        8 << 10,
        Box::new(move |_w, _e| *d2.borrow_mut() = true),
    );
    eng.run_until(&mut w, SimTime::from_nanos(500_000_000));
    assert!(*done.borrow(), "catch-up must complete");
    assert_eq!(
        w.hosts[1].mem.read_vec(dst.addr, 64 << 10).unwrap(),
        pattern
    );
}

/// Full recovery drill: writes flow; a replica dies; the failure is
/// detected; the chain is rebuilt over the survivor plus a fresh host;
/// all members converge to the client's state and writes resume.
#[test]
fn full_chain_recovery_drill() {
    let (mut w, mut eng) = ClusterBuilder::new(4).arena_size(4 << 20).seed(3).build();
    let (group, client) = build_group(&mut w, &mut eng, vec![HostId(1), HostId(2)]);

    // Write some committed data first.
    let acked = Rc::new(RefCell::new(0u32));
    for k in 0..10u64 {
        let a = acked.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                k * 128,
                format!("record-{k:04}").as_bytes(),
                true,
                Box::new(move |_w, _e, _r| *a.borrow_mut() += 1),
            )
            .unwrap();
        let a2 = acked.clone();
        let want = k as u32 + 1;
        eng.run_while(&mut w, move |_| *a2.borrow() < want);
    }
    assert_eq!(*acked.borrow(), 10);

    // Wire failure handling: on detection, rebuild over the survivor
    // (host 1) plus the standby host 3.
    let new_client: Rc<RefCell<Option<HyperLoopClient>>> = Rc::new(RefCell::new(None));
    let nc2 = new_client.clone();
    let group2 = group.clone();
    let failures = Rc::new(RefCell::new(0u32));
    let f2 = failures.clone();
    recovery::start_heartbeats(
        &group,
        HeartbeatConfig {
            period: SimDuration::from_millis(5),
            miss_threshold: 3,
        },
        Box::new(move |w, eng, idx| {
            *f2.borrow_mut() += 1;
            assert_eq!(idx, 1, "host 2 is replica index 1");
            let nc3 = nc2.clone();
            recovery::rebuild_chain(
                w,
                eng,
                &group2,
                vec![HostId(1)],
                Some(HostId(3)),
                32,
                Box::new(move |_w, _e, client| {
                    *nc3.borrow_mut() = Some(client);
                }),
            );
        }),
        &mut w,
        &mut eng,
    );

    // Kill host 2.
    eng.schedule(SimDuration::from_millis(10), |w: &mut World, _| {
        w.fabric.set_link_down(HostId(2), true);
    });

    // Run until the new chain is up.
    let nc_probe = new_client.clone();
    eng.run_while(&mut w, move |_| nc_probe.borrow().is_none());
    assert_eq!(*failures.borrow(), 1);
    let client2 = new_client.borrow().clone().unwrap();

    // The old group is paused.
    assert!(group.borrow().paused);

    // Every new member already has the pre-failure data (caught up from
    // the client's authoritative copy).
    {
        let g2 = client2.group().borrow();
        for i in 0..g2.n_replicas() {
            let host = g2.cfg.replicas[i];
            let addr = g2.replica_rep[i].at(0);
            assert_eq!(
                w.hosts[host.0].mem.read(addr, 11).unwrap(),
                b"record-0000",
                "member {i} caught up"
            );
        }
    }

    // Writes resume on the new chain.
    let resumed = Rc::new(RefCell::new(0u32));
    let r2 = resumed.clone();
    client2
        .gwrite(
            &mut w,
            &mut eng,
            2048,
            b"post-recovery",
            true,
            Box::new(move |_w, _e, _r| *r2.borrow_mut() += 1),
        )
        .unwrap();
    eng.run_until(
        &mut w,
        SimTime::from_nanos(eng.now().as_nanos() + 50_000_000),
    );
    assert_eq!(*resumed.borrow(), 1);
    // The new tail (host 3) has the new write, durable.
    {
        let g2 = client2.group().borrow();
        let i = g2.n_replicas() - 1;
        let addr = g2.replica_rep[i].at(2048);
        let host = g2.cfg.replicas[i];
        assert_eq!(
            w.hosts[host.0].mem.read(addr, 13).unwrap(),
            b"post-recovery"
        );
        assert!(w.hosts[host.0].mem.is_durable(addr, 13));
    }
}

/// A transient link flap shorter than `miss_threshold` consecutive
/// heartbeat periods must NOT be reported as a failure: the miss counter
/// resets as soon as a pong arrives again.
#[test]
fn transient_flap_below_threshold_is_tolerated() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(5).build();
    let (group, _client) = build_group(&mut w, &mut eng, vec![HostId(1), HostId(2)]);

    let failures = Rc::new(RefCell::new(Vec::new()));
    let f2 = failures.clone();
    recovery::start_heartbeats(
        &group,
        HeartbeatConfig {
            period: SimDuration::from_millis(5),
            miss_threshold: 3,
        },
        Box::new(move |_w, _e, idx| f2.borrow_mut().push(idx)),
        &mut w,
        &mut eng,
    );

    // Two heartbeat periods of outage (< 3 consecutive misses), then heal.
    eng.run_until(&mut w, SimTime::from_nanos(50_000_000));
    w.fabric.set_link_down(HostId(2), true);
    eng.run_until(&mut w, SimTime::from_nanos(58_000_000));
    w.fabric.set_link_down(HostId(2), false);

    // Run long after; repeated sub-threshold flaps must stay silent too.
    eng.run_until(&mut w, SimTime::from_nanos(200_000_000));
    w.fabric.set_link_down(HostId(2), true);
    eng.run_until(&mut w, SimTime::from_nanos(208_000_000));
    w.fabric.set_link_down(HostId(2), false);
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));

    assert!(
        failures.borrow().is_empty(),
        "sub-threshold flaps must not trigger failure: {:?}",
        failures.borrow()
    );
}

/// Once a replica is declared failed the detector latches: the callback
/// fires exactly once, and the surviving replica keeps being monitored
/// (a later real failure of the survivor is still reported).
#[test]
fn failure_report_is_single_shot_and_survivors_stay_monitored() {
    let (mut w, mut eng) = ClusterBuilder::new(3).arena_size(2 << 20).seed(6).build();
    let (group, _client) = build_group(&mut w, &mut eng, vec![HostId(1), HostId(2)]);

    let failures = Rc::new(RefCell::new(Vec::new()));
    let f2 = failures.clone();
    recovery::start_heartbeats(
        &group,
        HeartbeatConfig {
            period: SimDuration::from_millis(5),
            miss_threshold: 3,
        },
        Box::new(move |_w, _e, idx| f2.borrow_mut().push(idx)),
        &mut w,
        &mut eng,
    );

    // Kill replica index 1 (host 2) permanently.
    eng.run_until(&mut w, SimTime::from_nanos(20_000_000));
    w.fabric.set_link_down(HostId(2), true);
    eng.run_until(&mut w, SimTime::from_nanos(300_000_000));
    assert_eq!(*failures.borrow(), vec![1], "exactly one report for idx 1");

    // Now replica index 0 (host 1) dies too; it must also be reported.
    w.fabric.set_link_down(HostId(1), true);
    eng.run_until(&mut w, SimTime::from_nanos(600_000_000));
    assert_eq!(*failures.borrow(), vec![1, 0]);
}
