//! Criterion micro-benchmarks over the hot datapaths of every layer:
//! WQE codec, histogram recording, memtable ops, document codec,
//! zipfian draws, the DES engine, and small end-to-end group operations
//! on the simulated testbed. `cargo bench` keeps these fast; the
//! paper-figure harnesses live in `src/bin/fig*.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_sim::{Histogram, RngFactory};
use hl_store::doc::Document;
use hl_store::kv::Memtable;
use hl_ycsb::Zipfian;
use std::hint::black_box;

fn bench_wqe_codec(c: &mut Criterion) {
    let wqe = hl_rnic::Wqe {
        opcode: hl_rnic::Opcode::Write,
        flags: hl_rnic::flags::SIGNALED,
        len: 4096,
        laddr: 0x1000,
        raddr: 0x2000,
        lkey: 7,
        rkey: 9,
        ..Default::default()
    };
    c.bench_function("wqe_encode_decode", |b| {
        b.iter(|| {
            let enc = black_box(&wqe).encode();
            black_box(hl_rnic::Wqe::decode(&enc))
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(x >> 40));
        })
    });
    c.bench_function("histogram_p99", |b| {
        let mut h = Histogram::new();
        for v in 0..100_000u64 {
            h.record(v % 10_000);
        }
        b.iter(|| black_box(h.p99()))
    });
}

fn bench_memtable(c: &mut Criterion) {
    c.bench_function("memtable_put_get", |b| {
        let mut m = Memtable::new();
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 10_000;
            let key = k.to_le_bytes();
            m.put(&key, &[1u8; 64]);
            black_box(m.get(&key));
        })
    });
}

fn bench_document(c: &mut Criterion) {
    let doc = hl_ycsb::ycsb_document(42, 100);
    c.bench_function("document_slot_roundtrip", |b| {
        b.iter(|| {
            let slot = black_box(&doc).encode_slot(1536);
            black_box(Document::decode_slot(&slot))
        })
    });
}

fn bench_zipfian(c: &mut Criterion) {
    let z = Zipfian::ycsb(1_000_000);
    let mut rng = RngFactory::new(1).stream("bench");
    c.bench_function("zipfian_next", |b| {
        b.iter(|| black_box(z.next_rank(&mut rng)))
    });
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("des_engine_1k_events", |b| {
        b.iter(|| {
            let mut eng: hl_sim::Engine<u64> = hl_sim::Engine::new();
            let mut ctx = 0u64;
            for i in 0..1000u64 {
                eng.schedule(hl_sim::SimDuration::from_nanos(i), |c: &mut u64, _| *c += 1);
            }
            eng.run(&mut ctx);
            black_box(ctx)
        })
    });
}

/// End-to-end group operations on a full simulated 3-node chain. One
/// criterion iteration = a fresh world + 64 operations.
fn bench_group_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for (name, op) in [
        (
            "gwrite_1k",
            MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
        ),
        (
            "gwrite_1k_flush",
            MicroOp::GWrite {
                size: 1024,
                flush: true,
            },
        ),
        (
            "gmemcpy_1k",
            MicroOp::GMemcpy {
                size: 1024,
                flush: false,
            },
        ),
        ("gcas", MicroOp::GCas),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = run_micro(&MicroCfg {
                    backend: Backend::HyperLoop,
                    op,
                    ops: 64,
                    warmup: 8,
                    stress_per_host: 0,
                    ring_slots: 64,
                    ..Default::default()
                });
                black_box(r.latency.mean_ns)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_wqe_codec,
    bench_histogram,
    bench_memtable,
    bench_document,
    bench_zipfian,
    bench_engine,
    bench_group_ops
);
criterion_main!(benches);
