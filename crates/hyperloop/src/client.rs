//! The HyperLoop client: issues group operations and dispatches ACKs.
//!
//! The client is the chain head (the paper's transaction coordinator).
//! Issuing a group operation is three steps and involves no replica CPU:
//!
//! 1. apply the operation to the client's *own* copy of the replicated
//!    region (the client is a group member too);
//! 2. build the metadata message ([`crate::metadata::MetaMsg`]) whose
//!    per-replica records are the descriptors every downstream NIC will
//!    execute;
//! 3. post `WRITE [FLUSH] SEND` (gWRITE) or just `SEND` (gMEMCPY/gCAS)
//!    on the ring's outbound QP.
//!
//! The tail replica's NIC WRITE_IMMs the accumulated result map into the
//! client's ACK buffer; a zero-CPU CQ callback correlates the immediate
//! (sequence number) with the pending table and fires the caller's
//! completion closure.

use crate::group::{Backpressure, GroupRef, OnDone, OpResult};
use crate::metadata::{self, MetaMsg, Primitive};
use hl_cluster::World;
use hl_rnic::{CqeKind, CqeStatus, Opcode, RecvWqe, Wqe};
use hl_sim::telemetry::Stage;
use hl_sim::{Engine, OpKind, SimTime};

/// Handle used by applications and benchmarks to issue group operations.
#[derive(Clone)]
pub struct HyperLoopClient {
    group: GroupRef,
}

impl HyperLoopClient {
    /// Wrap a built group and subscribe the ACK dispatchers.
    pub fn new(group: GroupRef, w: &mut World) -> Self {
        let ch = group.borrow().cfg.client;
        for prim in Primitive::ALL {
            let rc = group.clone();
            let ack_rcq = group.borrow().client_rings[prim.idx()].ack_rcq;
            w.subscribe_cq_callback(ch, ack_rcq, move |cqe, w, eng| {
                dispatch_ack(&rc, cqe, w, eng);
            });
        }
        HyperLoopClient { group }
    }

    /// The underlying group (stats, layout, recovery hooks).
    pub fn group(&self) -> &GroupRef {
        &self.group
    }

    /// Group size (members incl. the client).
    pub fn group_size(&self) -> usize {
        self.group.borrow().g
    }

    /// gWRITE: replicate `data` at `offset` of the replicated region on
    /// every member. With `flush`, the write is durable on every member
    /// before the ACK (interleaved gFLUSH).
    pub fn gwrite(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        data: &[u8],
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let mut inner = self.group.borrow_mut();
        inner.take_credit(Primitive::GWrite)?;
        let seq = inner.alloc_seq();
        let slot = inner.alloc_slot(Primitive::GWrite);
        let g = inner.g;
        let n = inner.n_replicas();
        let ch = inner.cfg.client;
        let slots = inner.cfg.ring_slots as u64;
        let msg_len = inner.msg_len;

        // 1. Local apply (the client is the head member).
        let local = inner.client_rep.at(offset);
        w.host(ch)
            .mem
            .write(local, data)
            .expect("offset in rep region");
        if flush {
            w.host(ch).mem.flush(local, data.len()).unwrap();
        }

        // 2. Metadata.
        let op = w.telemetry.begin_op(eng.now(), OpKind::GWrite, ch.0);
        let mut msg = MetaMsg::new(g, seq);
        msg.set_op(op);
        for i in 0..n.saturating_sub(1) {
            let src = inner.replica_rep[i].at(offset);
            let dst = inner.replica_rep[i + 1].at(offset);
            let fop = if flush { Opcode::Flush } else { Opcode::Nop };
            msg.set_wrec(i, data.len() as u32, src, dst, fop, dst, data.len() as u32);
        }
        let staging = inner.client_rings[Primitive::GWrite.idx()]
            .staging
            .at((slot % slots) * msg_len);
        w.host(ch).mem.write(staging, msg.bytes()).unwrap();

        // 3. Post WRITE [FLUSH] SEND toward replica 0.
        let qp_out = inner.client_rings[Primitive::GWrite.idx()].qp_out;
        let r0 = inner.replica_rep[0].at(offset);
        let rkey0 = inner.rep_rkeys[0];
        let host = &mut w.hosts[ch.0];
        host.post_send(
            qp_out,
            Wqe {
                opcode: Opcode::Write,
                len: data.len() as u32,
                laddr: local,
                raddr: r0,
                rkey: rkey0,
                wr_id: seq as u64,
                op,
                ..Default::default()
            },
            false,
        )
        .expect("client SQ sized for inflight ops");
        if flush {
            host.post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Flush,
                    len: data.len() as u32,
                    raddr: r0,
                    rkey: rkey0,
                    wr_id: seq as u64,
                    op,
                    ..Default::default()
                },
                false,
            )
            .unwrap();
        }
        self.finish_issue(
            &mut inner,
            w,
            eng,
            Primitive::GWrite,
            seq,
            slot,
            staging,
            op,
            done,
        )
    }

    /// Standalone gFLUSH: make `[offset, offset+len)` durable on every
    /// member (a gWRITE-ring operation carrying no data).
    pub fn gflush(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        len: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let mut inner = self.group.borrow_mut();
        inner.take_credit(Primitive::GWrite)?;
        let seq = inner.alloc_seq();
        let slot = inner.alloc_slot(Primitive::GWrite);
        let g = inner.g;
        let n = inner.n_replicas();
        let ch = inner.cfg.client;
        let slots = inner.cfg.ring_slots as u64;
        let msg_len = inner.msg_len;

        let local = inner.client_rep.at(offset);
        w.host(ch).mem.flush(local, len as usize).unwrap();

        let op = w.telemetry.begin_op(eng.now(), OpKind::GFlush, ch.0);
        let mut msg = MetaMsg::new(g, seq);
        msg.set_op(op);
        for i in 0..n.saturating_sub(1) {
            let src = inner.replica_rep[i].at(offset);
            let dst = inner.replica_rep[i + 1].at(offset);
            // Zero-byte write + real flush of the downstream range.
            msg.set_wrec(i, 0, src, dst, Opcode::Flush, dst, len);
        }
        let staging = inner.client_rings[Primitive::GWrite.idx()]
            .staging
            .at((slot % slots) * msg_len);
        w.host(ch).mem.write(staging, msg.bytes()).unwrap();

        let qp_out = inner.client_rings[Primitive::GWrite.idx()].qp_out;
        let r0 = inner.replica_rep[0].at(offset);
        let rkey0 = inner.rep_rkeys[0];
        w.hosts[ch.0]
            .post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Flush,
                    len,
                    raddr: r0,
                    rkey: rkey0,
                    wr_id: seq as u64,
                    op,
                    ..Default::default()
                },
                false,
            )
            .expect("client SQ sized");
        self.finish_issue(
            &mut inner,
            w,
            eng,
            Primitive::GWrite,
            seq,
            slot,
            staging,
            op,
            done,
        )
    }

    /// gMEMCPY: every member's NIC copies `len` bytes from `src_off` to
    /// `dst_off` within its replicated region (log → database apply).
    #[allow(clippy::too_many_arguments)]
    pub fn gmemcpy(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        src_off: u64,
        dst_off: u64,
        len: u32,
        flush: bool,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let mut inner = self.group.borrow_mut();
        inner.take_credit(Primitive::GMemcpy)?;
        let seq = inner.alloc_seq();
        let slot = inner.alloc_slot(Primitive::GMemcpy);
        let g = inner.g;
        let n = inner.n_replicas();
        let ch = inner.cfg.client;
        let slots = inner.cfg.ring_slots as u64;
        let msg_len = inner.msg_len;

        // Local apply on the client's copy.
        let src = inner.client_rep.at(src_off);
        let dst = inner.client_rep.at(dst_off);
        let bytes = w.host(ch).mem.read_vec(src, len as usize).unwrap();
        w.host(ch).mem.write(dst, &bytes).unwrap();
        if flush {
            w.host(ch).mem.flush(dst, len as usize).unwrap();
        }

        let op = w.telemetry.begin_op(eng.now(), OpKind::GMemcpy, ch.0);
        let mut msg = MetaMsg::new(g, seq);
        msg.set_op(op);
        for i in 0..n {
            let src = inner.replica_rep[i].at(src_off);
            let dst = inner.replica_rep[i].at(dst_off);
            let fop = if flush {
                Opcode::LocalFlush
            } else {
                Opcode::Nop
            };
            msg.set_wrec(i, len, src, dst, fop, dst, len);
        }
        let staging = inner.client_rings[Primitive::GMemcpy.idx()]
            .staging
            .at((slot % slots) * msg_len);
        w.host(ch).mem.write(staging, msg.bytes()).unwrap();
        self.finish_issue(
            &mut inner,
            w,
            eng,
            Primitive::GMemcpy,
            seq,
            slot,
            staging,
            op,
            done,
        )
    }

    /// gCAS: compare-and-swap the u64 at `offset` on the members whose
    /// bit is set in `exec_map` (bit 0 = client). The completion carries
    /// the per-member result map (original values).
    #[allow(clippy::too_many_arguments)]
    pub fn gcas(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        offset: u64,
        cmp: u64,
        swp: u64,
        exec_map: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let mut inner = self.group.borrow_mut();
        inner.take_credit(Primitive::GCas)?;
        let seq = inner.alloc_seq();
        let slot = inner.alloc_slot(Primitive::GCas);
        let g = inner.g;
        let n = inner.n_replicas();
        let ch = inner.cfg.client;
        let slots = inner.cfg.ring_slots as u64;
        let msg_len = inner.msg_len;

        let op = w.telemetry.begin_op(eng.now(), OpKind::GCas, ch.0);
        let mut msg = MetaMsg::new(g, seq);
        msg.set_op(op);
        // Client-local CAS (member 0).
        if exec_map & 1 != 0 {
            let addr = inner.client_rep.at(offset);
            let orig = w.host(ch).mem.compare_and_swap_u64(addr, cmp, swp).unwrap();
            msg.set_result(0, orig);
        }
        for i in 0..n {
            let member = i + 1;
            let execute = exec_map & (1 << member) != 0;
            let target = inner.replica_rep[i].at(offset);
            // The replica CASes its original value into its own slot of
            // the staged message so the forwarded copy accumulates the
            // result map.
            let result = inner.rep_rings[i][Primitive::GCas.idx()]
                .staging
                .at((slot % slots) * msg_len)
                + metadata::results_off()
                + member as u64 * 8;
            msg.set_crec(i, execute, target, cmp, swp, result);
        }
        let staging = inner.client_rings[Primitive::GCas.idx()]
            .staging
            .at((slot % slots) * msg_len);
        w.host(ch).mem.write(staging, msg.bytes()).unwrap();
        self.finish_issue(
            &mut inner,
            w,
            eng,
            Primitive::GCas,
            seq,
            slot,
            staging,
            op,
            done,
        )
    }

    /// Common tail of every issue path: record the pending op, post the
    /// metadata SEND and ring the doorbell.
    #[allow(clippy::too_many_arguments)]
    fn finish_issue(
        &self,
        inner: &mut std::cell::RefMut<'_, crate::group::GroupInner>,
        w: &mut World,
        eng: &mut Engine<World>,
        prim: Primitive,
        seq: u32,
        slot: u64,
        staging: u64,
        op: u32,
        done: OnDone,
    ) -> Result<u32, Backpressure> {
        let ch = inner.cfg.client;
        let qp_out = inner.client_rings[prim.idx()].qp_out;
        let msg_len = inner.msg_len;
        w.hosts[ch.0]
            .post_send(
                qp_out,
                Wqe {
                    opcode: Opcode::Send,
                    len: msg_len as u32,
                    laddr: staging,
                    wr_id: seq as u64,
                    op,
                    ..Default::default()
                },
                false,
            )
            .expect("client SQ sized");
        inner.register_pending(seq, prim, slot, eng.now(), op, done);
        w.telemetry
            .stage(eng.now(), op, Stage::ClientPost, ch.0, qp_out);
        w.ring_doorbell(ch, qp_out, eng);
        Ok(seq)
    }
}

fn dispatch_ack(group: &GroupRef, cqe: hl_rnic::Cqe, w: &mut World, eng: &mut Engine<World>) {
    if cqe.kind != CqeKind::RecvImm || cqe.status != CqeStatus::Ok {
        return;
    }
    let mut inner = group.borrow_mut();
    let Some(p) = inner.complete_pending(cqe.imm) else {
        return;
    };
    let g = inner.g;
    let ch = inner.cfg.client;
    let slots = inner.cfg.ring_slots as u64;
    let ring = &inner.client_rings[p.prim.idx()];
    let ack_addr = ring.ack_buf.at((p.slot % slots) * 8 * g as u64);
    let ack_qp = ring.ack_qp;
    let bytes = w.host(ch).mem.read_vec(ack_addr, 8 * g).unwrap();
    let results = metadata::parse_results(&bytes, g);
    // gCAS: merge the client's locally computed result (member 0) from
    // the staged message header (the ACK carries it too, since the tail
    // forwards the staged copy, so nothing to do).
    // Repost the consumed ACK receive.
    w.host(ch).post_recv(
        ack_qp,
        RecvWqe {
            wr_id: p.slot + slots,
            scatter: vec![],
        },
    );
    let latency = eng.now().duration_since(p.issued_at);
    drop(inner);
    // The ACK WRITE_IMM carried the op id end to end; fall back to the
    // pending record for ops issued before tracing was enabled.
    let op = if cqe.op != 0 { cqe.op } else { p.op };
    w.telemetry.end_op(eng.now(), op, ch.0);
    if w.telemetry.enabled() {
        let kind = match p.prim {
            Primitive::GWrite => "gWRITE-ring",
            Primitive::GMemcpy => "gMEMCPY",
            Primitive::GCas => "gCAS",
        };
        w.telemetry.metrics.histogram_record(
            "hyperloop_op_latency_ns",
            &format!("prim={kind}"),
            latency.as_nanos(),
        );
        let now = eng.now();
        w.telemetry.series.record(
            now,
            "hyperloop_op_latency_ns",
            &format!("prim={kind}"),
            latency.as_nanos(),
        );
    }
    if let Some(done) = p.done {
        done(
            w,
            eng,
            OpResult {
                seq: cqe.imm,
                results,
                latency,
            },
        );
    }
}

/// Crate-internal pending-table handles (kept on `GroupInner` so the
/// dispatcher and issue paths share them).
pub(crate) struct CompletedPending {
    pub prim: Primitive,
    pub issued_at: SimTime,
    pub slot: u64,
    pub op: u32,
    pub done: Option<OnDone>,
}
