//! Shared, immutable, reference-counted byte buffer for the zero-copy
//! datapath.
//!
//! A gWRITE payload is gathered out of the source arena exactly once;
//! from then on every place that used to `clone()` a `Vec<u8>` — the
//! packet handed to the fabric, the requester's unacked retransmit
//! list, the responder's duplicate-replay cache — clones a [`Bytes`],
//! which bumps a refcount instead of copying the payload. The single
//! real copy left on the receive side is the DMA into simulated NVM.
//!
//! Backed by `Rc`, not `Arc`: each simulation is single-threaded by
//! construction (the determinism contract), and the parallel campaign
//! runner gives every seed its own world on its own thread, so buffers
//! never cross threads.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// Cheaply clonable view of an immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    buf: Rc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Take ownership of `v` without copying it.
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            buf: Rc::new(v),
            off: 0,
            len,
        }
    }

    /// Copy `s` into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from_vec(s.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }

    /// A sub-view of `self` sharing the same allocation. Panics when
    /// the range escapes the current view.
    pub fn slice(&self, start: usize, end: usize) -> Bytes {
        assert!(start <= end && end <= self.len, "slice out of range");
        Bytes {
            buf: self.buf.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// How many `Bytes` handles share this allocation (diagnostics and
    /// copy-count tests).
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.buf)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Self::from_vec(a.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes[{}]", self.len)?;
        if self.len <= 8 {
            write!(f, "{:?}", self.as_slice())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from_vec(vec![1, 2, 3, 4]);
        let b = a.clone();
        let c = b.clone();
        assert_eq!(a.ref_count(), 3);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
        drop(b);
        assert_eq!(a.ref_count(), 2);
    }

    #[test]
    fn slices_share_and_view() {
        let a = Bytes::from_vec((0..16).collect());
        let s = a.slice(4, 8);
        assert_eq!(s.as_slice(), &[4, 5, 6, 7]);
        assert_eq!(s.len(), 4);
        assert_eq!(a.ref_count(), 2);
        let ss = s.slice(1, 3);
        assert_eq!(ss.as_slice(), &[5, 6]);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn slice_bounds_checked() {
        Bytes::from_vec(vec![0; 4]).slice(2, 6);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from_vec(vec![9, 9]);
        let b = Bytes::copy_from_slice(&[9, 9]);
        assert_eq!(a, b);
        assert_eq!(a, vec![9, 9]);
        assert_eq!(&a[..], &[9u8, 9][..]);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let a: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(a.iter().sum::<u8>(), 6);
        assert_eq!(&a[1..], &[2, 3]);
    }
}
