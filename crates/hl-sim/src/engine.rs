//! The discrete-event engine.
//!
//! A single-threaded, deterministic event loop. Events are boxed
//! `FnOnce(&mut C, &mut Engine<C>)` closures ordered by `(time, seq)`,
//! where `seq` is a monotonically increasing tiebreaker so that events
//! scheduled for the same instant fire in scheduling order. Determinism
//! therefore depends only on the order of `schedule` calls and the RNG
//! seed — never on hash iteration order or wall-clock time.
//!
//! The context type `C` is the simulated world (hosts, network, …). The
//! engine is passed alongside the context to every handler so handlers
//! can schedule follow-up events.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Event handler signature: mutate the world, schedule more events.
pub type Handler<C> = Box<dyn FnOnce(&mut C, &mut Engine<C>)>;

struct Scheduled<C> {
    at: SimTime,
    seq: u64,
    run: Handler<C>,
}

impl<C> PartialEq for Scheduled<C> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<C> Eq for Scheduled<C> {}
impl<C> PartialOrd for Scheduled<C> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<C> Ord for Scheduled<C> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic discrete-event loop over a world of type `C`.
///
/// ```
/// use hl_sim::{Engine, SimDuration};
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// let mut world = Vec::new();
/// engine.schedule(SimDuration::from_micros(5), |w: &mut Vec<u64>, eng| {
///     w.push(eng.now().as_nanos());
/// });
/// engine.run(&mut world);
/// assert_eq!(world, vec![5_000]);
/// ```
pub struct Engine<C> {
    queue: BinaryHeap<Scheduled<C>>,
    now: SimTime,
    seq: u64,
    executed: u64,
    /// Hard cap on executed events, a runaway-loop backstop.
    event_limit: u64,
}

impl<C> Default for Engine<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C> Engine<C> {
    /// A fresh engine at t = 0.
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Limit the total number of events executed (safety net for tests).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events waiting in the queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule<F>(&mut self, delay: SimDuration, f: F)
    where
        F: FnOnce(&mut C, &mut Engine<C>) + 'static,
    {
        self.schedule_at(self.now + delay, f);
    }

    /// Schedule `f` at an absolute instant. Events in the past are clamped
    /// to `now` (they still run after already-queued events at `now`,
    /// because of the `seq` tiebreaker).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F)
    where
        F: FnOnce(&mut C, &mut Engine<C>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
    }

    /// Run a single event if one is pending. Returns `false` when idle.
    pub fn step(&mut self, ctx: &mut C) -> bool {
        if self.executed >= self.event_limit {
            panic!(
                "engine event limit ({}) exceeded at t={} — runaway event loop?",
                self.event_limit, self.now
            );
        }
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "time went backwards");
                self.now = ev.at;
                self.executed += 1;
                (ev.run)(ctx, self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue is empty.
    pub fn run(&mut self, ctx: &mut C) {
        while self.step(ctx) {}
    }

    /// Run until the queue is empty or the clock passes `deadline`.
    /// Events scheduled after the deadline remain queued; the clock is
    /// left at the last executed event (≤ deadline).
    pub fn run_until(&mut self, ctx: &mut C, deadline: SimTime) {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step(ctx);
        }
    }

    /// Run until `pred(ctx)` is true, checking after every event, or until
    /// the queue drains. Returns whether the predicate was satisfied.
    pub fn run_while<F>(&mut self, ctx: &mut C, mut pred: F) -> bool
    where
        F: FnMut(&C) -> bool,
    {
        loop {
            if !pred(ctx) {
                return true;
            }
            if !self.step(ctx) {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule(SimDuration::from_nanos(30), |w: &mut World, _| {
            w.log.push((30, "c"))
        });
        eng.schedule(SimDuration::from_nanos(10), |w: &mut World, _| {
            w.log.push((10, "a"))
        });
        eng.schedule(SimDuration::from_nanos(20), |w: &mut World, _| {
            w.log.push((20, "b"))
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(eng.events_executed(), 3);
    }

    #[test]
    fn same_instant_fires_in_schedule_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            eng.schedule(SimDuration::from_nanos(5), move |w: &mut World, _| {
                w.log.push((5, name))
            });
        }
        eng.run(&mut w);
        assert_eq!(
            w.log.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn handlers_can_schedule_chains() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        fn tick(w: &mut World, eng: &mut Engine<World>) {
            let n = w.log.len() as u64;
            w.log.push((eng.now().as_nanos(), "tick"));
            if n < 4 {
                eng.schedule(SimDuration::from_nanos(7), tick);
            }
        }
        eng.schedule(SimDuration::ZERO, tick);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 5);
        assert_eq!(eng.now().as_nanos(), 28);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for ns in [5u64, 15, 25] {
            eng.schedule(SimDuration::from_nanos(ns), move |w: &mut World, _| {
                w.log.push((ns, "x"))
            });
        }
        eng.run_until(&mut w, SimTime::from_nanos(16));
        assert_eq!(w.log.len(), 2);
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 3);
    }

    #[test]
    fn run_while_checks_predicate() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for ns in 1..=10u64 {
            eng.schedule(SimDuration::from_nanos(ns), move |w: &mut World, _| {
                w.log.push((ns, "x"))
            });
        }
        let satisfied = eng.run_while(&mut w, |w| w.log.len() < 4);
        assert!(satisfied);
        assert_eq!(w.log.len(), 4);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        eng.schedule(SimDuration::from_nanos(100), move |_: &mut World, eng| {
            let s3 = s2.clone();
            // Attempt to schedule in the past; must clamp to now (=100).
            eng.schedule_at(SimTime::from_nanos(1), move |_, eng| {
                s3.borrow_mut().push(eng.now().as_nanos());
            });
        });
        eng.run(&mut w);
        assert_eq!(*seen.borrow(), vec![100]);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaways() {
        let mut eng: Engine<World> = Engine::new().with_event_limit(50);
        let mut w = World::default();
        fn forever(_: &mut World, eng: &mut Engine<World>) {
            eng.schedule(SimDuration::from_nanos(1), forever);
        }
        eng.schedule(SimDuration::ZERO, forever);
        eng.run(&mut w);
    }
}
