//! ShardRouter unit tests: placement determinism, balance, minimal
//! remap on shard-count growth, and end-to-end keyed routing (writes
//! land on the owning shard, telemetry counters carry shard labels).

use hl_cluster::shard::HashRing;
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimTime};
use hyperloop::api::GroupClient;
use hyperloop::{
    replica, GroupBuilder, GroupConfig, HyperLoopClient, OnOutcome, RetryClient, ShardRouter,
};
use std::cell::RefCell;
use std::rc::Rc;

const REP_BYTES: u64 = 16 << 10;

/// Build `n_shards` single-replica groups on hosts `2s` (client) and
/// `2s + 1` (replica) plus a router over them.
fn build_router(n_shards: usize) -> (World, Engine<World>, ShardRouter) {
    let (mut w, mut eng) = ClusterBuilder::new(2 * n_shards)
        .arena_size(4 << 20)
        .seed(11)
        .build();
    let mut shards = Vec::with_capacity(n_shards);
    for s in 0..n_shards {
        let group = GroupBuilder::new(GroupConfig {
            client: HostId(2 * s),
            replicas: vec![HostId(2 * s + 1)],
            rep_bytes: REP_BYTES,
            ring_slots: 64,
            ..Default::default()
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        shards.push(RetryClient::new(HyperLoopClient::new(group, &mut w)));
    }
    // Prime the chains before any traffic.
    eng.run_until(&mut w, SimTime::from_nanos(2_000_000));
    (w, eng, ShardRouter::new(shards))
}

/// Routing is a pure function of the key: byte and u64 routes agree,
/// and two independently-built routers of the same width map every key
/// identically (and identically to a bare ring of the same width).
#[test]
fn routing_is_deterministic() {
    let (_w1, _e1, r1) = build_router(4);
    let (_w2, _e2, r2) = build_router(4);
    let ring = HashRing::new(4);
    for k in 0..4096u64 {
        let sid = r1.shard_of_u64(k);
        assert_eq!(sid, r2.shard_of_u64(k));
        assert_eq!(sid, ring.shard_of_u64(k));
        assert_eq!(sid, r1.shard_of(&k.to_le_bytes()));
        assert!(sid < r1.n_shards());
    }
}

/// Key placement across 8 shards is balanced within 20% of the mean.
#[test]
fn placement_balances_within_20pct_across_8_shards() {
    let (_w, _e, router) = build_router(8);
    const KEYS: u64 = 64 * 1024;
    let mut counts = vec![0u64; router.n_shards()];
    for k in 0..KEYS {
        counts[router.shard_of_u64(k)] += 1;
    }
    let mean = KEYS as f64 / counts.len() as f64;
    for (sid, &c) in counts.iter().enumerate() {
        let dev = (c as f64 - mean).abs() / mean;
        assert!(
            dev <= 0.20,
            "shard {sid} holds {c} keys, {:.1}% off the mean {mean}",
            dev * 100.0
        );
    }
}

/// Growing 8 → 9 shards remaps only ~1/9 of the keyspace, and every
/// remapped key lands on the new shard (consistent-hash minimal churn).
#[test]
fn growth_remaps_only_one_over_n_keys() {
    let (_w8, _e8, r8) = build_router(8);
    let (_w9, _e9, r9) = build_router(9);
    const KEYS: u64 = 64 * 1024;
    let mut moved = 0u64;
    for k in 0..KEYS {
        let (a, b) = (r8.shard_of_u64(k), r9.shard_of_u64(k));
        if a != b {
            assert_eq!(b, 8, "key {k} moved {a}->{b}, not onto the new shard");
            moved += 1;
        }
    }
    let ideal = KEYS as f64 / 9.0;
    assert!(
        (moved as f64) > 0.5 * ideal && (moved as f64) < 2.0 * ideal,
        "moved {moved} keys; ideal ~{ideal:.0}"
    );
}

/// Shrinking 9 → 8 shards with `merge_shard` remaps *only* the removed
/// shard's keys, and every one of them lands on the designated
/// survivor — no bystander shard gains or loses a single key.
#[test]
fn shrink_remaps_removed_shard_keys_onto_survivor_only() {
    let r9 = HashRing::new(9);
    let merged = r9.merge_shard(8, 3);
    assert_eq!(merged.n_shards(), 8);
    const KEYS: u64 = 64 * 1024;
    let mut moved = 0u64;
    for k in 0..KEYS {
        let (a, b) = (r9.shard_of_u64(k), merged.shard_of_u64(k));
        if a == 8 {
            assert_eq!(b, 3, "key {k} of the removed shard missed the survivor");
            moved += 1;
        } else {
            assert_eq!(a, b, "key {k} moved {a}->{b} though its shard survives");
        }
    }
    let ideal = KEYS as f64 / 9.0;
    assert!(
        (moved as f64) > 0.5 * ideal && (moved as f64) < 2.0 * ideal,
        "moved {moved} keys; ideal ~{ideal:.0}"
    );
}

/// Live shrink through the dual window: a write for a key the merge
/// moves parks while the window is open, and the install replays it
/// onto the surviving owner — the removed shard's chain never sees it.
#[test]
fn merge_window_replays_parked_writes_onto_survivor() {
    let (mut w, mut eng, router) = build_router(3);
    let merged_ring = router.ring().merge_shard(2, 0);

    // One key the merge moves (2 -> 0) and one owned by a bystander.
    let k_move = (0..u64::MAX)
        .find(|&k| router.shard_of_u64(k) == 2 && merged_ring.shard_of_u64(k) == 0)
        .unwrap();
    let k_stay = (0..u64::MAX)
        .find(|&k| router.shard_of_u64(k) == 1 && merged_ring.shard_of_u64(k) == 1)
        .unwrap();
    let victim = router.client(2).client();

    router.open_window(merged_ring.clone());
    let done_move = Rc::new(RefCell::new(false));
    let done_stay = Rc::new(RefCell::new(false));
    {
        let d = done_move.clone();
        router.gwrite_keyed(
            &mut w,
            &mut eng,
            &k_move.to_le_bytes(),
            128,
            &[0xAB; 32],
            true,
            Box::new(move |_w, _e, r| {
                r.expect("replayed write must complete");
                *d.borrow_mut() = true;
            }),
        );
    }
    {
        let d = done_stay.clone();
        router.gwrite_keyed(
            &mut w,
            &mut eng,
            &k_stay.to_le_bytes(),
            256,
            &[0xCD; 32],
            true,
            Box::new(move |_w, _e, r| {
                r.expect("bystander write must complete");
                *d.borrow_mut() = true;
            }),
        );
    }
    assert_eq!(router.parked(), 1, "moving-key write must park");
    let ds = done_stay.clone();
    eng.run_while(&mut w, move |_| !*ds.borrow());
    assert!(
        !*done_move.borrow(),
        "parked write completed before the flip"
    );

    let survivors = vec![router.client(0), router.client(1)];
    router.install(&mut w, &mut eng, merged_ring, survivors);
    assert_eq!(router.epoch(), 1);
    assert_eq!(router.parked(), 0);
    let dm = done_move.clone();
    eng.run_while(&mut w, move |_| !*dm.borrow());

    // Payload on every member of the survivor; the removed chain clean.
    let survivor = router.client(0).client();
    for m in 0..survivor.group_size() {
        let host = survivor.member_host(m);
        let got = w.hosts[host.0]
            .mem
            .read_vec(survivor.member_addr(m, 128), 32)
            .unwrap();
        assert_eq!(got, vec![0xAB; 32], "survivor member {m} missing replay");
    }
    for m in 0..victim.group_size() {
        let host = victim.member_host(m);
        let got = w.hosts[host.0]
            .mem
            .read_vec(victim.member_addr(m, 128), 32)
            .unwrap();
        assert_eq!(got, vec![0u8; 32], "removed shard member {m} saw the write");
    }
}

/// Keyed writes reach the owning shard's replicas (and only that
/// shard), and the router's telemetry counters account for every issue
/// under `shard=<n>` labels.
#[test]
fn keyed_writes_land_on_owning_shard() {
    let (mut w, mut eng, router) = build_router(4);
    w.enable_telemetry();
    const OPS: u64 = 64;
    const LEN: usize = 32;

    let mut expected: Vec<(usize, u64, u8)> = Vec::new(); // (shard, offset, fill)
    for i in 0..OPS {
        let key = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let sid = router.shard_of_u64(key);
        let offset = i * 64;
        let fill = (key & 0xff) as u8;
        expected.push((sid, offset, fill));

        let done_flag = Rc::new(RefCell::new(false));
        let d = done_flag.clone();
        let done: OnOutcome = Box::new(move |_w, _e, r| {
            r.expect("fault-free write must complete");
            *d.borrow_mut() = true;
        });
        router.gwrite_keyed(
            &mut w,
            &mut eng,
            &key.to_le_bytes(),
            offset,
            &[fill; LEN],
            true,
            done,
        );
        let d2 = done_flag.clone();
        eng.run_while(&mut w, move |_| !*d2.borrow());
        assert!(*done_flag.borrow(), "write {i} never completed");
    }
    assert_eq!(router.failures().len(), 0);
    assert_eq!(router.outstanding(), 0);

    // Every member of the owning shard holds the payload; the same
    // offset on every *other* shard is untouched (still zero).
    for &(sid, offset, fill) in &expected {
        for other in 0..router.n_shards() {
            let c = router.client(other).client();
            for m in 0..c.group_size() {
                let host = c.member_host(m);
                let got = w.hosts[host.0]
                    .mem
                    .read_vec(c.member_addr(m, offset), LEN)
                    .unwrap();
                if other == sid {
                    assert_eq!(got, vec![fill; LEN], "shard {sid} member {m} @{offset}");
                } else {
                    assert_eq!(got, vec![0u8; LEN], "shard {other} dirtied @{offset}");
                }
            }
        }
    }

    // Telemetry: per-shard router_ops counters sum to the issue count.
    let now = eng.now();
    w.collect_metrics(now);
    let rendered = w.telemetry.metrics.render();
    let total: u64 = rendered
        .lines()
        .filter(|l| l.contains("router_ops") && l.contains("shard="))
        .filter_map(|l| l.split_whitespace().last()?.parse::<u64>().ok())
        .sum();
    assert_eq!(
        total, OPS,
        "router_ops counters must cover every issue:\n{rendered}"
    );
}

/// Satellite regression: the router's telemetry writes are gated — a
/// world without telemetry records neither labelled counters nor
/// windowed series, while an enabled one accounts for every issue in
/// both (`router_ops{shard=N}` counters and the per-shard
/// `op_latency_ns{shard=N}` latency sketches the timeline renders).
#[test]
fn router_series_gated_on_telemetry() {
    const OPS: u64 = 16;
    let run = |w: &mut World, eng: &mut Engine<World>, router: &ShardRouter| {
        for i in 0..OPS {
            let key = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let done: OnOutcome = Box::new(|_w, _e, r| {
                r.expect("fault-free write must complete");
            });
            router.gwrite_keyed(w, eng, &key.to_le_bytes(), i * 64, &[7u8; 32], true, done);
        }
        let r2: Vec<_> = (0..router.n_shards())
            .map(|s| router.client(s).clone())
            .collect();
        eng.run_while(w, move |_| r2.iter().any(|c| c.outstanding() > 0));
    };

    // Telemetry off: nothing recorded anywhere, and nothing panics.
    let (mut w, mut eng, router) = build_router(2);
    run(&mut w, &mut eng, &router);
    for s in 0..2 {
        assert_eq!(
            w.telemetry
                .metrics
                .counter("router_ops", &format!("shard={s}")),
            0,
            "disabled telemetry must not count"
        );
    }
    assert!(
        w.telemetry
            .series
            .sketch_label_sets("op_latency_ns")
            .is_empty(),
        "disabled series must stay empty"
    );

    // Time-series on: every issue lands in both stores, per shard.
    let (mut w, mut eng, router) = build_router(2);
    w.enable_timeseries(hl_sim::SimDuration::from_millis(1));
    run(&mut w, &mut eng, &router);
    let counted: u64 = (0..2)
        .map(|s| {
            w.telemetry
                .metrics
                .counter("router_ops", &format!("shard={s}"))
        })
        .sum();
    assert_eq!(counted, OPS, "router_ops counters must account every issue");
    let sketched: u64 = (0..2)
        .map(|s| {
            w.telemetry
                .series
                .merged_sketch("op_latency_ns", &format!("shard={s}"))
                .count()
        })
        .sum();
    assert_eq!(
        sketched, OPS,
        "per-shard latency sketches must cover every op"
    );
    for s in 0..2 {
        assert!(
            w.telemetry
                .series
                .merged_sketch("op_latency_ns", &format!("shard={s}"))
                .count()
                > 0,
            "shard {s} recorded no latency samples"
        );
    }
}
