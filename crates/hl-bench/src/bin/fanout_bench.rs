//! Extension bench (paper §7): chain vs fan-out replication, both
//! fully NIC-offloaded, across replication factors.
//!
//! The chain's dependency depth grows with the group (one NIC hop per
//! replica) while fan-out keeps two hops but serializes the payload
//! once per backup on the primary's egress port — so fan-out wins on
//! latency for short chains/small payloads and loses egress bandwidth
//! and QP locality, which is exactly the trade-off the paper cites for
//! preferring chains in multi-tenant storage.
//!
//! Usage: `fanout_bench [--ops N]`

use hl_bench::table::{us, Table};
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Histogram, SimDuration};
use hyperloop::fanout::{self, FanoutBuilder, FanoutConfig};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use std::cell::RefCell;
use std::rc::Rc;

fn run_chain(replicas: usize, size: usize, ops: u32) -> hl_sim::Summary {
    let (mut w, mut eng) = ClusterBuilder::new(replicas + 1)
        .arena_size(4 << 20)
        .seed(5)
        .build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: (1..=replicas).map(HostId).collect(),
        rep_bytes: 1 << 20,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group, &mut w);
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let done = Rc::new(RefCell::new(0u32));
    for k in 0..ops {
        let h = hist.clone();
        let d = done.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                (k as u64 % 64) * size as u64,
                &vec![k as u8; size],
                false,
                Box::new(move |_w, _e, r| {
                    h.borrow_mut().record(r.latency.as_nanos());
                    *d.borrow_mut() += 1;
                }),
            )
            .unwrap();
        let d2 = done.clone();
        let want = k + 1;
        eng.run_while(&mut w, move |_: &World| *d2.borrow() < want);
    }
    let s = hist.borrow().summary();
    s
}

fn run_fanout(backups: usize, size: usize, ops: u32) -> hl_sim::Summary {
    let (mut w, mut eng) = ClusterBuilder::new(backups + 2)
        .arena_size(4 << 20)
        .seed(5)
        .build();
    let group = FanoutBuilder::new(FanoutConfig {
        client: HostId(0),
        primary: HostId(1),
        backups: (2..2 + backups).map(HostId).collect(),
        rep_bytes: 1 << 20,
        ring_slots: 64,
        replenish_period: SimDuration::from_micros(100),
    })
    .build(&mut w);
    fanout::start_replenisher(&group, &mut w, &mut eng);
    let client = fanout::FanoutClient::new(group, &mut w);
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let done = Rc::new(RefCell::new(0u32));
    for k in 0..ops {
        let h = hist.clone();
        let d = done.clone();
        client
            .gwrite(
                &mut w,
                &mut eng,
                (k as u64 % 64) * size as u64,
                &vec![k as u8; size],
                Box::new(move |_w, _e, r| {
                    h.borrow_mut().record(r.latency.as_nanos());
                    *d.borrow_mut() += 1;
                }),
            )
            .unwrap();
        let d2 = done.clone();
        let want = k + 1;
        eng.run_while(&mut w, move |_: &World| *d2.borrow() < want);
    }
    let s = hist.borrow().summary();
    s
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ops: u32 = args
        .iter()
        .position(|a| a == "--ops")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    for size in [1024usize, 16384] {
        println!("\n== chain vs fan-out gWRITE, {size}B payload (avg / p99 us, no load) ==");
        let mut t = Table::new(&[
            "replicas",
            "chain avg",
            "chain p99",
            "fanout avg",
            "fanout p99",
        ]);
        for replicas in [2usize, 4, 6] {
            let chain = run_chain(replicas, size, ops);
            // Fan-out with the same replication factor: primary + (r-1)
            // backups hold the copies.
            let fo = run_fanout(replicas - 1, size, ops);
            t.row(&[
                replicas.to_string(),
                format!("{:.1}", chain.mean_us()),
                us(chain.p99_ns),
                format!("{:.1}", fo.mean_us()),
                us(fo.p99_ns),
            ]);
        }
        t.print();
    }
    println!("\nfan-out flattens latency vs chain depth but serializes the payload per backup");
    println!("on the primary's egress (visible at 16KB) and concentrates QP state — the");
    println!("paper's rationale for chains in multi-tenant storage (§7).");
}
