//! Sharded campaign: aggregate throughput scaling over 1→N HyperLoop
//! groups.
//!
//! Each shard is a full, independent HyperLoop group — its own chain of
//! pre-posted WQE rings, WAIT wiring and NVM region — placed on
//! *disjoint* hosts by [`ShardPlan::place`], all inside one
//! deterministic event engine. A per-shard closed-loop pump keeps
//! `pipeline` supervised gWRITEs outstanding through the
//! [`ShardRouter`], with keys pre-bucketed by the router's own
//! consistent-hash ring so the routed path is exercised end to end.
//! Because shards share no host NIC, CPU or egress FIFO, aggregate
//! ops/sec scales near-linearly with the shard count — the scale-out
//! claim this campaign measures.

use hl_cluster::shard::ShardPlan;
use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, Histogram, SimDuration, SimTime, Summary};
use hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupOp, HyperLoopClient, RetryClient,
    ShardRouter,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of one sharded campaign run.
#[derive(Debug, Clone)]
pub struct ShardCampaignCfg {
    /// Number of independent HyperLoop groups.
    pub n_shards: usize,
    /// Replicas per shard (group size is `1 + replicas_per_shard`).
    pub replicas_per_shard: usize,
    /// Recorded operations per shard.
    pub ops_per_shard: usize,
    /// Unrecorded warmup operations per shard.
    pub warmup_per_shard: usize,
    /// Outstanding operations per shard.
    pub pipeline: usize,
    /// gWRITE payload bytes.
    pub write_size: usize,
    /// Pre-posted ring depth per shard.
    pub ring_slots: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Collect labelled metrics (per-shard `router_ops` counters).
    pub telemetry: bool,
}

impl Default for ShardCampaignCfg {
    fn default() -> Self {
        ShardCampaignCfg {
            n_shards: 1,
            replicas_per_shard: 2,
            ops_per_shard: 4_000,
            warmup_per_shard: 200,
            pipeline: 8,
            write_size: 512,
            ring_slots: 256,
            seed: 42,
            telemetry: false,
        }
    }
}

/// Measured outcome of a sharded campaign.
#[derive(Debug, Clone)]
pub struct ShardCampaignResult {
    /// Shard count.
    pub n_shards: usize,
    /// Total recorded operations across shards.
    pub total_ops: usize,
    /// Aggregate throughput over the measured window (Kops/s).
    pub agg_kops: f64,
    /// Per-shard throughput (Kops/s), indexed by shard id.
    pub per_shard_kops: Vec<f64>,
    /// Latency over all recorded operations.
    pub latency: Summary,
    /// Simulated seconds in the measured window.
    pub sim_secs: f64,
    /// Rendered labelled-metrics registry (`Some` iff telemetry).
    pub metrics: Option<String>,
    /// Windowed time-series JSON snapshot (`Some` iff telemetry) —
    /// carries the per-shard `op_latency_ns{shard=N}` sketch series.
    pub timeseries: Option<String>,
    /// One-line deterministic report (identical across same-seed
    /// re-runs; the scaling table and CI byte-identity check use it).
    pub report: String,
}

struct ShardPump {
    sid: usize,
    issued: usize,
    recorded: usize,
    total: usize,
    warmup: usize,
    done_at: Option<SimTime>,
    hist: Histogram,
    keys: Vec<u64>,
    write_size: usize,
}

/// Run one sharded campaign.
pub fn run_shard_campaign(cfg: &ShardCampaignCfg) -> ShardCampaignResult {
    let group_size = 1 + cfg.replicas_per_shard;
    let n_hosts = cfg.n_shards * group_size;
    let rep_bytes = (128 * cfg.write_size.max(64) as u64 + (64 << 10)).next_power_of_two();
    let arena = (rep_bytes as usize + (4 << 20)).next_power_of_two();

    let (mut w, mut eng) = ClusterBuilder::new(n_hosts)
        .arena_size(arena)
        .seed(cfg.seed)
        .build();
    if cfg.telemetry {
        w.enable_timeseries(hl_sim::timeseries::DEFAULT_WINDOW);
    }

    // Disjoint placement: every host serves exactly one group member.
    let hosts: Vec<HostId> = (0..n_hosts).map(HostId).collect();
    let plan = ShardPlan::place(cfg.n_shards, cfg.replicas_per_shard, &hosts);
    assert!(plan.is_disjoint(), "sized pool must place disjointly");

    let mut shards = Vec::with_capacity(cfg.n_shards);
    for g in &plan.groups {
        let group = GroupBuilder::new(GroupConfig {
            client: g.client,
            replicas: g.replicas.clone(),
            rep_bytes,
            ring_slots: cfg.ring_slots,
            replenish_period: SimDuration::from_micros(50),
            transport_timeout: None,
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        let client = HyperLoopClient::new(group, &mut w);
        shards.push(RetryClient::with_policy(client, DeadlinePolicy::default()));
    }
    let router = Rc::new(ShardRouter::new(shards));

    // Pre-bucket a deterministic key stream by the router's own ring so
    // the routed (keyed) issue path is what the campaign exercises.
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); cfg.n_shards];
    for k in 0..(1024 * cfg.n_shards as u64) {
        buckets[router.shard_of_u64(k)].push(k);
    }

    let pumps: Vec<Rc<RefCell<ShardPump>>> = buckets
        .into_iter()
        .enumerate()
        .map(|(sid, keys)| {
            Rc::new(RefCell::new(ShardPump {
                sid,
                issued: 0,
                recorded: 0,
                total: cfg.ops_per_shard + cfg.warmup_per_shard,
                warmup: cfg.warmup_per_shard,
                done_at: None,
                hist: Histogram::new(),
                keys,
                write_size: cfg.write_size,
            }))
        })
        .collect();

    // Prime the chains (replenishers, QP wiring), then measure.
    eng.run_until(&mut w, SimTime::from_nanos(2_000_000));
    let measure_from = eng.now();

    for pump in &pumps {
        for _ in 0..cfg.pipeline {
            issue_next(&router, pump, &mut w, &mut eng);
        }
    }
    let all = pumps.clone();
    eng.run_while(&mut w, move |_| {
        all.iter().any(|p| p.borrow().recorded < p.borrow().total)
    });
    let now = eng.now();
    let window = now.duration_since(measure_from).as_secs_f64();

    assert_eq!(
        router.failures().len(),
        0,
        "clean campaign must not fail ops"
    );

    let mut latency = Histogram::new();
    let mut per_shard_kops = Vec::with_capacity(cfg.n_shards);
    let mut total_ops = 0usize;
    for pump in &pumps {
        let p = pump.borrow();
        assert_eq!(p.recorded, p.total, "shard {} did not finish", p.sid);
        // Per-shard rate over that shard's own active window.
        let shard_window = p
            .done_at
            .expect("finished shard has a completion time")
            .duration_since(measure_from)
            .as_secs_f64();
        per_shard_kops.push((p.total - p.warmup) as f64 / shard_window / 1e3);
        total_ops += p.total - p.warmup;
        latency.merge(&p.hist);
    }
    let agg_kops = total_ops as f64 / window / 1e3;

    let metrics = cfg.telemetry.then(|| {
        w.collect_metrics(now);
        w.telemetry.metrics.render()
    });
    let timeseries = cfg.telemetry.then(|| w.telemetry.timeseries_json());

    let summary = latency.summary();
    let per_shard_str = per_shard_kops
        .iter()
        .map(|k| format!("{k:.1}"))
        .collect::<Vec<_>>()
        .join(",");
    let report = format!(
        "shards={} ops={} agg_kops={:.1} window_us={:.0} p50_ns={} p99_ns={} per_shard_kops=[{}]",
        cfg.n_shards,
        total_ops,
        agg_kops,
        window * 1e6,
        summary.p50_ns,
        summary.p99_ns,
        per_shard_str
    );

    ShardCampaignResult {
        n_shards: cfg.n_shards,
        total_ops,
        agg_kops,
        per_shard_kops,
        latency: summary,
        sim_secs: window,
        metrics,
        timeseries,
        report,
    }
}

fn issue_next(
    router: &Rc<ShardRouter>,
    pump: &Rc<RefCell<ShardPump>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let (sid, idx, key, size) = {
        let p = pump.borrow();
        if p.issued >= p.total {
            return;
        }
        let key = p.keys[p.issued % p.keys.len()];
        (p.sid, p.issued as u64, key, p.write_size)
    };
    pump.borrow_mut().issued += 1;
    debug_assert_eq!(
        router.shard_of_u64(key),
        sid,
        "bucketed key must route home"
    );

    let r2 = router.clone();
    let p2 = pump.clone();
    let issued_at = eng.now();
    let done: hyperloop::OnOutcome = Box::new(move |w, eng, r| {
        {
            let mut p = p2.borrow_mut();
            if r.is_ok() && p.recorded >= p.warmup {
                p.hist
                    .record(eng.now().duration_since(issued_at).as_nanos());
            }
            p.recorded += 1;
            if p.recorded == p.total {
                p.done_at = Some(eng.now());
            }
        }
        issue_next(&r2, &p2, w, eng);
    });

    // Rotate over 128 disjoint offsets so pipelined writes don't overlap.
    let slot = idx % 128;
    let data = hl_sim::Bytes::from(vec![(key & 0xff) as u8; size]);
    router.issue_on(
        w,
        eng,
        sid,
        GroupOp::Write {
            offset: slot * size.max(64) as u64,
            data,
            flush: false,
        },
        done,
    );
}

/// Run the campaign at each shard count and render the scaling table.
/// Returns the per-count results plus the aggregate speedup of the last
/// entry relative to the first.
pub fn scaling_sweep(
    base: &ShardCampaignCfg,
    shard_counts: &[usize],
) -> (Vec<ShardCampaignResult>, f64) {
    let mut results = Vec::with_capacity(shard_counts.len());
    for &n in shard_counts {
        let cfg = ShardCampaignCfg {
            n_shards: n,
            ..base.clone()
        };
        results.push(run_shard_campaign(&cfg));
    }
    let speedup = results.last().map_or(0.0, |last| {
        results.first().map_or(0.0, |first| {
            if first.agg_kops > 0.0 {
                last.agg_kops / first.agg_kops
            } else {
                0.0
            }
        })
    });
    (results, speedup)
}
