//! Property-based model check of NVM crash semantics: an arena under
//! random write/flush/crash sequences must agree with a two-image
//! shadow model.

use hl_nvm::NvmArena;
use proptest::prelude::*;

const N: usize = 512;

#[derive(Debug, Clone)]
enum Op {
    Write { at: u16, byte: u8, len: u8 },
    Flush { at: u16, len: u8 },
    FlushAll,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..N as u16, any::<u8>(), 1..64u8).prop_map(|(at, byte, len)| Op::Write { at, byte, len }),
        2 => (0..N as u16, 1..64u8).prop_map(|(at, len)| Op::Flush { at, len }),
        1 => Just(Op::FlushAll),
        1 => Just(Op::Crash),
    ]
}

proptest! {
    #[test]
    fn arena_matches_two_image_model(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut arena = NvmArena::new(N);
        let mut cur = vec![0u8; N];
        let mut dur = vec![0u8; N];
        let mut dirty = vec![false; N];

        for op in ops {
            match op {
                Op::Write { at, byte, len } => {
                    let at = at as usize;
                    let len = (len as usize).min(N - at);
                    if len == 0 { continue; }
                    arena.write(at as u64, &vec![byte; len]).unwrap();
                    for i in at..at + len {
                        cur[i] = byte;
                        dirty[i] = true;
                    }
                }
                Op::Flush { at, len } => {
                    let at = at as usize;
                    let len = (len as usize).min(N - at);
                    arena.flush(at as u64, len).unwrap();
                    for i in at..at + len {
                        if dirty[i] {
                            dur[i] = cur[i];
                            dirty[i] = false;
                        }
                    }
                }
                Op::FlushAll => {
                    arena.flush_all();
                    for i in 0..N {
                        if dirty[i] {
                            dur[i] = cur[i];
                            dirty[i] = false;
                        }
                    }
                }
                Op::Crash => {
                    arena.crash();
                    cur = dur.clone();
                    dirty = vec![false; N];
                }
            }
            // Invariants after every step.
            prop_assert_eq!(arena.read(0, N).unwrap(), &cur[..], "current image");
            prop_assert_eq!(arena.read_durable(0, N).unwrap(), &dur[..], "durable image");
            let model_dirty = dirty.iter().filter(|&&d| d).count() as u64;
            prop_assert_eq!(arena.dirty_bytes(), model_dirty, "dirty accounting");
        }
    }
}
