//! Micro-benchmarks over the hot datapaths of every layer: WQE codec,
//! histogram recording, memtable ops, document codec, zipfian draws, the
//! DES engine, and small end-to-end group operations on the simulated
//! testbed. Self-timed (the build environment has no registry access, so
//! criterion is unavailable); `cargo bench` keeps these fast and the
//! paper-figure harnesses live in `src/bin/fig*.rs`.

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};
use hl_sim::{Histogram, RngFactory};
use hl_store::doc::Document;
use hl_store::kv::Memtable;
use hl_ycsb::Zipfian;
use std::hint::black_box;
use std::time::Instant;

/// Time `iters` runs of `f` after a small warmup; print ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters.div_ceil(10) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:32} {per:>12.1} ns/iter  ({iters} iters)");
}

fn bench_wqe_codec() {
    let wqe = hl_rnic::Wqe {
        opcode: hl_rnic::Opcode::Write,
        flags: hl_rnic::flags::SIGNALED,
        len: 4096,
        laddr: 0x1000,
        raddr: 0x2000,
        lkey: 7,
        rkey: 9,
        ..Default::default()
    };
    bench("wqe_encode_decode", 1_000_000, || {
        let enc = black_box(&wqe).encode();
        black_box(hl_rnic::Wqe::decode(&enc));
    });
}

fn bench_histogram() {
    let mut h = Histogram::new();
    let mut x = 1u64;
    bench("histogram_record", 1_000_000, || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        h.record(black_box(x >> 40));
    });
    let mut h = Histogram::new();
    for v in 0..100_000u64 {
        h.record(v % 10_000);
    }
    bench("histogram_p99", 100_000, || {
        black_box(h.p99());
    });
}

fn bench_memtable() {
    let mut m = Memtable::new();
    let mut k = 0u64;
    bench("memtable_put_get", 500_000, || {
        k = (k + 1) % 10_000;
        let key = k.to_le_bytes();
        m.put(&key, &[1u8; 64]);
        black_box(m.get(&key));
    });
}

fn bench_document() {
    let doc = hl_ycsb::ycsb_document(42, 100);
    bench("document_slot_roundtrip", 200_000, || {
        let slot = black_box(&doc).encode_slot(1536);
        black_box(Document::decode_slot(&slot));
    });
}

fn bench_zipfian() {
    let z = Zipfian::ycsb(1_000_000);
    let mut rng = RngFactory::new(1).stream("bench");
    bench("zipfian_next", 1_000_000, || {
        black_box(z.next_rank(&mut rng));
    });
}

fn bench_engine() {
    bench("des_engine_1k_events", 2_000, || {
        let mut eng: hl_sim::Engine<u64> = hl_sim::Engine::new();
        let mut ctx = 0u64;
        for i in 0..1000u64 {
            eng.schedule(hl_sim::SimDuration::from_nanos(i), |c: &mut u64, _| *c += 1);
        }
        eng.run(&mut ctx);
        black_box(ctx);
    });
}

/// End-to-end group operations on a full simulated 3-node chain. One
/// iteration = a fresh world + 64 operations.
fn bench_group_ops() {
    for (name, op) in [
        (
            "end_to_end/gwrite_1k",
            MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
        ),
        (
            "end_to_end/gwrite_1k_flush",
            MicroOp::GWrite {
                size: 1024,
                flush: true,
            },
        ),
        (
            "end_to_end/gmemcpy_1k",
            MicroOp::GMemcpy {
                size: 1024,
                flush: false,
            },
        ),
        ("end_to_end/gcas", MicroOp::GCas),
    ] {
        bench(name, 10, || {
            let r = run_micro(&MicroCfg {
                backend: Backend::HyperLoop,
                op,
                ops: 64,
                warmup: 8,
                stress_per_host: 0,
                ring_slots: 64,
                ..Default::default()
            });
            black_box(r.latency.mean_ns);
        });
    }
}

fn main() {
    bench_wqe_codec();
    bench_histogram();
    bench_memtable();
    bench_document();
    bench_zipfian();
    bench_engine();
    bench_group_ops();
}
