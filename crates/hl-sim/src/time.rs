//! Simulated time.
//!
//! The simulator counts nanoseconds in a `u64`, which covers ~584 years of
//! simulated time — far beyond any experiment in this repository. Two
//! newtypes keep instants and durations from being mixed up: [`SimTime`]
//! is a point on the simulation clock, [`SimDuration`] is a span.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as "never" for idle components.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds since start, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds since start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Span from `earlier` to `self`. Panics if `earlier` is later
    /// than `self` — elapsed time in a monotonic simulator is never negative.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating variant of [`SimTime::duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable span; used as "infinite" timeouts.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from a float number of microseconds, rounding to nanos.
    pub fn from_micros_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation clock underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Human-readable rendering of a nanosecond count with an adaptive unit.
fn format_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a).as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_negative() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        let _ = a.duration_since(b);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.50us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.00ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn min_max_div_mul() {
        let a = SimDuration::from_micros(3);
        let b = SimDuration::from_micros(5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((a * 2).as_nanos(), 6_000);
        assert_eq!((b / 5).as_nanos(), 1_000);
    }
}
