//! Queue pairs: send-queue rings in host memory plus NIC-side receive
//! queues.

use crate::wqe::WQE_SIZE;
use std::collections::VecDeque;

/// A send-queue ring living in host memory.
///
/// `head` and `tail` are monotonically increasing indices; the slot of
/// index `i` is at `base + (i % capacity) * 64`. The NIC consumes at
/// `head`, the driver produces at `tail`.
#[derive(Debug, Clone)]
pub struct SqRing {
    /// Arena address of slot 0.
    pub base: u64,
    /// Number of slots.
    pub capacity: u32,
    /// Next WQE the NIC will look at.
    pub head: u64,
    /// One past the last posted WQE.
    pub tail: u64,
}

impl SqRing {
    /// New ring over `[base, base + capacity*64)`.
    pub fn new(base: u64, capacity: u32) -> Self {
        assert!(capacity > 0);
        SqRing {
            base,
            capacity,
            head: 0,
            tail: 0,
        }
    }

    /// Arena address of the slot holding index `idx`.
    pub fn slot_addr(&self, idx: u64) -> u64 {
        self.base + (idx % self.capacity as u64) * WQE_SIZE
    }

    /// Posted-but-unconsumed WQEs.
    pub fn depth(&self) -> u64 {
        self.tail - self.head
    }

    /// Is there room to post another WQE?
    pub fn has_room(&self) -> bool {
        self.depth() < self.capacity as u64
    }

    /// Total bytes of arena the ring occupies.
    pub fn byte_len(&self) -> u64 {
        self.capacity as u64 * WQE_SIZE
    }
}

/// One scatter target of a posted RECV.
///
/// `msg_off` selects which slice of the incoming message lands at
/// `addr` — this is the hook HyperLoop uses to point received metadata
/// *into the descriptor fields of pre-posted WQEs* (see DESIGN.md §7 for
/// the liberty taken vs. strictly sequential verbs SGE consumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScatterEntry {
    /// Offset within the incoming message.
    pub msg_off: u32,
    /// Bytes to scatter.
    pub len: u32,
    /// Arena destination address.
    pub addr: u64,
}

/// A posted receive work request (kept NIC-side; only send queues live
/// in host memory because only they are remotely manipulated).
#[derive(Debug, Clone)]
pub struct RecvWqe {
    /// Caller cookie echoed in the completion.
    pub wr_id: u64,
    /// Scatter list applied to the incoming payload.
    pub scatter: Vec<ScatterEntry>,
}

/// Queue-pair operational state (the subset of the ibverbs state
/// machine the model needs: `RTS → SQE/Error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QpState {
    /// Ready to send: the normal operating state.
    #[default]
    Rts,
    /// Send-queue error: a work request completed in error (NAK). The
    /// send queue halts until software acknowledges the error via
    /// [`Nic::recover_qp`](crate::Nic::recover_qp); receive processing
    /// continues. Only QPs with a transport timeout enter this state —
    /// legacy QPs keep the historical keep-going behaviour.
    Sqe,
    /// Fatal: the transport retry budget was exhausted. All outstanding
    /// and subsequently posted work completes with
    /// [`CqeStatus::FlushedInError`](crate::CqeStatus::FlushedInError).
    /// Unrecoverable in this model (as with real RC, the QP must be torn
    /// down and reconnected — see `hyperloop::recovery::rebuild_chain`).
    Error,
}

/// Transport-reliability knobs for one QP (set via
/// [`Nic::set_qp_timeout`](crate::Nic::set_qp_timeout)).
#[derive(Debug, Clone, Copy)]
pub struct QpTimeout {
    /// Ack timeout: how long a transmitted request may stay unacked
    /// before a go-back-N retransmission.
    pub timeout: hl_sim::SimDuration,
    /// Consecutive timeouts tolerated before the QP enters
    /// [`QpState::Error`].
    pub retry_cnt: u8,
}

/// One transmitted-but-unacked reliable request (requester side).
#[derive(Debug, Clone)]
pub struct PendingTx {
    /// Sequence number stamped on the packet.
    pub psn: u64,
    /// Destination NIC (for retransmission).
    pub dst_nic: u32,
    /// The packet as sent (retransmitted verbatim).
    pub packet: crate::packet::Packet,
    /// Requester cookie (for synthesized completions).
    pub wr_id: u64,
    /// Whether the requester asked for a completion.
    pub signaled: bool,
    /// Payload bytes (for synthesized completions).
    pub byte_len: u32,
}

/// A queue pair.
#[derive(Debug)]
pub struct Qp {
    /// QP number (index in the NIC's table).
    pub qpn: u32,
    /// CQ for send-side completions.
    pub send_cq: u32,
    /// CQ for receive-side completions.
    pub recv_cq: u32,
    /// Send ring (in host memory).
    pub sq: SqRing,
    /// Posted receives.
    pub rq: VecDeque<RecvWqe>,
    /// Shared receive queue, if attached: inbound SEND/WRITE_IMM
    /// consume from the SRQ instead of `rq`, so many QPs (e.g. one per
    /// client) drain one pre-posted ring in arrival order — the paper's
    /// §5 multi-client mechanism.
    pub srq: Option<u32>,
    /// Connected peer `(nic, qpn)`; `None` = loopback QP for NIC-local
    /// operations (gMEMCPY / gCAS local legs).
    pub remote: Option<(u32, u32)>,
    /// An outstanding fencing op (READ/FLUSH/CAS) blocks the SQ.
    pub fenced: bool,
    /// Is this QP parked in a CQ's waiter list (head is an unsatisfied
    /// WAIT)? Prevents duplicate registration.
    pub parked: bool,
    /// Earliest time the send engine is free (serializes WQE processing).
    pub busy_until: hl_sim::SimTime,
    /// Operational state.
    pub state: QpState,
    /// Retransmit protocol configuration; `None` = legacy fire-and-forget
    /// transport (the fabric-FIFO model), which is the default.
    pub timeout: Option<QpTimeout>,
    /// Next PSN to stamp on an outgoing reliable request.
    pub next_psn: u64,
    /// Expected PSN of the next inbound reliable request (responder).
    pub epsn: u64,
    /// Transmitted reliable requests awaiting a response, oldest first.
    pub unacked: VecDeque<PendingTx>,
    /// Consecutive ack-timeout expirations without forward progress.
    pub retries: u8,
    /// Generation counter for the retransmit timer: arming bumps it and
    /// stale timer events (older generation) are ignored.
    pub timer_gen: u64,
    /// Responder-side replay cache: the last response sent for a fencing
    /// op `(psn, response kind)`. A retransmitted duplicate of that PSN
    /// replays the cached response instead of re-executing — this is what
    /// keeps CAS exactly-once under a lost response.
    pub resp_cache: Option<(u64, crate::packet::PacketKind)>,
}

impl Qp {
    /// New, unconnected QP.
    pub fn new(qpn: u32, send_cq: u32, recv_cq: u32, sq: SqRing) -> Self {
        Qp {
            qpn,
            send_cq,
            recv_cq,
            sq,
            rq: VecDeque::new(),
            srq: None,
            remote: None,
            fenced: false,
            parked: false,
            busy_until: hl_sim::SimTime::ZERO,
            state: QpState::default(),
            timeout: None,
            next_psn: 0,
            epsn: 0,
            unacked: VecDeque::new(),
            retries: 0,
            timer_gen: 0,
            resp_cache: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_addressing_wraps() {
        let r = SqRing::new(0x1000, 4);
        assert_eq!(r.slot_addr(0), 0x1000);
        assert_eq!(r.slot_addr(3), 0x1000 + 3 * 64);
        assert_eq!(r.slot_addr(4), 0x1000);
        assert_eq!(r.slot_addr(7), 0x1000 + 3 * 64);
    }

    #[test]
    fn ring_room_accounting() {
        let mut r = SqRing::new(0, 2);
        assert!(r.has_room());
        r.tail = 2;
        assert!(!r.has_room());
        assert_eq!(r.depth(), 2);
        r.head = 1;
        assert!(r.has_room());
        assert_eq!(r.byte_len(), 128);
    }
}
