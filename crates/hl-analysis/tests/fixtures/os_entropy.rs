// Fixture: `os-entropy` fires on thread_rng (bare call, so the
// separate `rand-raw` path rule stays out of this fixture's count).
fn bad() {
    let x = thread_rng();
    // Reporting-only path, audited: hl-lint: allow(os-entropy)
    let y = thread_rng();
    let _ = (x, y);
}
