//! Sharded-campaign scaling harness.
//!
//! Runs the multi-group campaign at 1/2/4/8 shards, prints the scaling
//! table, re-runs the 8-shard point to prove byte-identical determinism
//! under the same seed, and writes:
//!
//! * `results/shard_scaling.txt` — the table plus the per-point report
//!   lines (the deterministic artifact CI checks).
//! * `SHARD_BENCH.json` — machine-readable summary (per-point kops,
//!   8v1 speedup, byte-identity flag) for the CI job summary.
//!
//! `HL_SHARD_OPS` overrides ops/shard (CI uses a small value for the
//! mini-campaign; the default is the full table in EXPERIMENTS.md).

use hl_bench::shard::{run_shard_campaign, scaling_sweep, ShardCampaignCfg};
use hl_bench::table::Table;

fn main() {
    let ops: usize = std::env::var("HL_SHARD_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let base = ShardCampaignCfg {
        ops_per_shard: ops,
        telemetry: true,
        ..Default::default()
    };
    let counts = [1usize, 2, 4, 8];

    let (results, speedup) = scaling_sweep(&base, &counts);

    let mut table = Table::new(&["shards", "agg Kops/s", "speedup", "p50 us", "p99 us"]);
    let base_kops = results[0].agg_kops;
    for r in &results {
        table.row(&[
            format!("{}", r.n_shards),
            format!("{:.1}", r.agg_kops),
            format!("{:.2}x", r.agg_kops / base_kops),
            format!("{:.1}", r.latency.p50_ns as f64 / 1e3),
            format!("{:.1}", r.latency.p99_ns as f64 / 1e3),
        ]);
    }
    let rendered = table.render();
    println!("{rendered}");
    println!("8-shard vs 1-shard aggregate speedup: {speedup:.2}x");

    // Determinism: the 8-shard point re-run under the same seed must
    // produce a byte-identical report (and metrics dump).
    let eight = ShardCampaignCfg {
        n_shards: 8,
        ops_per_shard: ops,
        telemetry: true,
        ..Default::default()
    };
    let rerun = run_shard_campaign(&eight);
    let first = results.last().expect("sweep ran");
    let byte_identical = rerun.report == first.report && rerun.metrics == first.metrics;
    println!(
        "8-shard same-seed re-run byte-identical: {}",
        if byte_identical { "yes" } else { "NO" }
    );

    // Per-shard router telemetry from the 8-shard run (shard= labels).
    let shard_counters: Vec<String> = rerun
        .metrics
        .as_deref()
        .unwrap_or("")
        .lines()
        .filter(|l| l.contains("router_ops") && l.contains("shard="))
        .map(str::to_string)
        .collect();

    let mut txt = String::new();
    txt.push_str("# Sharded campaign: aggregate gWRITE throughput, 1 -> 8 groups\n");
    txt.push_str(&format!(
        "# cfg: replicas/shard={} ops/shard={} pipeline={} write={}B ring={} seed={}\n",
        base.replicas_per_shard, ops, base.pipeline, base.write_size, base.ring_slots, base.seed
    ));
    txt.push_str(&rendered);
    txt.push_str(&format!(
        "\n8-shard vs 1-shard aggregate speedup: {speedup:.2}x\n"
    ));
    txt.push_str(&format!(
        "8-shard same-seed re-run byte-identical: {byte_identical}\n\n"
    ));
    for r in &results {
        txt.push_str(&format!("{}\n", r.report));
    }
    txt.push_str("\n# per-shard router counters (8-shard run)\n");
    for l in &shard_counters {
        txt.push_str(&format!("{l}\n"));
    }
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/shard_scaling.txt", &txt).expect("write results/shard_scaling.txt");

    let json = format!(
        concat!(
            "{{\n",
            "  \"ops_per_shard\": {},\n",
            "  \"points\": [{}],\n",
            "  \"agg_kops\": [{}],\n",
            "  \"speedup_8v1\": {:.3},\n",
            "  \"byte_identical\": {}\n",
            "}}\n"
        ),
        ops,
        counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        results
            .iter()
            .map(|r| format!("{:.1}", r.agg_kops))
            .collect::<Vec<_>>()
            .join(", "),
        speedup,
        byte_identical
    );
    std::fs::write("SHARD_BENCH.json", json).expect("write SHARD_BENCH.json");
    println!("wrote results/shard_scaling.txt and SHARD_BENCH.json");

    assert!(
        speedup >= 6.0,
        "8-shard aggregate speedup {speedup:.2}x below the 6x floor"
    );
    assert!(byte_identical, "same-seed re-run diverged");
}
