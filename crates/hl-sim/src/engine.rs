//! The discrete-event engine.
//!
//! A single-threaded, deterministic event loop. Two event
//! representations share one queue:
//!
//! * **Typed events** — the context type declares a payload enum via
//!   [`EventCtx::Event`] and dispatches it in [`EventCtx::run_event`].
//!   This is the hot path: a typed event is stored inline in an arena
//!   slot, so the datapath (packet delivery, CQE dispatch, timer fire)
//!   costs no per-event heap allocation.
//! * **Closures** — `FnOnce(&mut C, &mut Engine<C>)`, the escape hatch
//!   for cold-path and setup-time events that need to capture arbitrary
//!   state. Closures whose captures fit [`INLINE_CALL_BYTES`] (and are
//!   at most word-aligned) are stored *inline* in the arena slot, so
//!   the escape hatch costs no allocation either; only oversized
//!   captures fall back to a `Box`.
//!
//! Events are ordered by `(time, seq)`, where `seq` is a monotonically
//! increasing tiebreaker so that events scheduled for the same instant
//! fire in scheduling order. Determinism therefore depends only on the
//! order of `schedule` calls and the RNG seed — never on hash iteration
//! order, arena layout, or wall-clock time.
//!
//! Internally the queue is a **two-level calendar queue**. Events due
//! within the wheel horizon (2048 buckets × 32 ns ≈ 65 µs of simulated
//! time) go into a ring of time buckets: push is an O(1) append, and
//! when the loop reaches a bucket it orders the bucket once — a stable
//! counting sort on the few low time bits, zero key comparisons in the
//! common case — and drains it FIFO, so the datapath's dense
//! near-future traffic (packet hops, CQE dispatch, replenisher ticks)
//! never pays a per-event sift at all. Events beyond the horizon
//! (retransmit timeouts, telemetry flushes) land in an overflow
//! **4-ary index-min heap** and migrate into buckets as the wheel
//! advances, costing one heap pop exactly as if the heap had been the
//! only structure. Every queue entry — bucket or heap — is a single
//! `u128` packing `time:64 | seq:40 | slot:24`: one wide integer
//! compare orders it, and it carries its own payload-arena address, so
//! ordering keys never travel with payload bytes.
//!
//! Every schedule call returns an [`EventToken`] (generation-checked
//! slot handle) that can later be passed to [`Engine::cancel`], which
//! is O(1) *regardless of which structure holds the event*: the
//! payload is dropped in place and the queue entry becomes a
//! tombstone, reclaimed when it surfaces or by an amortized compaction
//! pass (triggered when tombstones outnumber live entries) that keeps
//! the physical queue within 2× of the live event count. Cancel-heavy
//! timer churn therefore cannot grow the queue the way the legacy
//! engine's pop-and-discard scheme did.
//!
//! Determinism is untouched by the bucketing: buckets are drained in
//! time order, a drained bucket is sorted by the same `(time, seq)`
//! key the heap orders by, and an event scheduled mid-drain for a time
//! the current bucket covers is inserted into the drain buffer at its
//! sorted position — the executed sequence is byte-for-byte the one a
//! single global priority queue would produce.

use crate::time::{SimDuration, SimTime};
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

/// Event handler signature: mutate the world, schedule more events.
pub type Handler<C> = Box<dyn FnOnce(&mut C, &mut Engine<C>)>;

/// Contract between the engine and its context type.
///
/// `Event` is the typed payload for high-frequency events; contexts
/// with no typed events use [`NoEvent`] (see [`inert_event_ctx!`]).
pub trait EventCtx: Sized {
    /// Typed event payload dispatched by [`EventCtx::run_event`].
    type Event;

    /// Dispatch one typed event. Called by the engine with the event's
    /// scheduled time already applied to [`Engine::now`].
    fn run_event(&mut self, eng: &mut Engine<Self>, ev: Self::Event);
}

/// The uninhabited event type for contexts that only use closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoEvent {}

/// Implement [`EventCtx`] with no typed events (`Event = NoEvent`) for
/// one or more local context types:
///
/// ```
/// struct MyWorld {
///     ticks: u64,
/// }
/// hl_sim::inert_event_ctx!(MyWorld);
/// let mut eng: hl_sim::Engine<MyWorld> = hl_sim::Engine::new();
/// ```
#[macro_export]
macro_rules! inert_event_ctx {
    ($($t:ty),+ $(,)?) => {$(
        impl $crate::EventCtx for $t {
            type Event = $crate::NoEvent;
            fn run_event(&mut self, _eng: &mut $crate::Engine<Self>, ev: $crate::NoEvent) {
                match ev {}
            }
        }
    )+};
}

// Convenience impls so tests, benches and doc examples can use plain
// std types as trivial contexts.
inert_event_ctx!((), u32, u64, usize);

impl<T> EventCtx for Vec<T> {
    type Event = NoEvent;
    fn run_event(&mut self, _eng: &mut Engine<Self>, ev: NoEvent) {
        match ev {}
    }
}

/// Generation-checked handle to a scheduled event, returned by every
/// `schedule*` call. Pass it to [`Engine::cancel`] to remove the event
/// before it fires; a token whose event already ran (or was cancelled)
/// is harmlessly stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

/// Closure captures up to this many bytes (at most word-aligned) are
/// stored inline in the event arena instead of behind a `Box`.
pub const INLINE_CALL_BYTES: usize = 48;
const INLINE_WORDS: usize = INLINE_CALL_BYTES / 8;

/// A scheduled closure, stored without allocation when its captures fit
/// [`INLINE_CALL_BYTES`].
///
/// The closure's bytes live in `buf`; `call` and `drop` are the
/// monomorphized thunks that know the erased type. Exactly one of them
/// runs for any closure: `call` via [`InlineCall::invoke`] (which
/// defuses the destructor first), `drop` via the `Drop` impl when a
/// scheduled event is cancelled or the engine is dropped with events
/// still queued.
struct InlineCall<C: EventCtx> {
    buf: [MaybeUninit<u64>; INLINE_WORDS],
    call: unsafe fn(*mut u8, &mut C, &mut Engine<C>),
    drop: unsafe fn(*mut u8),
}

/// Reads the closure out of `buf` and calls it. Safety: `buf` must hold
/// a valid, not-yet-consumed `F` and must not be read again.
unsafe fn call_thunk<C: EventCtx, F: FnOnce(&mut C, &mut Engine<C>)>(
    buf: *mut u8,
    ctx: &mut C,
    eng: &mut Engine<C>,
) {
    let f = unsafe { std::ptr::read(buf as *const F) };
    f(ctx, eng)
}

/// Drops the closure in place. Safety: `buf` must hold a valid,
/// not-yet-consumed `F` and must not be used again.
unsafe fn drop_thunk<F>(buf: *mut u8) {
    unsafe { std::ptr::drop_in_place(buf as *mut F) }
}

impl<C: EventCtx> InlineCall<C> {
    fn new<F>(f: F) -> Self
    where
        F: FnOnce(&mut C, &mut Engine<C>) + 'static,
    {
        // Both branches of this size check are compile-time constant
        // per `F`; the untaken one is dead code after monomorphization.
        if size_of::<F>() <= INLINE_CALL_BYTES && align_of::<F>() <= align_of::<u64>() {
            Self::store(f)
        } else {
            // Oversized or over-aligned captures: box the closure and
            // store the 16-byte `Box` inline instead.
            Self::store(Box::new(f) as Handler<C>)
        }
    }

    /// Moves `f` into an inline buffer. Caller (i.e. [`InlineCall::new`])
    /// guarantees `f` fits and is at most word-aligned. No `'static`
    /// bound here: the box fallback passes `Handler<C>` through this
    /// path, and `new` already enforced `'static` on the original
    /// closure.
    fn store<F>(f: F) -> Self
    where
        F: FnOnce(&mut C, &mut Engine<C>),
    {
        debug_assert!(size_of::<F>() <= INLINE_CALL_BYTES && align_of::<F>() <= align_of::<u64>());
        let mut buf = [MaybeUninit::<u64>::uninit(); INLINE_WORDS];
        // SAFETY: F fits in buf and buf's u64 alignment satisfies F's.
        unsafe { std::ptr::write(buf.as_mut_ptr() as *mut F, f) };
        InlineCall {
            buf,
            call: call_thunk::<C, F>,
            drop: drop_thunk::<F>,
        }
    }

    /// Consumes the stored closure and calls it.
    fn invoke(self, ctx: &mut C, eng: &mut Engine<C>) {
        // Defuse Drop: ownership of the closure bytes passes to the
        // call thunk, which reads them out exactly once.
        let mut this = ManuallyDrop::new(self);
        // SAFETY: buf holds a valid closure (store wrote it, nothing
        // consumed it), and ManuallyDrop prevents a second drop.
        unsafe { (this.call)(this.buf.as_mut_ptr() as *mut u8, ctx, eng) }
    }
}

impl<C: EventCtx> Drop for InlineCall<C> {
    fn drop(&mut self) {
        // SAFETY: drop only runs if invoke never did (invoke defuses
        // it), so buf still holds the unconsumed closure.
        unsafe { (self.drop)(self.buf.as_mut_ptr() as *mut u8) }
    }
}

/// What a scheduled slot carries.
enum Payload<C: EventCtx> {
    /// Inline typed event — no heap allocation.
    Typed(C::Event),
    /// Closure, inline up to [`INLINE_CALL_BYTES`] of captures.
    Call(InlineCall<C>),
}

/// Bookkeeping for one arena slot. Vacant slots chain through
/// `next_free`. Occupied slots carry no heap back-pointer: cancel
/// tombstones the payload instead of editing the heap, so the sift
/// loops never write slot metadata at all.
struct Slot {
    /// Bumped on every free; stale [`EventToken`]s fail the check.
    gen: u32,
    /// Free-list link while vacant.
    next_free: u32,
}

const NONE: u32 = u32::MAX;

/// Key layout below the 64 time bits: sequence number above the arena
/// slot. 2^40 events per engine (~30 h of wall time at 10 M events/s)
/// and 2^24 concurrent events — both asserted, both far beyond any
/// simulation this repo runs.
const SEQ_BITS: u32 = 40;
const SLOT_BITS: u32 = 24;
const SEQ_LIMIT: u64 = 1 << SEQ_BITS;
const SLOT_LIMIT: usize = 1 << SLOT_BITS;

/// Pack an ordering key: time in the high 64 bits, sequence number
/// above the arena slot in the low 64 — `(time, seq)` lexicographic
/// order is one `u128` compare (the trailing slot bits never decide an
/// ordering because seq is unique), and every queue entry is a single
/// 16-byte word that carries its own payload address.
#[inline]
fn pack_key(at: SimTime, seq: u64, slot: u32) -> u128 {
    debug_assert!(seq < SEQ_LIMIT && (slot as usize) < SLOT_LIMIT);
    ((at.as_nanos() as u128) << 64) | ((seq as u128) << SLOT_BITS) | slot as u128
}

/// Upper bound for every key at instant `at` (all seq/slot bits set) —
/// the inclusive cutoff used by [`Engine::run_until`].
#[inline]
fn key_cutoff(at: SimTime) -> u128 {
    ((at.as_nanos() as u128) << 64) | (u64::MAX as u128)
}

#[inline]
fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

#[inline]
fn key_slot(key: u128) -> u32 {
    (key as u32) & ((SLOT_LIMIT - 1) as u32)
}

/// Smallest possible key inside `bucket` — the drain-buffer watermark
/// (`batch_hi`) for a staged bucket.
#[inline]
fn bucket_start_key(bucket: u64) -> u128 {
    ((bucket << BUCKET_SHIFT) as u128) << 64
}

/// Deterministic discrete-event loop over a world of type `C`.
///
/// ```
/// use hl_sim::{Engine, SimDuration};
/// let mut engine: Engine<Vec<u64>> = Engine::new();
/// let mut world = Vec::new();
/// engine.schedule(SimDuration::from_micros(5), |w: &mut Vec<u64>, eng| {
///     w.push(eng.now().as_nanos());
/// });
/// engine.run(&mut world);
/// assert_eq!(world, vec![5_000]);
/// ```
pub struct Engine<C: EventCtx> {
    /// Packed `(time, seq, slot)` keys of the overflow 4-ary index-min
    /// heap (events beyond the wheel horizon).
    keys: Vec<u128>,
    /// Slot bookkeeping addressed by queue entries and tokens.
    slots: Vec<Slot>,
    /// Event payloads, parallel to `slots` (split off so the queue
    /// structures never pull payload bytes into cache). `None` while
    /// the slot is vacant *or* tombstoned by [`Engine::cancel`].
    payloads: Vec<Option<Payload<C>>>,
    free_head: u32,
    /// Live (scheduled, not cancelled, not executed) event count.
    live: usize,
    /// Cancelled entries still parked somewhere in the queue
    /// (approximate: surfaced tombstones are reclaimed with a
    /// saturating decrement).
    dead: usize,
    /// The calendar wheel: ring of buckets, each an unsorted list of
    /// packed keys whose time falls in that bucket's span. Bucket
    /// capacities are recycled via the `batch` swap.
    wheel: Vec<Vec<u128>>,
    /// One bit per bucket: does it hold any entries?
    occupied: [u64; WHEEL_BUCKETS / 64],
    /// Total entries across all wheel buckets (incl. tombstones).
    wheel_count: usize,
    /// Absolute index (time >> [`BUCKET_SHIFT`]) of the next bucket to
    /// drain. Wheel entries always have absolute bucket indices in
    /// `[cur_bucket, cur_bucket + WHEEL_BUCKETS)`.
    cur_bucket: u64,
    /// Keys strictly below this bound belong to the in-flight drain
    /// buffer (`batch`), not the wheel: it is the packed key of the
    /// current bucket's start instant. Pushes below it are inserted
    /// into `batch` at their sorted position.
    batch_hi: u128,
    /// Drain buffer: the current bucket's entries in `(time, seq)`
    /// order, consumed from `batch_cursor`. Buckets are *copied* in so
    /// both the buffer and every bucket keep their steady-state
    /// capacities.
    batch: Vec<u128>,
    batch_cursor: usize,
    /// Scatter target for the counting sort in [`Self::sort_batch`];
    /// kept around so its capacity recycles across bucket drains.
    sort_scratch: Vec<u128>,
    now: SimTime,
    seq: u64,
    executed: u64,
    /// Hard cap on executed events, a runaway-loop backstop.
    event_limit: u64,
}

/// Wheel geometry: 2048 buckets of 2^5 = 32 ns each — a ~65 µs
/// horizon, comfortably past every datapath delay (link hops, DMA,
/// CQE latency) while keeping per-bucket sorts small. Both are powers
/// of two so bucket mapping is a shift and a mask.
const WHEEL_BUCKETS: usize = 2048;
const BUCKET_SHIFT: u32 = 5;
const WHEEL_MASK: u64 = WHEEL_BUCKETS as u64 - 1;

impl<C: EventCtx> Default for Engine<C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<C: EventCtx> Engine<C> {
    /// A fresh engine at t = 0.
    pub fn new() -> Self {
        Engine {
            keys: Vec::new(),
            slots: Vec::new(),
            payloads: Vec::new(),
            free_head: NONE,
            live: 0,
            dead: 0,
            wheel: vec![Vec::new(); WHEEL_BUCKETS],
            occupied: [0; WHEEL_BUCKETS / 64],
            wheel_count: 0,
            cur_bucket: 0,
            batch_hi: 0,
            batch: Vec::new(),
            batch_cursor: 0,
            sort_scratch: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            event_limit: u64::MAX,
        }
    }

    /// Limit the total number of events executed (safety net for tests).
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.event_limit = limit;
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of live events waiting in the queue (cancelled entries
    /// whose tombstones have not been reclaimed yet don't count).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule<F>(&mut self, delay: SimDuration, f: F) -> EventToken
    where
        F: FnOnce(&mut C, &mut Engine<C>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at an absolute instant. Events in the past are clamped
    /// to `now` (they still run after already-queued events at `now`,
    /// because of the `seq` tiebreaker).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventToken
    where
        F: FnOnce(&mut C, &mut Engine<C>) + 'static,
    {
        self.push(at, Payload::Call(InlineCall::new(f)))
    }

    /// Schedule a typed event after `delay` (allocation-free hot path).
    pub fn schedule_event(&mut self, delay: SimDuration, ev: C::Event) -> EventToken {
        self.push(self.now + delay, Payload::Typed(ev))
    }

    /// Schedule a typed event at an absolute instant, clamped to `now`
    /// like [`Engine::schedule_at`].
    pub fn schedule_event_at(&mut self, at: SimTime, ev: C::Event) -> EventToken {
        self.push(at, Payload::Typed(ev))
    }

    /// Cancel a scheduled event. Returns `true` if the token was live
    /// (the event will never fire); `false` if it already ran or was
    /// cancelled. O(1): the payload is dropped in place (running
    /// closure destructors exactly as if the event had been consumed)
    /// and the heap entry becomes a tombstone, reclaimed at the root or
    /// by the next amortized compaction pass.
    pub fn cancel(&mut self, tok: EventToken) -> bool {
        let Some(slot) = self.slots.get(tok.slot as usize) else {
            return false;
        };
        if slot.gen != tok.gen {
            return false;
        }
        let p = &mut self.payloads[tok.slot as usize];
        if p.is_none() {
            return false;
        }
        *p = None;
        self.live -= 1;
        self.dead += 1;
        // Keep the physical queue (heap + wheel + drain buffer) within
        // ~2× of the live count so cancel-heavy timer churn cannot grow
        // it (or deepen sift paths for the live events threading
        // through the heap). Amortized O(1): each compaction is
        // O(queue) and at least halves it.
        if self.dead >= 16 && self.dead > self.queued_entries() / 2 {
            self.compact();
        }
        true
    }

    /// Physical entries across all queue structures, tombstones
    /// included.
    fn queued_entries(&self) -> usize {
        self.keys.len() + self.wheel_count + (self.batch.len() - self.batch_cursor)
    }

    /// Run a single event if one is pending. Returns `false` when idle.
    pub fn step(&mut self, ctx: &mut C) -> bool {
        self.step_inner(ctx, u128::MAX)
    }

    /// Pop and execute the next live event with key ≤ `deadline`.
    fn step_inner(&mut self, ctx: &mut C, deadline: u128) -> bool {
        loop {
            // Drain the current bucket's sorted buffer first; pushes
            // below `batch_hi` were inserted at their sorted position,
            // so this order is exactly global `(time, seq)` order.
            while self.batch_cursor < self.batch.len() {
                let key = self.batch[self.batch_cursor];
                if key > deadline {
                    return false;
                }
                let slot = key_slot(key);
                self.batch_cursor += 1;
                let Some(payload) = self.payloads[slot as usize].take() else {
                    // Cancelled while waiting in the buffer.
                    self.free_slot_meta(slot);
                    self.dead = self.dead.saturating_sub(1);
                    continue;
                };
                self.free_slot_meta(slot);
                return self.fire(ctx, key, payload);
            }
            if !self.batch.is_empty() {
                self.batch.clear();
                self.batch_cursor = 0;
            }

            // Migrate far events that have come within the horizon into
            // their wheel buckets (and reclaim far tombstones at the
            // root). One heap pop per event that ever went far — the
            // same cost it would have paid in a heap-only design.
            let horizon_t = (self.cur_bucket + WHEEL_BUCKETS as u64) << BUCKET_SHIFT;
            while let Some(&key) = self.keys.first() {
                let slot = key_slot(key);
                if self.payloads[slot as usize].is_none() {
                    self.pop_root();
                    self.free_slot_meta(slot);
                    self.dead = self.dead.saturating_sub(1);
                    continue;
                }
                if (key >> 64) as u64 >= horizon_t {
                    break;
                }
                self.pop_root();
                self.wheel_insert(key);
            }

            if self.wheel_count == 0 {
                let Some(&key) = self.keys.first() else {
                    return false;
                };
                // Everything left is beyond the horizon: jump the wheel
                // to the earliest far event and re-run the migration.
                self.cur_bucket = ((key >> 64) as u64) >> BUCKET_SHIFT;
                self.batch_hi = bucket_start_key(self.cur_bucket);
                continue;
            }

            // Advance to the next occupied bucket and stage it for
            // draining: copy it into the (empty) drain buffer and sort
            // once. A copy, not a swap, so every bucket keeps its own
            // capacity — after one ring revolution nothing reallocates.
            // Keys embed unique seq numbers, so the sort is total and
            // the drained order is exactly what individual heap pops
            // would produce.
            let start = (self.cur_bucket & WHEEL_MASK) as usize;
            let delta = self.next_occupied(start).expect("wheel_count > 0");
            let abs = self.cur_bucket + delta as u64;
            let si = (abs & WHEEL_MASK) as usize;
            debug_assert!(self.batch.is_empty());
            let bucket = &mut self.wheel[si];
            self.batch.extend_from_slice(bucket);
            bucket.clear();
            self.sort_batch();
            self.wheel_count -= self.batch.len();
            self.occupied[si >> 6] &= !(1u64 << (si & 63));
            self.cur_bucket = abs + 1;
            self.batch_hi = bucket_start_key(abs + 1);
        }
    }

    /// Sort the staged drain buffer into `(time, seq)` order.
    ///
    /// Every entry shares one absolute wheel bucket, so the time field
    /// differs only in its low [`BUCKET_SHIFT`] bits — and pushes
    /// append in seq order, so a *stable* counting sort on those few
    /// time bits orders the full key with zero comparisons. The one
    /// exception is a bucket that interleaved direct pushes with
    /// heap-migrated far events (migration appends in key order, not
    /// seq order, so same-instant entries can land swapped); the
    /// `is_sorted` check catches that rare case and falls back to a
    /// comparison sort.
    fn sort_batch(&mut self) {
        let n = self.batch.len();
        if n <= 1 {
            return;
        }
        const LANES: usize = 1 << BUCKET_SHIFT;
        let mut counts = [0u32; LANES];
        for &key in &self.batch {
            counts[((key >> 64) as usize) & (LANES - 1)] += 1;
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let run = *c;
            *c = sum;
            sum += run;
        }
        self.sort_scratch.resize(n, 0);
        for &key in &self.batch {
            let lane = ((key >> 64) as usize) & (LANES - 1);
            self.sort_scratch[counts[lane] as usize] = key;
            counts[lane] += 1;
        }
        std::mem::swap(&mut self.batch, &mut self.sort_scratch);
        if !self.batch.is_sorted() {
            self.batch.sort_unstable();
        }
    }

    /// File a packed key into its wheel bucket. Caller guarantees the
    /// key's bucket lies within `[cur_bucket, cur_bucket + WHEEL_BUCKETS)`.
    #[inline]
    fn wheel_insert(&mut self, key: u128) {
        let ab = ((key >> 64) as u64) >> BUCKET_SHIFT;
        debug_assert!(
            ab >= self.cur_bucket && ab < self.cur_bucket + WHEEL_BUCKETS as u64,
            "bucket {ab} outside wheel window at {}",
            self.cur_bucket
        );
        let si = (ab & WHEEL_MASK) as usize;
        self.wheel[si].push(key);
        self.occupied[si >> 6] |= 1u64 << (si & 63);
        self.wheel_count += 1;
    }

    /// Distance (in buckets) from ring slot `from` to the nearest
    /// occupied slot, scanning forward with wrap-around via the
    /// occupancy bitmap. `None` if the whole wheel is empty.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let words = self.occupied.len();
        let w0 = from >> 6;
        let first = self.occupied[w0] >> (from & 63);
        if first != 0 {
            return Some(first.trailing_zeros() as usize);
        }
        for i in 1..=words {
            let w = (w0 + i) % words;
            if self.occupied[w] != 0 {
                let bit = self.occupied[w].trailing_zeros() as usize;
                return Some((w * 64 + bit + WHEEL_BUCKETS - from) % WHEEL_BUCKETS);
            }
        }
        None
    }

    /// Advance the clock to `key`'s instant and execute `payload`.
    #[inline]
    fn fire(&mut self, ctx: &mut C, key: u128, payload: Payload<C>) -> bool {
        if self.executed >= self.event_limit {
            panic!(
                "engine event limit ({}) exceeded at t={} — runaway event loop?",
                self.event_limit, self.now
            );
        }
        debug_assert!(key_time(key) >= self.now, "time went backwards");
        self.live -= 1;
        self.now = key_time(key);
        self.executed += 1;
        match payload {
            Payload::Typed(ev) => ctx.run_event(self, ev),
            Payload::Call(f) => f.invoke(ctx, self),
        }
        true
    }

    /// Run until the queue is empty.
    pub fn run(&mut self, ctx: &mut C) {
        while self.step(ctx) {}
    }

    /// Run until the queue is empty or the clock passes `deadline`.
    /// Events scheduled after the deadline remain queued; the clock is
    /// left at the last executed event (≤ deadline).
    pub fn run_until(&mut self, ctx: &mut C, deadline: SimTime) {
        let cutoff = key_cutoff(deadline);
        while self.step_inner(ctx, cutoff) {}
    }

    /// Run until `pred(ctx)` is true, checking after every event, or until
    /// the queue drains. Returns whether the predicate was satisfied.
    pub fn run_while<F>(&mut self, ctx: &mut C, mut pred: F) -> bool
    where
        F: FnMut(&C) -> bool,
    {
        loop {
            if !pred(ctx) {
                return true;
            }
            if !self.step(ctx) {
                return false;
            }
        }
    }

    // ----- arena + calendar-queue internals ------------------------------

    fn push(&mut self, at: SimTime, payload: Payload<C>) -> EventToken {
        let at = at.max(self.now);
        // Claim a slot from the free list, or grow the slab — the slot
        // index rides in the key's low bits, so it must exist first.
        let slot = if self.free_head != NONE {
            let s = self.free_head;
            self.free_head = self.slots[s as usize].next_free;
            self.payloads[s as usize] = Some(payload);
            s
        } else {
            assert!(self.slots.len() < SLOT_LIMIT, "event arena overflow");
            self.slots.push(Slot {
                gen: 0,
                next_free: NONE,
            });
            self.payloads.push(Some(payload));
            (self.slots.len() - 1) as u32
        };
        assert!(self.seq < SEQ_LIMIT, "event sequence space exhausted");
        let key = pack_key(at, self.seq, slot);
        self.seq += 1;
        if key < self.batch_hi {
            // The in-flight drain buffer covers this instant: insert at
            // the key's sorted position in the undrained tail (already
            // fired entries all have smaller keys). Rare — only pushes
            // for (near-)immediate execution land here.
            let pos =
                self.batch_cursor + self.batch[self.batch_cursor..].partition_point(|&k| k < key);
            self.batch.insert(pos, key);
        } else if ((key >> 64) as u64) >> BUCKET_SHIFT < self.cur_bucket + WHEEL_BUCKETS as u64 {
            self.wheel_insert(key);
        } else {
            let pos = self.keys.len();
            self.keys.push(key);
            self.sift_up(pos);
        }
        self.live += 1;
        EventToken {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Retire a consumed slot's metadata. The payload must already be
    /// `None` (taken by `step`, or overwritten by `cancel`).
    fn free_slot_meta(&mut self, slot: u32) {
        debug_assert!(self.payloads[slot as usize].is_none());
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.next_free = self.free_head;
        self.free_head = slot;
    }

    /// Remove the root (minimum) heap entry: the displaced tail entry
    /// is sunk into the root hole.
    fn pop_root(&mut self) {
        let last_key = self.keys.pop().expect("pop_root on empty heap");
        if !self.keys.is_empty() {
            self.sift_down_hole(0, last_key);
        }
    }

    /// Index and key of the minimum entry in `[first, end)` (a sibling
    /// group of at most four). Written as a two-round select so the
    /// compiler emits conditional moves instead of a data-dependent
    /// branchy scan.
    ///
    /// Safety: caller guarantees `first < end <= self.keys.len()`; the
    /// sift loops run once per heap level, so the elided bounds checks
    /// (up to four per level) are the difference between this heap and
    /// `BinaryHeap`'s unchecked internals.
    #[inline]
    unsafe fn min_child(&self, first: usize, end: usize) -> (usize, u128) {
        debug_assert!(first < end && end <= self.keys.len());
        let at = |i: usize| unsafe { *self.keys.get_unchecked(i) };
        match end - first {
            4 => {
                let (a, ka) = if at(first + 1) < at(first) {
                    (first + 1, at(first + 1))
                } else {
                    (first, at(first))
                };
                let (b, kb) = if at(first + 3) < at(first + 2) {
                    (first + 3, at(first + 3))
                } else {
                    (first + 2, at(first + 2))
                };
                if kb < ka {
                    (b, kb)
                } else {
                    (a, ka)
                }
            }
            3 => {
                let (a, ka) = if at(first + 1) < at(first) {
                    (first + 1, at(first + 1))
                } else {
                    (first, at(first))
                };
                if at(first + 2) < ka {
                    (first + 2, at(first + 2))
                } else {
                    (a, ka)
                }
            }
            2 => {
                if at(first + 1) < at(first) {
                    (first + 1, at(first + 1))
                } else {
                    (first, at(first))
                }
            }
            _ => (first, at(first)),
        }
    }

    /// Both sifts use the classic hole technique: the moving entry is
    /// held in registers while displaced entries shift one copy each,
    /// instead of a three-copy swap per level. Neither touches slot
    /// metadata — the heap keeps no back-pointers.
    fn sift_up(&mut self, mut i: usize) {
        // SAFETY (this fn): `i < keys.len()` on entry (caller passes a
        // valid heap position), `parent < i`, and `keys` stays the same
        // length throughout — every index below is in bounds.
        let key = unsafe { *self.keys.get_unchecked(i) };
        let start = i;
        while i > 0 {
            let parent = (i - 1) / 4;
            let pk = unsafe { *self.keys.get_unchecked(parent) };
            if key >= pk {
                break;
            }
            unsafe {
                *self.keys.get_unchecked_mut(i) = pk;
            }
            i = parent;
        }
        // An unmoved entry needs no write-back at all — the common
        // case for a freshly pushed (latest-key) event.
        if i != start {
            unsafe {
                *self.keys.get_unchecked_mut(i) = key;
            }
        }
    }

    /// Sink the detached entry `key` into the hole at `i`, writing it
    /// at its final position (unconditionally — the hole never holds a
    /// valid entry).
    fn sift_down_hole(&mut self, mut i: usize, key: u128) {
        let len = self.keys.len();
        debug_assert!(i < len);
        // SAFETY (this fn): `i < len` on entry, `min < end <= len` from
        // the loop condition, and `len` never changes — every index
        // below is in bounds.
        loop {
            let first = 4 * i + 1;
            if first >= len {
                break;
            }
            let end = (first + 4).min(len);
            let (min, min_key) = unsafe { self.min_child(first, end) };
            if min_key >= key {
                break;
            }
            unsafe {
                *self.keys.get_unchecked_mut(i) = min_key;
            }
            i = min;
        }
        unsafe {
            *self.keys.get_unchecked_mut(i) = key;
        }
    }

    /// Restore the heap property over the whole array (Floyd's bottom-up
    /// heapify, O(n)).
    fn heapify(&mut self) {
        let len = self.keys.len();
        if len < 2 {
            return;
        }
        for i in (0..=(len - 2) / 4).rev() {
            let key = self.keys[i];
            self.sift_down_hole(i, key);
        }
    }

    /// Drop tombstoned entries out of every queue structure (heap,
    /// wheel buckets, drain buffer) and rebuild the heap. Called when
    /// tombstones outnumber live entries, so the O(queue) pass is
    /// amortized O(1) per cancel.
    fn compact(&mut self) {
        // Overflow heap.
        let mut w = 0usize;
        for r in 0..self.keys.len() {
            let key = self.keys[r];
            let slot = key_slot(key);
            if self.payloads[slot as usize].is_some() {
                self.keys[w] = key;
                w += 1;
            } else {
                self.free_slot_meta(slot);
            }
        }
        self.keys.truncate(w);
        self.heapify();

        // Wheel buckets (visit only occupied ones via the bitmap).
        if self.wheel_count > 0 {
            for word in 0..self.occupied.len() {
                let mut bits = self.occupied[word];
                while bits != 0 {
                    let si = word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let mut bucket = std::mem::take(&mut self.wheel[si]);
                    let before = bucket.len();
                    let mut keep = 0usize;
                    for r in 0..bucket.len() {
                        let key = bucket[r];
                        let slot = key_slot(key);
                        if self.payloads[slot as usize].is_some() {
                            bucket[keep] = key;
                            keep += 1;
                        } else {
                            self.free_slot_meta(slot);
                        }
                    }
                    bucket.truncate(keep);
                    self.wheel_count -= before - keep;
                    if keep == 0 {
                        self.occupied[word] &= !(1u64 << (si & 63));
                    }
                    self.wheel[si] = bucket;
                }
            }
        }

        // Undrained tail of the drain buffer (the fired prefix holds
        // consumed entries and is left alone).
        let mut keep = self.batch_cursor;
        for r in self.batch_cursor..self.batch.len() {
            let key = self.batch[r];
            let slot = key_slot(key);
            if self.payloads[slot as usize].is_some() {
                self.batch[keep] = key;
                keep += 1;
            } else {
                self.free_slot_meta(slot);
            }
        }
        self.batch.truncate(keep);

        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }
    inert_event_ctx!(World);

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule(SimDuration::from_nanos(30), |w: &mut World, _| {
            w.log.push((30, "c"))
        });
        eng.schedule(SimDuration::from_nanos(10), |w: &mut World, _| {
            w.log.push((10, "a"))
        });
        eng.schedule(SimDuration::from_nanos(20), |w: &mut World, _| {
            w.log.push((20, "b"))
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(eng.events_executed(), 3);
    }

    #[test]
    fn same_instant_fires_in_schedule_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for name in ["first", "second", "third"] {
            eng.schedule(SimDuration::from_nanos(5), move |w: &mut World, _| {
                w.log.push((5, name))
            });
        }
        eng.run(&mut w);
        assert_eq!(
            w.log.iter().map(|e| e.1).collect::<Vec<_>>(),
            vec!["first", "second", "third"]
        );
    }

    #[test]
    fn handlers_can_schedule_chains() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        fn tick(w: &mut World, eng: &mut Engine<World>) {
            let n = w.log.len() as u64;
            w.log.push((eng.now().as_nanos(), "tick"));
            if n < 4 {
                eng.schedule(SimDuration::from_nanos(7), tick);
            }
        }
        eng.schedule(SimDuration::ZERO, tick);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 5);
        assert_eq!(eng.now().as_nanos(), 28);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for ns in [5u64, 15, 25] {
            eng.schedule(SimDuration::from_nanos(ns), move |w: &mut World, _| {
                w.log.push((ns, "x"))
            });
        }
        eng.run_until(&mut w, SimTime::from_nanos(16));
        assert_eq!(w.log.len(), 2);
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 3);
    }

    #[test]
    fn run_while_checks_predicate() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for ns in 1..=10u64 {
            eng.schedule(SimDuration::from_nanos(ns), move |w: &mut World, _| {
                w.log.push((ns, "x"))
            });
        }
        let satisfied = eng.run_while(&mut w, |w| w.log.len() < 4);
        assert!(satisfied);
        assert_eq!(w.log.len(), 4);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        eng.schedule(SimDuration::from_nanos(100), move |_: &mut World, eng| {
            let s3 = s2.clone();
            // Attempt to schedule in the past; must clamp to now (=100).
            eng.schedule_at(SimTime::from_nanos(1), move |_, eng| {
                s3.borrow_mut().push(eng.now().as_nanos());
            });
        });
        eng.run(&mut w);
        assert_eq!(*seen.borrow(), vec![100]);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaways() {
        let mut eng: Engine<World> = Engine::new().with_event_limit(50);
        let mut w = World::default();
        fn forever(_: &mut World, eng: &mut Engine<World>) {
            eng.schedule(SimDuration::from_nanos(1), forever);
        }
        eng.schedule(SimDuration::ZERO, forever);
        eng.run(&mut w);
    }

    // ----- typed events and cancellation ---------------------------------

    struct Typed {
        fired: Vec<(u64, u32)>,
    }

    enum TypedEv {
        Mark(u32),
        Chain { left: u32 },
    }

    impl EventCtx for Typed {
        type Event = TypedEv;
        fn run_event(&mut self, eng: &mut Engine<Self>, ev: TypedEv) {
            match ev {
                TypedEv::Mark(id) => self.fired.push((eng.now().as_nanos(), id)),
                TypedEv::Chain { left } => {
                    self.fired.push((eng.now().as_nanos(), left));
                    if left > 0 {
                        eng.schedule_event(
                            SimDuration::from_nanos(3),
                            TypedEv::Chain { left: left - 1 },
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn typed_events_interleave_with_closures_in_seq_order() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        eng.schedule_event(SimDuration::from_nanos(5), TypedEv::Mark(1));
        eng.schedule(SimDuration::from_nanos(5), |w: &mut Typed, eng| {
            w.fired.push((eng.now().as_nanos(), 2));
        });
        eng.schedule_event(SimDuration::from_nanos(5), TypedEv::Mark(3));
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn typed_events_can_chain() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        eng.schedule_event(SimDuration::ZERO, TypedEv::Chain { left: 4 });
        eng.run(&mut w);
        assert_eq!(w.fired.len(), 5);
        assert_eq!(eng.now().as_nanos(), 12);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn cancel_removes_event_before_it_fires() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        let keep = eng.schedule_event(SimDuration::from_nanos(10), TypedEv::Mark(1));
        let kill = eng.schedule_event(SimDuration::from_nanos(20), TypedEv::Mark(2));
        eng.schedule_event(SimDuration::from_nanos(30), TypedEv::Mark(3));
        assert!(eng.cancel(kill));
        assert_eq!(eng.pending(), 2);
        // Double-cancel and cancel-after-fire are inert.
        assert!(!eng.cancel(kill));
        eng.run(&mut w);
        assert!(!eng.cancel(keep));
        assert_eq!(w.fired, vec![(10, 1), (30, 3)]);
    }

    #[test]
    fn cancel_tokens_survive_slot_reuse() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        let a = eng.schedule_event(SimDuration::from_nanos(10), TypedEv::Mark(1));
        assert!(eng.cancel(a));
        // The freed slot is reused; the old token must not cancel the
        // new occupant.
        let b = eng.schedule_event(SimDuration::from_nanos(10), TypedEv::Mark(2));
        assert!(!eng.cancel(a));
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(10, 2)]);
        assert!(!eng.cancel(b));
    }

    #[test]
    fn heavy_cancel_churn_keeps_order_and_bounds_queue() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        // Arm + supersede a "timer" 1000 times; only the last survives.
        let mut tok = eng.schedule_event(SimDuration::from_nanos(10_000), TypedEv::Mark(0));
        for i in 1..1000u32 {
            assert!(eng.cancel(tok));
            tok = eng.schedule_event(SimDuration::from_nanos(10_000 + i as u64), TypedEv::Mark(i));
            assert_eq!(eng.pending(), 1);
        }
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(10_999, 999)]);
    }

    /// A large same-timestamp run fires in schedule order, interleaves
    /// correctly with events scheduled *for the same instant during the
    /// drain*, and respects cancels issued mid-drain.
    #[test]
    fn batch_pop_preserves_seq_order_and_cancels() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        // A canceller leads the bucket, followed by 200 events at t=100,
        // plus stragglers at t=200 to keep the queue non-trivial.
        // Victim tokens are filled in after the marks are scheduled.
        let victims: Rc<RefCell<Vec<EventToken>>> = Rc::new(RefCell::new(Vec::new()));
        let v2 = victims.clone();
        eng.schedule_at(SimTime::from_nanos(100), move |_: &mut Typed, eng| {
            // Runs first in the batch: cancels ten later batch members
            // and schedules three more for the same instant, which must
            // run after the whole surviving batch.
            for t in v2.borrow().iter() {
                assert!(eng.cancel(*t), "mid-batch cancel must hit live events");
            }
            for i in 0..3u32 {
                eng.schedule_event_at(SimTime::from_nanos(100), TypedEv::Mark(2000 + i));
            }
        });
        let toks: Vec<EventToken> = (0..200u32)
            .map(|i| eng.schedule_event(SimDuration::from_nanos(100), TypedEv::Mark(i)))
            .collect();
        *victims.borrow_mut() = toks[100..110].to_vec();
        for i in 0..40u32 {
            eng.schedule_event(SimDuration::from_nanos(200), TypedEv::Mark(1000 + i));
        }
        eng.run(&mut w);
        let at_100: Vec<u32> = w
            .fired
            .iter()
            .filter(|(t, _)| *t == 100)
            .map(|(_, id)| *id)
            .collect();
        let mut expect: Vec<u32> = (0..200).filter(|i| !(100..110).contains(i)).collect();
        expect.extend([2000, 2001, 2002]);
        assert_eq!(at_100, expect);
        let at_200: Vec<u32> = w
            .fired
            .iter()
            .filter(|(t, _)| *t == 200)
            .map(|(_, id)| *id)
            .collect();
        assert_eq!(at_200, (1000..1040).collect::<Vec<u32>>());
    }

    /// `run_until` must not execute live events past the deadline even
    /// when tombstones with earlier times sit at the heap root.
    #[test]
    fn run_until_skips_tombstones_without_overshooting() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        let early = eng.schedule_event(SimDuration::from_nanos(10), TypedEv::Mark(1));
        eng.schedule_event(SimDuration::from_nanos(50), TypedEv::Mark(2));
        assert!(eng.cancel(early));
        // Deadline is past the tombstone but before the live event.
        eng.run_until(&mut w, SimTime::from_nanos(20));
        assert!(w.fired.is_empty(), "live event past deadline must wait");
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(50, 2)]);
    }

    /// Cancel-heavy churn compacts tombstones: the physical heap stays
    /// within a small constant of the live count.
    #[test]
    fn tombstone_compaction_bounds_physical_heap() {
        let mut eng: Engine<Typed> = Engine::new();
        let mut w = Typed { fired: Vec::new() };
        let mut tok = eng.schedule_event(SimDuration::from_nanos(10_000), TypedEv::Mark(0));
        for i in 1..10_000u32 {
            assert!(eng.cancel(tok));
            tok = eng.schedule_event(SimDuration::from_nanos(10_000 + i as u64), TypedEv::Mark(i));
            assert_eq!(eng.pending(), 1);
            assert!(
                eng.queued_entries() <= 128,
                "queue grew to {} entries with 1 live event",
                eng.queued_entries()
            );
        }
        eng.run(&mut w);
        assert_eq!(w.fired, vec![(19_999, 9_999)]);
    }

    // ----- inline closure storage ----------------------------------------

    /// Captures below the inline threshold run and drop correctly.
    #[test]
    fn small_captures_run_inline() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let payload = [7u64; 4]; // 32 bytes < INLINE_CALL_BYTES
        assert!(size_of::<[u64; 4]>() <= INLINE_CALL_BYTES);
        eng.schedule(SimDuration::from_nanos(1), move |w: &mut World, _| {
            assert_eq!(payload, [7u64; 4]);
            w.log.push((1, "inline"));
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(1, "inline")]);
    }

    /// Captures past the inline threshold fall back to a box and still
    /// run exactly once.
    #[test]
    fn oversized_captures_fall_back_to_box() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let big = [3u64; 16]; // 128 bytes > INLINE_CALL_BYTES
        assert!(size_of::<[u64; 16]>() > INLINE_CALL_BYTES);
        eng.schedule(SimDuration::from_nanos(2), move |w: &mut World, _| {
            assert_eq!(big.iter().sum::<u64>(), 48);
            w.log.push((2, "boxed"));
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(2, "boxed")]);
    }

    /// A cancelled closure's captures are dropped (no leak, no double
    /// drop), whether stored inline or boxed — observed through an Rc's
    /// strong count.
    #[test]
    fn cancelled_closures_drop_their_captures() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let small_rc = Rc::new(1u32);
        let big_rc = Rc::new(2u32);
        let small = {
            let rc = small_rc.clone();
            eng.schedule(SimDuration::from_nanos(5), move |_: &mut World, _| {
                let _keep = &rc;
                unreachable!("cancelled event must not run");
            })
        };
        let big = {
            let rc = big_rc.clone();
            let pad = [0u64; 16];
            eng.schedule(SimDuration::from_nanos(5), move |_: &mut World, _| {
                let _keep = (&rc, &pad);
                unreachable!("cancelled event must not run");
            })
        };
        assert_eq!(Rc::strong_count(&small_rc), 2);
        assert_eq!(Rc::strong_count(&big_rc), 2);
        assert!(eng.cancel(small));
        assert!(eng.cancel(big));
        assert_eq!(Rc::strong_count(&small_rc), 1, "inline capture leaked");
        assert_eq!(Rc::strong_count(&big_rc), 1, "boxed capture leaked");
        eng.run(&mut w);
        assert!(w.log.is_empty());
    }

    /// Dropping an engine with events still queued drops their captures.
    #[test]
    fn dropping_engine_drops_pending_captures() {
        let rc = Rc::new(0u32);
        {
            let mut eng: Engine<World> = Engine::new();
            let held = rc.clone();
            eng.schedule(SimDuration::from_nanos(1), move |_: &mut World, _| {
                let _keep = &held;
            });
            assert_eq!(Rc::strong_count(&rc), 2);
        }
        assert_eq!(Rc::strong_count(&rc), 1, "pending inline capture leaked");
    }

    // ----- calendar-wheel structure --------------------------------------

    /// A fired slot must return to the free list: a one-wide
    /// self-rescheduling chain keeps at most two slots in flight, so
    /// the arena must not grow with the event count.
    #[test]
    fn fired_slots_recycle_into_free_list() {
        fn tick(w: &mut u64, eng: &mut Engine<u64>) {
            *w += 1;
            if *w < 10_000 {
                eng.schedule(SimDuration::from_nanos(40), tick);
            }
        }
        let mut eng: Engine<u64> = Engine::new();
        let mut n = 0u64;
        eng.schedule(SimDuration::from_nanos(40), tick);
        eng.run(&mut n);
        assert_eq!(n, 10_000);
        assert!(
            eng.slots.len() <= 2,
            "arena grew to {} slots for a 1-wide chain",
            eng.slots.len()
        );
    }

    /// A far (beyond-horizon) event and a same-instant event pushed
    /// directly into the wheel *before* the far one migrates must still
    /// fire in seq order. This pins the counting-sort fallback: the
    /// bucket's append order is (near, far) while seq order is
    /// (far, near).
    #[test]
    fn heap_migration_same_instant_keeps_seq_order() {
        const T: u64 = 100_000;
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        // seq 0: beyond the 65 536 ns horizon at schedule time.
        eng.schedule(SimDuration::from_nanos(T), |w: &mut World, _| {
            w.log.push((T, "far"));
        });
        // Fires in the last bucket staged before the far event comes
        // within the horizon, and schedules a same-instant rival that
        // reaches the wheel bucket ahead of the migrated entry.
        eng.schedule(
            SimDuration::from_nanos(34_464),
            |w: &mut World, eng: &mut Engine<World>| {
                w.log.push((34_464, "stone"));
                eng.schedule_at(SimTime::from_nanos(T), |w: &mut World, _| {
                    w.log.push((T, "near"));
                });
            },
        );
        eng.run(&mut w);
        assert_eq!(
            w.log,
            vec![(34_464, "stone"), (T, "far"), (T, "near")],
            "same-instant events must fire in scheduling (seq) order"
        );
    }

    /// The wheel ring wraps many times without losing or reordering
    /// events, and a queue holding only far events jumps the wheel
    /// instead of scanning empty buckets.
    #[test]
    fn wheel_wraps_and_far_jumps_keep_time_order() {
        fn near(w: &mut Vec<u64>, eng: &mut Engine<Vec<u64>>) {
            w.push(eng.now().as_nanos());
            if w.len() < 200 {
                // ~1031 buckets per hop: wraps the 2048-bucket ring
                // every other event.
                eng.schedule(SimDuration::from_nanos(33_000), near);
            }
        }
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut times = Vec::new();
        eng.schedule(SimDuration::from_nanos(33_000), near);
        eng.run(&mut times);
        assert_eq!(times.len(), 200);
        assert!(times.windows(2).all(|p| p[0] < p[1]));
        assert_eq!(*times.last().unwrap(), 200 * 33_000);

        fn far(w: &mut Vec<u64>, eng: &mut Engine<Vec<u64>>) {
            w.push(eng.now().as_nanos());
            if w.len() < 50 {
                // Beyond the horizon every hop: heap + jump path only.
                eng.schedule(SimDuration::from_nanos(1_000_000), far);
            }
        }
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut times = Vec::new();
        eng.schedule(SimDuration::from_nanos(1_000_000), far);
        eng.run(&mut times);
        assert_eq!(times.len(), 50);
        assert_eq!(*times.last().unwrap(), 50_000_000);
    }

    /// Events pushed while their own bucket is mid-drain land at their
    /// sorted position in the drain buffer — after same-instant
    /// already-queued events, before later ones.
    #[test]
    fn mid_drain_pushes_land_in_sorted_position() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        // 100, 101, and 120 all map to wheel bucket 3 (96..128 ns).
        eng.schedule(
            SimDuration::from_nanos(100),
            |w: &mut World, eng: &mut Engine<World>| {
                w.log.push((100, "a"));
                eng.schedule(SimDuration::from_nanos(0), |w: &mut World, _| {
                    w.log.push((100, "d"));
                });
                eng.schedule(SimDuration::from_nanos(1), |w: &mut World, _| {
                    w.log.push((101, "e"));
                });
            },
        );
        eng.schedule(SimDuration::from_nanos(100), |w: &mut World, _| {
            w.log.push((100, "b"));
        });
        eng.schedule(SimDuration::from_nanos(120), |w: &mut World, _| {
            w.log.push((120, "f"));
        });
        eng.run(&mut w);
        assert_eq!(
            w.log,
            vec![(100, "a"), (100, "b"), (100, "d"), (101, "e"), (120, "f")]
        );
    }
}
