//! Integration tests for the verbs layer: a miniature multi-NIC world
//! with fixed link latency, exercising every verb and — crucially — the
//! WAIT + remote-WQE-manipulation forwarding chain that HyperLoop's
//! group primitives are built from.

use hl_nvm::NvmArena;
use hl_rnic::{
    field_offset, flags, Access, Cqe, CqeKind, CqeStatus, Nic, NicOutput, Opcode, RecvWqe,
    ScatterEntry, Wqe, WQE_SIZE,
};
use hl_sim::config::NicProfile;
use hl_sim::{Engine, RngFactory, SimDuration, SimTime};

const LINK_LATENCY: SimDuration = SimDuration::from_nanos(500);
const ARENA: usize = 1 << 20;

struct World {
    nics: Vec<Nic>,
    mems: Vec<NvmArena>,
    cq_events: Vec<(SimTime, usize, u32)>,
    completions: Vec<(SimTime, usize, u32, Cqe)>, // (when, nic, cq, cqe)
}
hl_sim::inert_event_ctx!(World);

impl World {
    fn new(n: usize) -> Self {
        let fac = RngFactory::new(1234);
        let profile = NicProfile {
            jitter_sigma: 0.0, // determinism-friendly for assertions
            ..NicProfile::default()
        };
        World {
            nics: (0..n)
                .map(|i| Nic::new(i as u32, profile.clone(), fac.stream_idx("nic", i as u64)))
                .collect(),
            mems: (0..n).map(|_| NvmArena::new(ARENA)).collect(),
            cq_events: Vec::new(),
            completions: Vec::new(),
        }
    }
}

/// Route NIC outputs into engine events.
fn route(nic_idx: usize, outs: Vec<NicOutput>, eng: &mut Engine<World>) {
    for o in outs {
        match o {
            NicOutput::Transmit {
                at,
                dst_nic,
                packet,
            } => {
                eng.schedule_at(at + LINK_LATENCY, move |w: &mut World, eng| {
                    let outs = w.nics[dst_nic as usize].on_packet(
                        eng.now(),
                        packet,
                        &mut w.mems[dst_nic as usize],
                    );
                    route(dst_nic as usize, outs, eng);
                });
            }
            NicOutput::Complete { at, cq, cqe } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    w.completions.push((eng.now(), nic_idx, cq, cqe));
                    let outs =
                        w.nics[nic_idx].deliver_cqe(eng.now(), cq, cqe, &mut w.mems[nic_idx]);
                    route(nic_idx, outs, eng);
                });
            }
            NicOutput::DoLocal { at, qpn, wqe } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs =
                        w.nics[nic_idx].finish_local(eng.now(), qpn, wqe, &mut w.mems[nic_idx]);
                    route(nic_idx, outs, eng);
                });
            }
            NicOutput::CqEvent { cq } => {
                eng.schedule_at(SimTime::ZERO, move |w: &mut World, eng| {
                    w.cq_events.push((eng.now(), nic_idx, cq));
                });
            }
            NicOutput::ArmTimer { at, qpn, gen } => {
                eng.schedule_at(at, move |w: &mut World, eng| {
                    let outs = w.nics[nic_idx].on_timer(eng.now(), qpn, gen, &mut w.mems[nic_idx]);
                    route(nic_idx, outs, eng);
                });
            }
            // The nic-level harness keeps legacy fire-and-ignore timer
            // semantics; stale generations no-op inside on_timer.
            NicOutput::CancelTimer { .. } => {}
        }
    }
}

/// Polled completions on a CQ right now (drains).
fn poll(w: &mut World, nic: usize, cq: u32) -> Vec<Cqe> {
    w.nics[nic].poll_cq(cq, 64)
}

/// Create a connected QP pair between nic `a` and nic `b`. Returns
/// (qpn_a, qpn_b, send_cq_a, recv_cq_b, ...). Rings are placed in each
/// arena at `ring_base`.
struct Pair {
    qp_a: u32,
    qp_b: u32,
    scq_a: u32,
    #[allow(dead_code)]
    rcq_a: u32,
    #[allow(dead_code)]
    scq_b: u32,
    rcq_b: u32,
}

fn connect_pair(w: &mut World, a: usize, b: usize, ring_base: u64) -> Pair {
    let scq_a = w.nics[a].create_cq();
    let rcq_a = w.nics[a].create_cq();
    let scq_b = w.nics[b].create_cq();
    let rcq_b = w.nics[b].create_cq();
    let qp_a = w.nics[a].create_qp(scq_a, rcq_a, ring_base, 64);
    let qp_b = w.nics[b].create_qp(scq_b, rcq_b, ring_base, 64);
    w.nics[a].connect(qp_a, b as u32, qp_b);
    w.nics[b].connect(qp_b, a as u32, qp_a);
    Pair {
        qp_a,
        qp_b,
        scq_a,
        rcq_a,
        scq_b,
        rcq_b,
    }
}

#[test]
fn write_lands_remotely_and_completes() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    // Remote-writable MR on nic 1.
    let mr = w.nics[1].register_mr(0x1000, 0x1000, Access::REMOTE_WRITE);
    // Source data on nic 0.
    w.mems[0].write(0x2000, b"hyperloop!").unwrap();
    let wqe = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: 10,
        laddr: 0x2000,
        raddr: 0x1000,
        rkey: mr.rkey,
        wr_id: 99,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.mems[1].read(0x1000, 10).unwrap(), b"hyperloop!");
    // Data sits in the NIC cache (not yet durable) until a FLUSH.
    assert!(!w.mems[1].is_durable(0x1000, 10));
    let cqes = poll(&mut w, 0, p.scq_a);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].wr_id, 99);
    assert_eq!(cqes[0].status, CqeStatus::Ok);
    assert_eq!(cqes[0].byte_len, 10);
    // Round trip happened: some sim time passed.
    assert!(eng.now().as_nanos() > 1000);
}

#[test]
fn write_without_permission_gets_error_cqe() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    let mr = w.nics[1].register_mr(0x1000, 0x1000, Access::REMOTE_READ); // no write!
    let wqe = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: 8,
        laddr: 0x2000,
        raddr: 0x1000,
        rkey: mr.rkey,
        wr_id: 7,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.mems[1].read(0x1000, 8).unwrap(), &[0; 8]);
    let cqes = poll(&mut w, 0, p.scq_a);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].status, CqeStatus::RemoteAccess);
    assert_eq!(w.nics[1].counters().naks_sent, 1);
}

#[test]
fn send_scatters_into_multiple_targets() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    // Receiver scatters: bytes [0..4) to 0x100, bytes [8..12) to 0x200.
    w.nics[1].post_recv(
        p.qp_b,
        RecvWqe {
            wr_id: 5,
            scatter: vec![
                ScatterEntry {
                    msg_off: 0,
                    len: 4,
                    addr: 0x100,
                },
                ScatterEntry {
                    msg_off: 8,
                    len: 4,
                    addr: 0x200,
                },
            ],
        },
    );
    w.mems[0].write(0x3000, b"AAAAbbbbCCCC").unwrap();
    let wqe = Wqe {
        opcode: Opcode::Send,
        flags: flags::SIGNALED,
        len: 12,
        laddr: 0x3000,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.mems[1].read(0x100, 4).unwrap(), b"AAAA");
    assert_eq!(w.mems[1].read(0x200, 4).unwrap(), b"CCCC");
    let rx = poll(&mut w, 1, p.rcq_b);
    assert_eq!(rx.len(), 1);
    assert_eq!(rx[0].kind, CqeKind::Recv);
    assert_eq!(rx[0].wr_id, 5);
    assert_eq!(rx[0].byte_len, 12);
    // Sender got its ack completion too.
    assert_eq!(poll(&mut w, 0, p.scq_a).len(), 1);
}

#[test]
fn send_without_recv_is_rnr() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    let wqe = Wqe {
        opcode: Opcode::Send,
        flags: flags::SIGNALED,
        len: 4,
        laddr: 0x3000,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    let cqes = poll(&mut w, 0, p.scq_a);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].status, CqeStatus::ReceiverNotReady);
}

#[test]
fn read_fetches_and_fences() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    let mr = w.nics[1].register_mr(0x1000, 0x100, Access::REMOTE_READ | Access::REMOTE_WRITE);
    w.mems[1].write(0x1000, b"remote-bytes").unwrap();
    // READ then WRITE posted together: the WRITE must not overtake the
    // fencing READ.
    let read = Wqe {
        opcode: Opcode::Read,
        flags: flags::SIGNALED,
        len: 12,
        laddr: 0x4000,
        raddr: 0x1000,
        rkey: mr.rkey,
        wr_id: 1,
        ..Default::default()
    };
    let write = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: 4,
        laddr: 0x4000, // writes back the first 4 bytes just read
        raddr: 0x1020,
        rkey: mr.rkey,
        wr_id: 2,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, read, false)
        .unwrap();
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, write, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.mems[0].read(0x4000, 12).unwrap(), b"remote-bytes");
    // The write executed after the read response, so it carried the data.
    assert_eq!(w.mems[1].read(0x1020, 4).unwrap(), b"remo");
    let cqes = poll(&mut w, 0, p.scq_a);
    assert_eq!(cqes.iter().map(|c| c.wr_id).collect::<Vec<_>>(), vec![1, 2]);
}

#[test]
fn flush_makes_remote_data_durable() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    let mr = w.nics[1].register_mr(0x1000, 0x100, Access::REMOTE_READ | Access::REMOTE_WRITE);
    w.mems[0].write(0x2000, b"durable-data").unwrap();
    let write = Wqe {
        opcode: Opcode::Write,
        len: 12,
        laddr: 0x2000,
        raddr: 0x1000,
        rkey: mr.rkey,
        wr_id: 1,
        ..Default::default()
    };
    let flush = Wqe {
        opcode: Opcode::Flush,
        flags: flags::SIGNALED,
        len: 12,
        raddr: 0x1000,
        rkey: mr.rkey,
        wr_id: 2,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, write, false)
        .unwrap();
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, flush, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert!(w.mems[1].is_durable(0x1000, 12));
    // Crash: the data survives.
    w.mems[1].crash();
    assert_eq!(w.mems[1].read(0x1000, 12).unwrap(), b"durable-data");
    let cqes = poll(&mut w, 0, p.scq_a);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].wr_id, 2);
    assert_eq!(w.nics[1].counters().flushes, 1);
}

#[test]
fn cas_swaps_exactly_once() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    let mr = w.nics[1].register_mr(0x1000, 0x100, Access::REMOTE_ATOMIC);
    // Lock word starts at 0 (unlocked).
    let cas = Wqe {
        opcode: Opcode::Cas,
        flags: flags::SIGNALED,
        len: 8,
        laddr: 0x5000, // result destination
        raddr: 0x1008,
        rkey: mr.rkey,
        cmp: 0,
        swp: 77,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, cas, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(w.mems[1].read_u64(0x1008).unwrap(), 77);
    assert_eq!(w.mems[0].read_u64(0x5000).unwrap(), 0); // original value

    // Second CAS with the same compare fails and returns 77.
    let cas2 = Wqe { wr_id: 2, ..cas };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, cas2, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(eng.now(), p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(w.mems[1].read_u64(0x1008).unwrap(), 77); // unchanged
    assert_eq!(w.mems[0].read_u64(0x5000).unwrap(), 77); // reports current
}

#[test]
fn deferred_wqe_waits_for_ownership() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    let mr = w.nics[1].register_mr(0x1000, 0x100, Access::REMOTE_WRITE);
    w.mems[0].write(0x2000, b"deferred").unwrap();
    let wqe = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: 8,
        laddr: 0x2000,
        raddr: 0x1000,
        rkey: mr.rkey,
        wr_id: 1,
        ..Default::default()
    };
    let idx = w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, wqe, true)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    // Nothing executed: software still owns the descriptor.
    assert_eq!(w.mems[1].read(0x1000, 8).unwrap(), &[0; 8]);

    // Grant ownership (the modified driver's late hand-off) and kick.
    w.nics[0].grant_ownership(&mut w.mems[0], p.qp_a, idx);
    let outs = w.nics[0].ring_doorbell(eng.now(), p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(w.mems[1].read(0x1000, 8).unwrap(), b"deferred");
}

#[test]
fn wrong_peer_is_refused() {
    let mut w = World::new(3);
    let mut eng = Engine::new();
    let _ab = connect_pair(&mut w, 0, 1, 0x10000);
    // nic2 creates a QP pointing at nic1's qp 0 — but nic1's qp 0 is
    // connected to nic0, so nic1 must refuse nic2's traffic.
    let scq = w.nics[2].create_cq();
    let rcq = w.nics[2].create_cq();
    let rogue = w.nics[2].create_qp(scq, rcq, 0x10000, 16);
    w.nics[2].connect(rogue, 1, 0);
    let mr = w.nics[1].register_mr(0x1000, 0x100, Access::REMOTE_WRITE);
    let wqe = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED,
        len: 4,
        laddr: 0,
        raddr: 0x1000,
        rkey: mr.rkey,
        wr_id: 13,
        ..Default::default()
    };
    w.nics[2]
        .post_send(&mut w.mems[2], rogue, wqe, false)
        .unwrap();
    let outs = w.nics[2].ring_doorbell(SimTime::ZERO, rogue, &mut w.mems[2]);
    route(2, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(w.mems[1].read(0x1000, 4).unwrap(), &[0; 4]);
    let cqes = poll(&mut w, 2, scq);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].status, CqeStatus::RemoteAccess);
}

#[test]
fn ring_full_is_reported() {
    let mut w = World::new(2);
    let scq = w.nics[0].create_cq();
    let rcq = w.nics[0].create_cq();
    let qp = w.nics[0].create_qp(scq, rcq, 0x10000, 2);
    let wqe = Wqe {
        opcode: Opcode::Nop,
        ..Default::default()
    };
    let mut mem = std::mem::replace(&mut w.mems[0], NvmArena::new(1));
    assert!(w.nics[0].post_send(&mut mem, qp, wqe, true).is_ok());
    assert!(w.nics[0].post_send(&mut mem, qp, wqe, true).is_ok());
    let err = w.nics[0].post_send(&mut mem, qp, wqe, true).unwrap_err();
    assert_eq!(err.capacity, 2);
}

#[test]
fn cq_event_fires_when_armed() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    w.nics[1].post_recv(
        p.qp_b,
        RecvWqe {
            wr_id: 1,
            scatter: vec![],
        },
    );
    w.nics[1].arm_cq(p.rcq_b);
    let wqe = Wqe {
        opcode: Opcode::Send,
        len: 4,
        laddr: 0x3000,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, wqe, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(w.cq_events.len(), 1);
    assert_eq!(w.cq_events[0].1, 1); // fired on nic 1
    assert_eq!(w.cq_events[0].2, p.rcq_b);
}

/// The core HyperLoop mechanism at verbs level: a 3-node chain where
/// the middle node's NIC forwards autonomously. Node 0 (client) writes
/// data and sends metadata to node 1; node 1's pre-posted
/// WAIT+WRITE+SEND (descriptors rewritten by the incoming metadata
/// scatter) forward the data to node 2 with no CPU involvement.
#[test]
fn wait_chain_forwards_without_cpu() {
    let mut w = World::new(3);
    let mut eng = Engine::new();

    // Connections: 0 -> 1 (pair01), 1 -> 2 (pair12).
    let p01 = connect_pair(&mut w, 0, 1, 0x10000);
    let p12 = connect_pair(&mut w, 1, 2, 0x20000);

    // Node 1 memory: log region 0x1000 (remote-writable by node 0);
    // its SQ ring for the 1->2 QP lives at 0x20000 and must be
    // remote-writable so the client's metadata can rewrite descriptors.
    let log1 = w.nics[1].register_mr(0x1000, 0x1000, Access::REMOTE_WRITE);
    let _ring1 = w.nics[1].register_mr(0x20000, 64 * WQE_SIZE, Access::REMOTE_WRITE);
    // Node 2 memory: log region.
    let log2 = w.nics[2].register_mr(0x1000, 0x1000, Access::REMOTE_WRITE);

    // --- Node 1 pre-posts its forwarding slot (done once, by its CPU,
    // off the critical path) ----------------------------------------
    // WAIT on the recv CQ of the 0->1 QP, then an (initially SW-owned,
    // blank) WRITE toward node 2.
    let wait = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED,
        raddr: Wqe::wait_params(p01.rcq_b, 1),
        activate_n: 1,
        ..Default::default()
    };
    let blank_write = Wqe {
        opcode: Opcode::Write,
        flags: flags::SIGNALED, // deferred post clears HW_OWNED
        len: 0,                 // rewritten by metadata scatter
        laddr: 0,               // rewritten
        raddr: 0,               // rewritten
        rkey: log2.rkey,
        wr_id: 42,
        ..Default::default()
    };
    w.nics[1]
        .post_send(&mut w.mems[1], p12.qp_a, wait, false)
        .unwrap();
    let write_idx = w.nics[1]
        .post_send(&mut w.mems[1], p12.qp_a, blank_write, true)
        .unwrap();
    // Doorbell arms the WAIT; it parks (nothing received yet).
    let outs = w.nics[1].ring_doorbell(SimTime::ZERO, p12.qp_a, &mut w.mems[1]);
    route(1, outs, &mut eng);

    // The pre-posted RECV scatters incoming metadata INTO the blank
    // WRITE's descriptor fields: len @+4, laddr @+8, raddr @+16.
    let write_slot = 0x20000 + (write_idx % 64) * WQE_SIZE;
    w.nics[1].post_recv(
        p01.qp_b,
        RecvWqe {
            wr_id: 7,
            scatter: vec![
                ScatterEntry {
                    msg_off: 0,
                    len: 4,
                    addr: write_slot + field_offset::LEN,
                },
                ScatterEntry {
                    msg_off: 4,
                    len: 8,
                    addr: write_slot + field_offset::LADDR,
                },
                ScatterEntry {
                    msg_off: 12,
                    len: 8,
                    addr: write_slot + field_offset::RADDR,
                },
            ],
        },
    );

    // --- Client (node 0): WRITE data into node 1's log, then SEND the
    // metadata describing node 1's forwarding write -------------------
    w.mems[0].write(0x3000, b"chained-payload!").unwrap();
    let data_write = Wqe {
        opcode: Opcode::Write,
        len: 16,
        laddr: 0x3000,
        raddr: 0x1000 + 0x40, // node 1 log offset 0x40
        rkey: log1.rkey,
        wr_id: 1,
        ..Default::default()
    };
    // Metadata: node 1 shall write 16 bytes from ITS 0x1040 to node 2's
    // 0x1000+0x40.
    let mut meta = Vec::new();
    meta.extend_from_slice(&16u32.to_le_bytes());
    meta.extend_from_slice(&0x1040u64.to_le_bytes());
    meta.extend_from_slice(&(0x1040u64).to_le_bytes());
    w.mems[0].write(0x4000, &meta).unwrap();
    let meta_send = Wqe {
        opcode: Opcode::Send,
        len: meta.len() as u32,
        laddr: 0x4000,
        wr_id: 2,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p01.qp_a, data_write, false)
        .unwrap();
    w.nics[0]
        .post_send(&mut w.mems[0], p01.qp_a, meta_send, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p01.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);

    eng.run(&mut w);

    // Node 1 received the data...
    assert_eq!(w.mems[1].read(0x1040, 16).unwrap(), b"chained-payload!");
    // ...and node 1's NIC forwarded it to node 2 autonomously.
    assert_eq!(w.mems[2].read(0x1040, 16).unwrap(), b"chained-payload!");
    // The forwarding write completed on node 1's send CQ (NIC-generated;
    // a replica CPU never polled anything).
    let fwd = poll(&mut w, 1, p12.scq_a);
    assert_eq!(fwd.len(), 1);
    assert_eq!(fwd[0].wr_id, 42);
    assert_eq!(fwd[0].byte_len, 16);
}

/// Loopback LOCAL_COPY triggered by a WAIT on a recv CQ — the gMEMCPY
/// building block: an incoming command makes the local NIC move bytes
/// from the log region to the data region with no CPU.
#[test]
fn wait_triggers_local_copy() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p01 = connect_pair(&mut w, 0, 1, 0x10000);

    // Loopback QP on node 1.
    let lcq = w.nics[1].create_cq();
    let loop_qp = w.nics[1].create_qp(lcq, lcq, 0x30000, 16);

    // Pre-post WAIT + (deferred) LOCAL_COPY on the loopback QP.
    let wait = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED,
        raddr: Wqe::wait_params(p01.rcq_b, 1),
        activate_n: 1,
        ..Default::default()
    };
    let copy = Wqe {
        opcode: Opcode::LocalCopy,
        flags: flags::SIGNALED,
        len: 0, // rewritten by scatter
        laddr: 0,
        raddr: 0,
        wr_id: 9,
        ..Default::default()
    };
    w.nics[1]
        .post_send(&mut w.mems[1], loop_qp, wait, false)
        .unwrap();
    let copy_idx = w.nics[1]
        .post_send(&mut w.mems[1], loop_qp, copy, true)
        .unwrap();
    let outs = w.nics[1].ring_doorbell(SimTime::ZERO, loop_qp, &mut w.mems[1]);
    route(1, outs, &mut eng);

    let copy_slot = 0x30000 + (copy_idx % 16) * WQE_SIZE;
    w.nics[1].post_recv(
        p01.qp_b,
        RecvWqe {
            wr_id: 3,
            scatter: vec![
                ScatterEntry {
                    msg_off: 0,
                    len: 4,
                    addr: copy_slot + field_offset::LEN,
                },
                ScatterEntry {
                    msg_off: 4,
                    len: 8,
                    addr: copy_slot + field_offset::LADDR,
                },
                ScatterEntry {
                    msg_off: 12,
                    len: 8,
                    addr: copy_slot + field_offset::RADDR,
                },
            ],
        },
    );

    // Node 1's "log" already has data at 0x6000 (imagine a prior gWRITE).
    w.mems[1].write(0x6000, b"log-entry").unwrap();

    // Client sends the memcpy command: copy 9 bytes 0x6000 -> 0x7000.
    let mut meta = Vec::new();
    meta.extend_from_slice(&9u32.to_le_bytes());
    meta.extend_from_slice(&0x6000u64.to_le_bytes());
    meta.extend_from_slice(&0x7000u64.to_le_bytes());
    w.mems[0].write(0x4000, &meta).unwrap();
    let send = Wqe {
        opcode: Opcode::Send,
        len: meta.len() as u32,
        laddr: 0x4000,
        wr_id: 2,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p01.qp_a, send, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p01.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    assert_eq!(w.mems[1].read(0x7000, 9).unwrap(), b"log-entry");
    let cqes = poll(&mut w, 1, lcq);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].wr_id, 9);
}

/// A WAIT with count 2 must not fire until both completions arrive.
#[test]
fn wait_count_semantics() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p01 = connect_pair(&mut w, 0, 1, 0x10000);

    let lcq = w.nics[1].create_cq();
    let loop_qp = w.nics[1].create_qp(lcq, lcq, 0x30000, 16);
    let wait2 = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED,
        raddr: Wqe::wait_params(p01.rcq_b, 2),
        activate_n: 1,
        ..Default::default()
    };
    let nop = Wqe {
        opcode: Opcode::Nop,
        flags: flags::SIGNALED,
        wr_id: 11,
        ..Default::default()
    };
    w.nics[1]
        .post_send(&mut w.mems[1], loop_qp, wait2, false)
        .unwrap();
    w.nics[1]
        .post_send(&mut w.mems[1], loop_qp, nop, true)
        .unwrap();
    let outs = w.nics[1].ring_doorbell(SimTime::ZERO, loop_qp, &mut w.mems[1]);
    route(1, outs, &mut eng);

    for i in 0..2 {
        w.nics[1].post_recv(
            p01.qp_b,
            RecvWqe {
                wr_id: i,
                scatter: vec![],
            },
        );
    }
    // First send: WAIT must not fire yet.
    let send = Wqe {
        opcode: Opcode::Send,
        len: 1,
        laddr: 0x4000,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p01.qp_a, send, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p01.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    assert!(
        poll(&mut w, 1, lcq).is_empty(),
        "WAIT(2) fired after one CQE"
    );

    // Second send: now it fires.
    w.nics[0]
        .post_send(&mut w.mems[0], p01.qp_a, send, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(eng.now(), p01.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    let cqes = poll(&mut w, 1, lcq);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].wr_id, 11);
}

/// gCAS's execute map: rewriting a pre-posted CAS into a NOP must skip
/// the swap but still produce the completion that keeps the chain alive.
#[test]
fn cas_to_nop_conversion_keeps_chain_alive() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p01 = connect_pair(&mut w, 0, 1, 0x10000);

    let lcq = w.nics[1].create_cq();
    let loop_qp = w.nics[1].create_qp(lcq, lcq, 0x30000, 16);
    w.mems[1].write_u64(0x6000, 5).unwrap(); // lock word

    let wait = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED,
        raddr: Wqe::wait_params(p01.rcq_b, 1),
        activate_n: 1,
        ..Default::default()
    };
    let cas = Wqe {
        opcode: Opcode::LocalCas,
        flags: flags::SIGNALED,
        len: 8,
        laddr: 0x6100, // result
        raddr: 0x6000,
        cmp: 5,
        swp: 99,
        wr_id: 21,
        ..Default::default()
    };
    w.nics[1]
        .post_send(&mut w.mems[1], loop_qp, wait, false)
        .unwrap();
    let cas_idx = w.nics[1]
        .post_send(&mut w.mems[1], loop_qp, cas, true)
        .unwrap();
    let outs = w.nics[1].ring_doorbell(SimTime::ZERO, loop_qp, &mut w.mems[1]);
    route(1, outs, &mut eng);

    // RECV scatter rewrites the CAS opcode byte to NOP (execute map says
    // "skip this replica").
    let cas_slot = 0x30000 + (cas_idx % 16) * WQE_SIZE;
    w.nics[1].post_recv(
        p01.qp_b,
        RecvWqe {
            wr_id: 3,
            scatter: vec![ScatterEntry {
                msg_off: 0,
                len: 1,
                addr: cas_slot + field_offset::OPCODE,
            }],
        },
    );
    // The message's first byte is the NOP opcode.
    w.mems[0].write(0x4000, &[Opcode::Nop as u8]).unwrap();
    let send = Wqe {
        opcode: Opcode::Send,
        len: 1,
        laddr: 0x4000,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p01.qp_a, send, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p01.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    // The lock word is untouched...
    assert_eq!(w.mems[1].read_u64(0x6000).unwrap(), 5);
    // ...but the completion still arrived (chain stays alive).
    let cqes = poll(&mut w, 1, lcq);
    assert_eq!(cqes.len(), 1);
    assert_eq!(cqes[0].wr_id, 21);
    assert_eq!(cqes[0].status, CqeStatus::Ok);
}

/// WAIT activation across the ring's wrap point: a WAIT near the end of
/// a small ring must grant ownership to WQEs whose slots wrapped to the
/// ring's start — the steady-state case for HyperLoop's reused slots.
#[test]
fn wait_activation_wraps_the_ring() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p01 = connect_pair(&mut w, 0, 1, 0x10000);
    let mr = w.nics[1].register_mr(0x1000, 0x1000, Access::REMOTE_WRITE);
    let _ = mr;

    // A loopback QP on nic 1 with a tiny ring of 4 slots.
    let lcq = w.nics[1].create_cq();
    let loop_qp = w.nics[1].create_qp(lcq, lcq, 0x30000, 4);

    // Fill indices 0..2 with executed NOPs to advance head near the end.
    for i in 0..3u64 {
        let nop = Wqe {
            opcode: Opcode::Nop,
            flags: flags::SIGNALED,
            wr_id: i,
            ..Default::default()
        };
        w.nics[1]
            .post_send(&mut w.mems[1], loop_qp, nop, false)
            .unwrap();
    }
    let outs = w.nics[1].ring_doorbell(SimTime::ZERO, loop_qp, &mut w.mems[1]);
    route(1, outs, &mut eng);
    eng.run(&mut w);
    assert_eq!(poll(&mut w, 1, lcq).len(), 3);

    // Index 3: WAIT with activate_n = 2; indices 4 and 5 wrap to ring
    // slots 0 and 1.
    let wait = Wqe {
        opcode: Opcode::Wait,
        flags: flags::HW_OWNED,
        raddr: Wqe::wait_params(p01.rcq_b, 1),
        activate_n: 2,
        ..Default::default()
    };
    w.nics[1]
        .post_send(&mut w.mems[1], loop_qp, wait, false)
        .unwrap();
    for i in [4u64, 5] {
        let nop = Wqe {
            opcode: Opcode::Nop,
            flags: flags::SIGNALED,
            wr_id: 100 + i,
            ..Default::default()
        };
        w.nics[1]
            .post_send(&mut w.mems[1], loop_qp, nop, true)
            .unwrap();
    }
    let outs = w.nics[1].ring_doorbell(SimTime::ZERO, loop_qp, &mut w.mems[1]);
    route(1, outs, &mut eng);
    eng.run(&mut w);
    assert!(poll(&mut w, 1, lcq).is_empty(), "parked before trigger");

    // Trigger via a SEND on the 0->1 QP.
    w.nics[1].post_recv(
        p01.qp_b,
        RecvWqe {
            wr_id: 1,
            scatter: vec![],
        },
    );
    let send = Wqe {
        opcode: Opcode::Send,
        len: 1,
        laddr: 0x4000,
        wr_id: 1,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p01.qp_a, send, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p01.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    let cqes = poll(&mut w, 1, lcq);
    let ids: Vec<u64> = cqes.iter().map(|c| c.wr_id).collect();
    assert_eq!(
        ids,
        vec![104, 105],
        "wrapped WQEs activated and executed in order"
    );
}

/// A WQE whose local gather falls outside the arena must not panic the
/// NIC: the faulting WQE completes `LocalProtection` (the simulator's
/// IBV_WC_LOC_PROT_ERR), the QP enters Error, and everything queued
/// behind it flushes `FlushedInError` — mirroring real RC-QP semantics.
#[test]
fn local_gather_fault_errors_qp_instead_of_panicking() {
    let mut w = World::new(2);
    let mut eng = Engine::new();
    let p = connect_pair(&mut w, 0, 1, 0x10000);
    let bad = Wqe {
        opcode: Opcode::Send,
        flags: flags::SIGNALED,
        len: 16,
        laddr: (ARENA as u64) + 0x1000, // outside the arena: gather fails
        wr_id: 1,
        ..Default::default()
    };
    let trailing = Wqe {
        opcode: Opcode::Send,
        flags: flags::SIGNALED,
        len: 4,
        laddr: 0x2000,
        wr_id: 2,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, bad, false)
        .unwrap();
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, trailing, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    let cqes = poll(&mut w, 0, p.scq_a);
    assert_eq!(cqes.len(), 2, "{cqes:#?}");
    assert_eq!(cqes[0].wr_id, 1);
    assert_eq!(cqes[0].status, CqeStatus::LocalProtection);
    assert_eq!(cqes[1].wr_id, 2);
    assert_eq!(cqes[1].status, CqeStatus::FlushedInError);
    // The QP is dead: later posts flush immediately in error.
    let late = Wqe {
        opcode: Opcode::Send,
        flags: flags::SIGNALED,
        len: 4,
        laddr: 0x2000,
        wr_id: 3,
        ..Default::default()
    };
    w.nics[0]
        .post_send(&mut w.mems[0], p.qp_a, late, false)
        .unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, p.qp_a, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);
    let cqes = poll(&mut w, 0, p.scq_a);
    assert_eq!(cqes.len(), 1, "{cqes:#?}");
    assert_eq!(cqes[0].wr_id, 3);
    assert_eq!(cqes[0].status, CqeStatus::FlushedInError);
}

/// Ringing the doorbell on a QP that was never connected is a local
/// fault, not a crash.
#[test]
fn send_on_unconnected_qp_errors_qp_instead_of_panicking() {
    let mut w = World::new(1);
    let mut eng = Engine::new();
    let cq = w.nics[0].create_cq();
    let qp = w.nics[0].create_qp(cq, cq, 0x10000, 8); // no connect()
    let wqe = Wqe {
        opcode: Opcode::Send,
        flags: flags::SIGNALED,
        len: 4,
        laddr: 0x2000,
        wr_id: 7,
        ..Default::default()
    };
    w.nics[0].post_send(&mut w.mems[0], qp, wqe, false).unwrap();
    let outs = w.nics[0].ring_doorbell(SimTime::ZERO, qp, &mut w.mems[0]);
    route(0, outs, &mut eng);
    eng.run(&mut w);

    let cqes = poll(&mut w, 0, cq);
    assert_eq!(cqes.len(), 1, "{cqes:#?}");
    assert_eq!(cqes[0].wr_id, 7);
    assert_eq!(cqes[0].status, CqeStatus::LocalProtection);
}
