//! Shard fault isolation: chaos on one shard's chain must not touch the
//! others.
//!
//! Two independent HyperLoop groups are placed on disjoint hosts by
//! [`ShardPlan::place`] (6 hosts for 2 shards of 3 members, plus two
//! standbys for rebuilds). Both shards drive a record stream through
//! deadline-supervised clients while a seeded, *shard-scoped* fault
//! schedule ([`FaultSchedule::generate_shard_faults`]: link-down,
//! WAIT-engine stalls and *silent* NIC stalls, only on the victim
//! shard's replicas) plays out. Silent stalls on a non-head replica
//! produce no error CQE and no missed heartbeat, so each shard also
//! arms the client-side end-to-end deadline probe
//! ([`RetryClient::arm_nic_stall_probe`]) and funnels suspicion into
//! the same latched rebuild path as the binary detectors.
//!
//! Invariants, per seed:
//!
//! 1. **Victim recovers** — every supervised op settles, and an append
//!    issued after the fault window completes; acked records are
//!    byte-identical on every member of the victim's final chain.
//! 2. **Bystander untouched** — the non-victim shard records zero
//!    failures, zero rebuilds, and (the strong form) *byte-identical
//!    per-op latencies* to a fault-free control run of the same seed:
//!    disjoint placement means the fault cannot even perturb its
//!    timing.
//! 3. **Rebuild scoped** — only the victim shard's group ever rebuilds
//!    (`victim_shard_permanent_fault_rebuilds_only_its_group` forces a
//!    permanent head failure to prove a rebuild actually happens and
//!    stays scoped).
//! 4. **Race-freedom** — under `check-ownership`, the WQE-ownership &
//!    DMA race detector stays clean across the whole campaign.

use hyperloop_repro::cluster::chaos::{BystanderProbe, FaultEvent, FaultKind, FaultSchedule};
use hyperloop_repro::cluster::shard::ShardPlan;
use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::GroupClient;
use hyperloop_repro::hyperloop::recovery::{self, HeartbeatConfig};
use hyperloop_repro::hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupRef, HyperLoopClient, RetryClient,
};
use hyperloop_repro::sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const N_SHARDS: usize = 2;
const REPLICAS: usize = 2;
const N_RECORDS: usize = 24;
const REC_BYTES: usize = 64;
const STANDBYS: [HostId; 2] = [HostId(6), HostId(7)];
const VICTIM: usize = 0;
const BYSTANDER: usize = 1;

fn record(shard: usize, k: usize) -> Vec<u8> {
    let mut v = format!("shard{shard}-rec-{k:04}-").into_bytes();
    while v.len() < REC_BYTES {
        v.push(b'a' + ((shard + k) % 26) as u8);
    }
    v
}

#[allow(clippy::too_many_arguments)]
fn trigger_rebuild(
    latch: &Rc<RefCell<bool>>,
    rebuilds: &Rc<RefCell<u32>>,
    group: &GroupRef,
    retry: &RetryClient,
    members: &[HostId],
    standbys: &Rc<RefCell<Vec<HostId>>>,
    failed: HostId,
    probe_blame: &Rc<RefCell<usize>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    if std::mem::replace(&mut *latch.borrow_mut(), true) {
        return;
    }
    let survivors: Vec<HostId> = members.iter().copied().filter(|&h| h != failed).collect();
    let new_member = standbys.borrow_mut().pop();
    if survivors.is_empty() && new_member.is_none() {
        // Nothing to rebuild onto — leave the group serving so retries
        // can ride the fault out instead of wedging behind `paused`.
        return;
    }
    *rebuilds.borrow_mut() += 1;
    group.borrow_mut().paused = true;
    let mut final_members = survivors.clone();
    if let Some(nm) = new_member {
        final_members.push(nm);
    }
    let retry = retry.clone();
    let standbys = standbys.clone();
    let rebuilds = rebuilds.clone();
    let probe_blame = probe_blame.clone();
    recovery::rebuild_chain(
        w,
        eng,
        group,
        survivors,
        new_member,
        64,
        Box::new(move |w, eng, new_client| {
            retry.swap(new_client.clone());
            arm_recovery(
                new_client.group(),
                &retry,
                final_members,
                standbys,
                rebuilds,
                probe_blame,
                w,
                eng,
            );
        }),
    );
}

/// Arm heartbeat + transport-error detection on one shard's group,
/// counting rebuilds so the isolation invariant can assert they stay
/// scoped to the victim.
#[allow(clippy::too_many_arguments)]
fn arm_recovery(
    group: &GroupRef,
    retry: &RetryClient,
    members: Vec<HostId>,
    standbys: Rc<RefCell<Vec<HostId>>>,
    rebuilds: Rc<RefCell<u32>>,
    probe_blame: Rc<RefCell<usize>>,
    w: &mut World,
    eng: &mut Engine<World>,
) {
    let latch = Rc::new(RefCell::new(false));
    {
        let latch = latch.clone();
        let g = group.clone();
        let retry = retry.clone();
        let members = members.clone();
        let standbys = standbys.clone();
        let rebuilds = rebuilds.clone();
        let probe_blame = probe_blame.clone();
        recovery::start_heartbeats(
            group,
            HeartbeatConfig {
                period: SimDuration::from_millis(2),
                miss_threshold: 3,
            },
            Box::new(move |w, eng, idx| {
                let failed = members[idx];
                trigger_rebuild(
                    &latch,
                    &rebuilds,
                    &g,
                    &retry,
                    &members,
                    &standbys,
                    failed,
                    &probe_blame,
                    w,
                    eng,
                );
            }),
            w,
            eng,
        );
    }
    {
        let latch = latch.clone();
        let g = group.clone();
        let retry = retry.clone();
        let members = members.clone();
        let standbys = standbys.clone();
        let rebuilds = rebuilds.clone();
        let probe_blame = probe_blame.clone();
        recovery::watch_transport_errors(
            group,
            w,
            Box::new(move |w, eng, _cqe| {
                let failed = members[0];
                trigger_rebuild(
                    &latch,
                    &rebuilds,
                    &g,
                    &retry,
                    &members,
                    &standbys,
                    failed,
                    &probe_blame,
                    w,
                    eng,
                );
            }),
        );
    }
    {
        // End-to-end probe for silent NIC stalls. The probe cannot tell
        // *which* NIC stalled, so blame rotates across chain
        // generations, starting at the first non-head member (a stalled
        // head is usually caught by the transport-error path first): if
        // the first eviction misses the culprit, the next generation's
        // suspicion evicts the next member, bounding recovery at one
        // rebuild per member. Re-armed on every generation.
        // Threshold 5 (≈10ms of consecutive expiries): slow enough
        // that heartbeat loss (~6ms) and head transport errors win the
        // latch for fail-stop faults (they blame the exact host), fast
        // enough to catch a silent stall well inside the retry budget.
        let g = group.clone();
        let r = retry.clone();
        retry.arm_nic_stall_probe(
            5,
            Box::new(move |w, eng| {
                let idx = {
                    let mut b = probe_blame.borrow_mut();
                    let i = *b;
                    *b += 1;
                    i
                };
                let failed = members[(1 + idx) % members.len()];
                trigger_rebuild(
                    &latch,
                    &rebuilds,
                    &g,
                    &r,
                    &members,
                    &standbys,
                    failed,
                    &probe_blame,
                    w,
                    eng,
                );
            }),
        );
    }
}

struct ShardOutcome {
    retry: RetryClient,
    acked: Vec<bool>,
    /// Shared bystander recorder: per-op completion latencies (ns) in
    /// op order (successes only) plus the failed-op count.
    probe: BystanderProbe,
    rebuilds: u32,
    final_ok: Option<bool>,
}

struct CampaignOutcome {
    w: World,
    shards: Vec<ShardOutcome>,
}

/// Run the two-shard campaign. `faults` is `None` for the fault-free
/// control, or `Some(schedule)` scoped to the victim shard's replicas.
fn run_campaign(seed: u64, faults: Option<&FaultSchedule>) -> CampaignOutcome {
    let (mut w, mut eng) = ClusterBuilder::new(8)
        .arena_size(2 << 20)
        .seed(seed)
        .build();

    let hosts: Vec<HostId> = (0..N_SHARDS * (1 + REPLICAS)).map(HostId).collect();
    let plan = ShardPlan::place(N_SHARDS, REPLICAS, &hosts);
    assert!(plan.is_disjoint());

    let mut retries = Vec::new();
    let mut rebuild_counters = Vec::new();
    for g in &plan.groups {
        let group = GroupBuilder::new(GroupConfig {
            client: g.client,
            replicas: g.replicas.clone(),
            rep_bytes: 256 << 10,
            ring_slots: 64,
            transport_timeout: Some((SimDuration::from_millis(3), 7)),
            ..Default::default()
        })
        .build(&mut w);
        replica::start_replenishers(&group, &mut w, &mut eng);
        let client = HyperLoopClient::new(group.clone(), &mut w);
        let retry = RetryClient::with_policy(
            client,
            DeadlinePolicy {
                deadline: SimDuration::from_millis(2),
                max_attempts: 20,
                backoff: SimDuration::from_micros(500),
                backoff_cap: SimDuration::from_millis(4),
            },
        );
        // Only the victim shard gets the standby; the bystander must
        // never need one.
        let standbys = Rc::new(RefCell::new(if g.shard == VICTIM {
            STANDBYS.to_vec()
        } else {
            vec![]
        }));
        let rebuilds = Rc::new(RefCell::new(0u32));
        arm_recovery(
            &group,
            &retry,
            g.replicas.clone(),
            standbys,
            rebuilds.clone(),
            Rc::new(RefCell::new(0usize)),
            &mut w,
            &mut eng,
        );
        retries.push(retry);
        rebuild_counters.push(rebuilds);
    }

    // Workload: each shard appends one durable record every 2ms.
    let acked: Vec<_> = (0..N_SHARDS)
        .map(|_| Rc::new(RefCell::new(vec![false; N_RECORDS])))
        .collect();
    let probes: Vec<_> = (0..N_SHARDS).map(|_| BystanderProbe::new()).collect();
    for sid in 0..N_SHARDS {
        for k in 0..N_RECORDS {
            let retry = retries[sid].clone();
            let acked = acked[sid].clone();
            let probe = probes[sid].clone();
            let at = SimTime::from_nanos(1_000_000 + k as u64 * 2_000_000);
            eng.schedule_at(at, move |w: &mut World, eng| {
                retry.gwrite(
                    w,
                    eng,
                    (k * REC_BYTES) as u64,
                    &record(sid, k),
                    true,
                    Box::new(move |_w, _e, r| match r {
                        Ok(res) => {
                            acked.borrow_mut()[k] = true;
                            probe.record(k, res.latency.as_nanos());
                        }
                        Err(_) => probe.record_failure(),
                    }),
                );
            });
        }
    }

    if let Some(sched) = faults {
        sched.apply(&mut eng);
    }

    eng.run_until(&mut w, SimTime::from_nanos(200_000_000));

    // Reconvergence append on every shard.
    let final_ok: Vec<_> = (0..N_SHARDS)
        .map(|_| Rc::new(RefCell::new(None::<bool>)))
        .collect();
    for sid in 0..N_SHARDS {
        let f = final_ok[sid].clone();
        retries[sid].gwrite(
            &mut w,
            &mut eng,
            (N_RECORDS * REC_BYTES) as u64,
            &record(sid, N_RECORDS),
            true,
            Box::new(move |_w, _e, r| *f.borrow_mut() = Some(r.is_ok())),
        );
    }
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));

    let shards = (0..N_SHARDS)
        .map(|sid| ShardOutcome {
            retry: retries[sid].clone(),
            acked: acked[sid].borrow().clone(),
            probe: probes[sid].clone(),
            rebuilds: *rebuild_counters[sid].borrow(),
            final_ok: *final_ok[sid].borrow(),
        })
        .collect();
    CampaignOutcome { w, shards }
}

fn victim_schedule(seed: u64, plan_replicas: &[HostId]) -> FaultSchedule {
    FaultSchedule::generate_shard_faults(
        seed,
        plan_replicas,
        SimTime::from_nanos(2_000_000),
        SimTime::from_nanos(50_000_000),
    )
}

fn victim_replicas() -> Vec<HostId> {
    let hosts: Vec<HostId> = (0..N_SHARDS * (1 + REPLICAS)).map(HostId).collect();
    ShardPlan::place(N_SHARDS, REPLICAS, &hosts).groups[VICTIM]
        .replicas
        .clone()
}

fn assert_isolation(seed: u64) {
    let sched = victim_schedule(seed, &victim_replicas());
    assert!(!sched.events.is_empty(), "seed {seed}: empty schedule");
    let faulted = run_campaign(seed, Some(&sched));
    let control = run_campaign(seed, None);

    // Victim: every op settled, chain reconverged.
    let v = &faulted.shards[VICTIM];
    assert_eq!(
        v.retry.outstanding(),
        0,
        "seed {seed}: victim ops unsettled"
    );
    let n_acked = v.acked.iter().filter(|&&a| a).count();
    assert_eq!(
        n_acked + v.probe.failed(),
        N_RECORDS,
        "seed {seed}: victim op settled neither ACK nor error"
    );
    assert_eq!(
        v.final_ok,
        Some(true),
        "seed {seed}: victim shard did not reconverge after the fault window"
    );
    // Victim: acked records byte-identical on every member of the final
    // chain.
    let c = v.retry.client();
    for k in 0..N_RECORDS {
        if !v.acked[k] {
            continue;
        }
        let want = record(VICTIM, k);
        for m in 0..c.group_size() {
            let host = c.member_host(m);
            let addr = c.member_addr(m, (k * REC_BYTES) as u64);
            let got = faulted.w.hosts[host.0]
                .mem
                .read_vec(addr, REC_BYTES)
                .unwrap();
            assert_eq!(
                got, want,
                "seed {seed}: victim acked record {k} diverges on member {m} ({host})"
            );
        }
    }

    // Bystander: zero failures, zero rebuilds, everything acked.
    let b = &faulted.shards[BYSTANDER];
    assert_eq!(b.retry.outstanding(), 0, "seed {seed}: bystander unsettled");
    assert_eq!(
        b.probe.failed(),
        0,
        "seed {seed}: bystander saw op failures"
    );
    assert_eq!(b.rebuilds, 0, "seed {seed}: bystander rebuilt its chain");
    assert!(
        b.acked.iter().all(|&a| a),
        "seed {seed}: bystander op not acked"
    );
    assert_eq!(
        b.final_ok,
        Some(true),
        "seed {seed}: bystander final append"
    );

    // The strong isolation form: the bystander's per-op latencies are
    // byte-identical to the fault-free control run — the victim's
    // faults, retries and rebuild did not perturb its timing at all.
    b.probe
        .assert_identical_to(&control.shards[BYSTANDER].probe, "shard-chaos");

    // Race-freedom under the ownership/DMA detector.
    #[cfg(feature = "check-ownership")]
    {
        let report = faulted.w.race_report();
        assert!(
            report.is_empty(),
            "seed {seed}: race detector flagged:\n{}",
            report.join("\n")
        );
    }
}

macro_rules! shard_chaos_campaigns {
    ($($name:ident: $seed:expr,)*) => {$(
        #[test]
        fn $name() {
            assert_isolation($seed);
        }
    )*}
}

shard_chaos_campaigns! {
    shard_chaos_seed_201: 201,
    shard_chaos_seed_202: 202,
    shard_chaos_seed_203: 203,
    shard_chaos_seed_204: 204,
    shard_chaos_seed_205: 205,
    shard_chaos_seed_206: 206,
}

/// Force a rebuild (permanent link-down on the victim's chain head) and
/// assert the rebuild happens *and* stays scoped to the victim's group
/// while the bystander runs clean.
#[test]
fn victim_shard_permanent_fault_rebuilds_only_its_group() {
    let head = victim_replicas()[0];
    let sched = FaultSchedule {
        seed: 0,
        events: vec![FaultEvent {
            at: SimTime::from_nanos(10_000_000),
            duration: None,
            kind: FaultKind::LinkDown { host: head },
        }],
    };
    let faulted = run_campaign(999, Some(&sched));
    let control = run_campaign(999, None);

    let v = &faulted.shards[VICTIM];
    assert!(
        v.rebuilds >= 1,
        "permanent head failure must trigger a rebuild"
    );
    assert_eq!(v.retry.outstanding(), 0);
    assert_eq!(v.final_ok, Some(true), "victim must serve after rebuild");

    let b = &faulted.shards[BYSTANDER];
    assert_eq!(b.rebuilds, 0, "rebuild leaked to the bystander shard");
    assert_eq!(b.probe.failed(), 0);
    b.probe
        .assert_identical_to(&control.shards[BYSTANDER].probe, "permanent-fault");

    #[cfg(feature = "check-ownership")]
    assert!(faulted.w.race_report().is_empty());
}

#[test]
#[ignore]
fn debug_shard_campaign() {
    let seed: u64 = std::env::var("SHARD_CHAOS_SEED")
        .expect("set SHARD_CHAOS_SEED=<u64>")
        .parse()
        .expect("SHARD_CHAOS_SEED must be a u64");
    let reps = victim_replicas();
    println!("victim replicas: {reps:?}");
    let sched = victim_schedule(seed, &reps);
    for e in &sched.events {
        println!(
            "event at {}us dur {:?}us kind {}",
            e.at.as_nanos() / 1000,
            e.duration.map(|d| d.as_nanos() / 1000),
            e.kind
        );
    }
    let r = run_campaign(seed, Some(&sched));
    for (sid, s) in r.shards.iter().enumerate() {
        println!(
            "shard {sid}: acked={} failed={} rebuilds={} final_ok={:?} outstanding={}",
            s.acked.iter().filter(|&&a| a).count(),
            s.probe.failed(),
            s.rebuilds,
            s.final_ok,
            s.retry.outstanding()
        );
    }
}
