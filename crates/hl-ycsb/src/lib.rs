//! # hl-ycsb — Yahoo! Cloud Serving Benchmark workload generator
//!
//! The paper evaluates with YCSB core workloads A/B/D/E/F (its Table 3).
//! This crate provides the key-chooser distributions (uniform, scrambled
//! zipfian, latest), the workload mixes, and closed-loop client driver
//! processes for both the HyperLoop-offloaded document store and the
//! native (CPU) replica sets — recording HDR latency histograms per
//! operation type.

#![warn(missing_docs)]

pub mod distributions;
pub mod driver;
pub mod sharding;
pub mod workload;

pub use distributions::{KeyChooser, Zipfian};
pub use driver::{
    preload_docstore, run_until_done, ycsb_document, FrontEndCosts, HlDriver, NativeDriver,
    YcsbStats,
};
pub use sharding::{split_records, ShardKeyRange};
pub use workload::{Op, OpGenerator, OpKind, Workload};
