//! Lint self-tests: every rule fires on its fixture, the allow-comment
//! escape hatch suppresses it, and the real workspace is clean.

use std::path::Path;

fn check_fixture(name: &str) -> Vec<hl_analysis::Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    hl_analysis::check_source(name, &src)
}

/// Each fixture contains one bare violation (must fire) and at least
/// one allow-annotated copy of the same pattern (must not fire).
macro_rules! fixture_tests {
    ($($test:ident: $file:expr => $rule:expr,)*) => {$(
        #[test]
        fn $test() {
            let findings = check_fixture($file);
            assert_eq!(
                findings.len(),
                1,
                "{} should yield exactly the un-allowed finding, got: {findings:#?}",
                $file
            );
            assert_eq!(findings[0].rule, $rule);
        }
    )*}
}

fixture_tests! {
    hash_collections_fixture: "hash_collections.rs" => "hash-collections",
    wall_clock_fixture: "wall_clock.rs" => "wall-clock",
    os_entropy_fixture: "os_entropy.rs" => "os-entropy",
    thread_spawn_fixture: "thread_spawn.rs" => "thread-spawn",
    thread_scope_fixture: "thread_scope.rs" => "thread-spawn",
    float_time_fixture: "float_time.rs" => "float-time",
    panic_in_handler_fixture: "panic_in_handler.rs" => "panic-in-handler",
    rand_raw_fixture: "rand_raw.rs" => "rand-raw",
    wire_truncation_fixture: "wire_truncation.rs" => "wire-truncation",
}

/// Every rule name used by a fixture is registered in [`hl_analysis::RULES`]
/// (so `rules` output and allow-comments stay in sync with the engine).
#[test]
fn fixture_rules_are_registered() {
    let registered: Vec<&str> = hl_analysis::RULES.iter().map(|(n, _)| *n).collect();
    for rule in [
        "hash-collections",
        "wall-clock",
        "os-entropy",
        "thread-spawn",
        "float-time",
        "panic-in-handler",
        "rand-raw",
        "wire-truncation",
    ] {
        assert!(registered.contains(&rule), "{rule} not in RULES");
    }
}

/// The acceptance gate: the actual sim-core crates pass the lints. This
/// runs the same walk as `cargo run -p hl-analysis -- check`, so plain
/// `cargo test` enforces workspace conformance too.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let findings = hl_analysis::check_workspace(root).expect("sim-core crates readable");
    assert!(
        findings.is_empty(),
        "determinism lints failed on the workspace:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
