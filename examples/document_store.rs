//! doclite: a MongoDB-like document store whose write transactions —
//! journal append, group lock, execute, unlock — are entirely executed
//! by the replicas' NICs.
//!
//! ```sh
//! cargo run --example document_store
//! ```

use hyperloop_repro::cluster::ClusterBuilder;
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::{GroupLock, LockOutcome};
use hyperloop_repro::hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient};
use hyperloop_repro::sim::SimTime;
use hyperloop_repro::store::doc::{DocLayout, DocStore, Document};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let (mut world, mut engine) = ClusterBuilder::new(4).arena_size(8 << 20).seed(23).build();
    let group = GroupBuilder::new(GroupConfig {
        client: HostId(0),
        replicas: vec![HostId(1), HostId(2), HostId(3)],
        rep_bytes: 2 << 20,
        ring_slots: 64,
        ..Default::default()
    })
    .build(&mut world);
    replica::start_replenishers(&group, &mut world, &mut engine);
    let client = Rc::new(HyperLoopClient::new(group, &mut world));
    let store = DocStore::open(client.clone(), DocLayout::default(), 1, true);

    // Insert a few documents. Each upsert = Append (gWRITE+gFLUSH) →
    // wrLock (gCAS) → ExecuteAndAdvance (gMEMCPY per redo entry +
    // head-pointer gWRITE) → wrUnlock (gCAS).
    let done = Rc::new(RefCell::new(0u32));
    for id in 0..10u64 {
        let mut doc = Document::new(id);
        doc.set("name", format!("user-{id}").as_bytes());
        doc.set("city", b"budapest"); // SIGCOMM '18!
        doc.set("visits", &id.to_le_bytes());
        let d = done.clone();
        store
            .upsert(
                &mut world,
                &mut engine,
                &doc,
                Box::new(move |_w, _e, _r| *d.borrow_mut() += 1),
            )
            .unwrap();
        let d2 = done.clone();
        let want = id as u32 + 1;
        engine.run_while(&mut world, move |_| *d2.borrow() < want);
    }
    println!("committed {} documents", store.committed());

    // Strong reads at the head.
    let doc = store.read(&mut world, 7).expect("doc 7");
    println!(
        "read(7): name={:?} city={:?}",
        String::from_utf8_lossy(doc.get("name").unwrap()),
        String::from_utf8_lossy(doc.get("city").unwrap()),
    );

    // Every replica's database area holds the same committed documents
    // (their NICs applied them; their CPUs never saw the data).
    for member in 1..4 {
        let d = store.read_at(&mut world, member, 7).expect("replicated");
        assert_eq!(d.get("city"), Some(b"budapest".as_slice()));
    }
    println!("all replicas agree on doc 7 (applied by NIC-local gMEMCPY)");

    // Consistent replica reads use rdLock on just that member.
    let lock = GroupLock::new(client.clone(), DocLayout::default().lock_off, 99);
    let outcome = Rc::new(RefCell::new(None));
    let o = outcome.clone();
    lock.rd_lock(
        &mut world,
        &mut engine,
        2,
        3,
        Box::new(move |_w, _e, r| *o.borrow_mut() = Some(r)),
    )
    .unwrap();
    engine.run_until(
        &mut world,
        SimTime::from_nanos(engine.now().as_nanos() + 1_000_000),
    );
    assert_eq!(*outcome.borrow(), Some(LockOutcome::Acquired));
    println!("rdLock on member 2 acquired; serving a consistent replica read");
    let d = store.read_at(&mut world, 2, 3).unwrap();
    println!(
        "  member-2 read(3): name={:?}",
        String::from_utf8_lossy(d.get("name").unwrap())
    );
    let o2 = outcome.clone();
    lock.rd_unlock(
        &mut world,
        &mut engine,
        2,
        3,
        Box::new(move |_w, _e, r| *o2.borrow_mut() = Some(r)),
    )
    .unwrap();
    engine.run_until(
        &mut world,
        SimTime::from_nanos(engine.now().as_nanos() + 1_000_000),
    );
    println!(
        "rdUnlock done; scan(0..5) at head: {} docs",
        store.scan(&mut world, 0, 5).len()
    );
}
