//! doclite front-end over HyperLoop (paper §5.2).
//!
//! The MongoDB-like path: the front-end (integrated with the client)
//! appends the operation to the replicated journal, then executes it on
//! all replicas with `ExecuteAndAdvance` under a group write lock —
//! "completely offloads both critical and off-the-critical path
//! operations for write transactions to the NIC while providing strong
//! consistency across the replicas".
//!
//! Reads are served from the client's copy of the database area (the
//! chain head), or — consistently — from any replica under `rdLock`.

use super::document::Document;
use hl_cluster::World;
use hl_sim::{Engine, SimDuration};
use hyperloop::api::{
    GroupClient, GroupLock, LockOutcome, LogLayout, LogRecord, RedoEntry, ReplicatedLog,
};
use hyperloop::{Backpressure, OnDone};
use std::cell::RefCell;
use std::rc::Rc;

/// Layout of a doclite database within the replicated region.
#[derive(Debug, Clone)]
pub struct DocLayout {
    /// Journal (write-ahead log) layout. `db_off` is the slot area.
    pub log: LogLayout,
    /// Bytes per document slot.
    pub slot_size: u64,
    /// Number of slots.
    pub n_slots: u64,
    /// Offset of the group write-lock word.
    pub lock_off: u64,
}

impl Default for DocLayout {
    fn default() -> Self {
        DocLayout {
            log: LogLayout {
                log_off: 64,
                log_cap: 256 << 10,
                db_off: 512 << 10,
            },
            slot_size: 1536,
            n_slots: 512,
            lock_off: 0,
        }
    }
}

struct DocInner<C: GroupClient> {
    client: Rc<C>,
    log: ReplicatedLog<C>,
    lock: GroupLock<C>,
    layout: DocLayout,
    use_locks: bool,
    /// Committed operations (reporting).
    committed: u64,
}

/// Cheap cloneable handle to a doclite database.
pub struct DocStore<C: GroupClient> {
    inner: Rc<RefCell<DocInner<C>>>,
}

impl<C: GroupClient> Clone for DocStore<C> {
    fn clone(&self) -> Self {
        DocStore {
            inner: self.inner.clone(),
        }
    }
}

impl<C: GroupClient + 'static> DocStore<C> {
    /// Open a database (binds layout; lock word starts free).
    pub fn open(client: Rc<C>, layout: DocLayout, owner: u32, use_locks: bool) -> Self {
        let log = ReplicatedLog::new(client.clone(), layout.log.clone());
        let lock = GroupLock::new(client.clone(), layout.lock_off, owner);
        DocStore {
            inner: Rc::new(RefCell::new(DocInner {
                client,
                log,
                lock,
                layout,
                use_locks,
                committed: 0,
            })),
        }
    }

    /// Slot offset (within the db area) for a document id.
    fn slot_off(layout: &DocLayout, id: u64) -> u64 {
        (id % layout.n_slots) * layout.slot_size
    }

    /// Upsert a document: journal append → `wrLock` → execute on all
    /// replicas → `wrUnlock` → done. Fully NIC-offloaded on replicas.
    pub fn upsert(
        &self,
        w: &mut World,
        eng: &mut Engine<World>,
        doc: &Document,
        done: OnDone,
    ) -> Result<(), Backpressure> {
        let (rec, use_locks) = {
            let inner = self.inner.borrow();
            let slot = doc.encode_slot(inner.layout.slot_size as usize);
            (
                LogRecord {
                    entries: vec![RedoEntry {
                        db_offset: Self::slot_off(&inner.layout, doc.id),
                        data: slot,
                    }],
                },
                inner.use_locks,
            )
        };
        let handle = self.clone();
        // Phase 1: durable journal append.
        self.inner.borrow_mut().log.append(
            w,
            eng,
            &rec,
            Box::new(move |w, eng, _r| {
                if use_locks {
                    handle.lock_execute_unlock(w, eng, done);
                } else {
                    let h2 = handle.clone();
                    handle.execute_then(
                        w,
                        eng,
                        Box::new(move |w, eng, r| {
                            h2.inner.borrow_mut().committed += 1;
                            done(w, eng, r);
                        }),
                    );
                }
            }),
        )
    }

    /// Phase 2 with locking: wrLock (retrying on contention) → execute →
    /// wrUnlock.
    fn lock_execute_unlock(&self, w: &mut World, eng: &mut Engine<World>, done: OnDone) {
        let handle = self.clone();
        // The callback consumes `done` only on the acquired path; the
        // contended/backpressure paths re-enter with it.
        let done_cell = Rc::new(RefCell::new(Some(done)));
        let dc = done_cell.clone();
        let res = self.inner.borrow().lock.wr_lock(
            w,
            eng,
            Box::new(move |w, eng, outcome| {
                let done = dc.borrow_mut().take().expect("single use");
                match outcome {
                    LockOutcome::Acquired => {
                        let h2 = handle.clone();
                        handle.execute_then(
                            w,
                            eng,
                            Box::new(move |w, eng, r| {
                                let h3 = h2.clone();
                                let _ = h2.inner.borrow().lock.wr_unlock(
                                    w,
                                    eng,
                                    Box::new(move |w, eng, _| {
                                        h3.inner.borrow_mut().committed += 1;
                                        done(w, eng, r);
                                    }),
                                );
                            }),
                        );
                    }
                    LockOutcome::Contended => {
                        // Another transaction holds the group lock; back
                        // off and retry.
                        let h2 = handle.clone();
                        eng.schedule(SimDuration::from_micros(20), move |w, eng| {
                            h2.lock_execute_unlock(w, eng, done);
                        });
                    }
                }
            }),
        );
        if res.is_err() {
            // gCAS ring backpressure: retry shortly (the wr_lock callback
            // was never registered, so `done` is still in the cell).
            let h2 = self.clone();
            eng.schedule(SimDuration::from_micros(50), move |w, eng| {
                if let Some(done) = done_cell.borrow_mut().take() {
                    h2.lock_execute_unlock(w, eng, done);
                }
            });
        }
    }

    fn execute_then(&self, w: &mut World, eng: &mut Engine<World>, done: OnDone) {
        let handle = self.clone();
        let res = self
            .inner
            .borrow_mut()
            .log
            .execute_and_advance(w, eng, done);
        if let Err(_bp) = res {
            // Ring backpressure: retry shortly. `done` was consumed only
            // on success, so re-issue with a fresh empty execute.
            let _ = handle;
            unreachable!("execute_and_advance only backpressures when gmemcpy rings are full; sized to prevent this");
        }
    }

    /// Read a document from a member's database area (0 = client).
    pub fn read_at(&self, w: &mut World, member: usize, id: u64) -> Option<Document> {
        let inner = self.inner.borrow();
        let off = inner.layout.log.db_off + Self::slot_off(&inner.layout, id);
        let addr = inner.client.member_addr(member, off);
        let host = inner.client.member_host(member);
        let bytes = w.hosts[host.0]
            .mem
            .read_vec(addr, inner.layout.slot_size as usize)
            .ok()?;
        Document::decode_slot(&bytes)
    }

    /// Read from the client copy (strong consistency at the head).
    pub fn read(&self, w: &mut World, id: u64) -> Option<Document> {
        self.read_at(w, 0, id)
    }

    /// Scan `n` consecutive slots starting at `id` from the client copy.
    pub fn scan(&self, w: &mut World, id: u64, n: usize) -> Vec<Document> {
        (0..n as u64).filter_map(|k| self.read(w, id + k)).collect()
    }

    /// Committed (journaled + executed + unlocked) operations.
    pub fn committed(&self) -> u64 {
        self.inner.borrow().committed
    }

    /// The group lock handle (for replica-side readers).
    pub fn with_lock<R>(&self, f: impl FnOnce(&GroupLock<C>) -> R) -> R {
        f(&self.inner.borrow().lock)
    }
}
