//! The in-memory table: an ordered map from keys to values.
//!
//! kvlite, like RocksDB, serves reads from an in-memory structure and
//! uses the (replicated) write-ahead log for persistence. The memtable
//! is deliberately simple — a `BTreeMap` — because the paper's interest
//! is the replication path, not the LSM internals; ordered iteration is
//! still needed for scans.

use std::collections::BTreeMap;
use std::ops::Bound;

/// Ordered in-memory key-value table.
///
/// ```
/// use hl_store::kv::Memtable;
/// let mut m = Memtable::new();
/// m.put(b"b", b"2");
/// m.put(b"a", b"1");
/// assert_eq!(m.get(b"a"), Some(b"1".as_slice()));
/// let keys: Vec<&[u8]> = m.scan(b"a", 10).into_iter().map(|(k, _)| k).collect();
/// assert_eq!(keys, vec![b"a".as_slice(), b"b".as_slice()]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    bytes: u64,
}

impl Memtable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite; returns the previous value.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        let prev = self.map.insert(key.to_vec(), value.to_vec());
        self.bytes += (key.len() + value.len()) as u64;
        if let Some(p) = &prev {
            self.bytes -= (key.len() + p.len()) as u64;
        }
        prev
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }

    /// Delete; returns the removed value.
    pub fn delete(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let prev = self.map.remove(key);
        if let Some(p) = &prev {
            self.bytes -= (key.len() + p.len()) as u64;
        }
        prev
    }

    /// Ordered range scan: up to `limit` pairs starting at `from`
    /// (inclusive).
    pub fn scan(&self, from: &[u8], limit: usize) -> Vec<(&[u8], &[u8])> {
        self.map
            .range::<[u8], _>((Bound::Included(from), Bound::Unbounded))
            .take(limit)
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate resident bytes (keys + values).
    pub fn approx_bytes(&self) -> u64 {
        self.bytes
    }

    /// Iterate everything in order (checkpointing).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.map.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn put_get_delete() {
        let mut m = Memtable::new();
        assert!(m.put(b"k1", b"v1").is_none());
        assert_eq!(m.get(b"k1"), Some(b"v1".as_slice()));
        assert_eq!(m.put(b"k1", b"v2"), Some(b"v1".to_vec()));
        assert_eq!(m.get(b"k1"), Some(b"v2".as_slice()));
        assert_eq!(m.delete(b"k1"), Some(b"v2".to_vec()));
        assert!(m.get(b"k1").is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut m = Memtable::new();
        for k in [3u8, 1, 4, 1, 5, 9, 2, 6] {
            m.put(&[k], &[k * 2]);
        }
        let got = m.scan(&[2], 3);
        let keys: Vec<u8> = got.iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![2, 3, 4]);
        assert_eq!(m.scan(&[9], 10).len(), 1);
        assert!(m.scan(&[10], 10).is_empty());
    }

    #[test]
    fn byte_accounting() {
        let mut m = Memtable::new();
        m.put(b"abc", b"defg"); // 7
        assert_eq!(m.approx_bytes(), 7);
        m.put(b"abc", b"x"); // 4
        assert_eq!(m.approx_bytes(), 4);
        m.delete(b"abc");
        assert_eq!(m.approx_bytes(), 0);
    }

    proptest! {
        /// The memtable agrees with a model BTreeMap under arbitrary
        /// operation sequences.
        #[test]
        fn matches_model(ops in proptest::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u8>()), 0..100)) {
            let mut m = Memtable::new();
            let mut model = std::collections::BTreeMap::new();
            for (put, k, v) in ops {
                if put {
                    m.put(&[k], &[v]);
                    model.insert(vec![k], vec![v]);
                } else {
                    m.delete(&[k]);
                    model.remove(&vec![k]);
                }
            }
            prop_assert_eq!(m.len(), model.len());
            for (k, v) in &model {
                prop_assert_eq!(m.get(k), Some(v.as_slice()));
            }
        }
    }
}
