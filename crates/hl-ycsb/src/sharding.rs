//! Shard-aware workload partitioning.
//!
//! A sharded YCSB run gives each shard its own driver over a disjoint
//! slice of the record space, so every operation is local to one
//! HyperLoop group (no cross-shard transactions exist, matching the
//! per-group scoping of the datapath). [`split_records`] produces the
//! per-shard ranges deterministically; per-shard [`YcsbStats`] are
//! folded back together with [`YcsbStats::merge`].
//!
//! [`YcsbStats`]: crate::driver::YcsbStats
//! [`YcsbStats::merge`]: crate::driver::YcsbStats::merge

/// A contiguous record-id range assigned to one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardKeyRange {
    /// Shard id.
    pub shard: usize,
    /// First record id in the range.
    pub start: u64,
    /// Number of records in the range.
    pub count: u64,
}

impl ShardKeyRange {
    /// One-past-the-last record id.
    pub fn end(&self) -> u64 {
        self.start + self.count
    }

    /// True when `id` falls in this range.
    pub fn contains(&self, id: u64) -> bool {
        id >= self.start && id < self.end()
    }
}

/// Split `records` ids into `shards` contiguous, disjoint, exhaustive
/// ranges. The first `records % shards` shards take one extra record,
/// so counts never differ by more than one. Deterministic in its
/// arguments.
pub fn split_records(records: u64, shards: usize) -> Vec<ShardKeyRange> {
    assert!(shards > 0);
    let base = records / shards as u64;
    let extra = records % shards as u64;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0u64;
    for s in 0..shards {
        let count = base + u64::from((s as u64) < extra);
        out.push(ShardKeyRange {
            shard: s,
            start,
            count,
        });
        start += count;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_disjoint_exhaustive_and_balanced() {
        for (records, shards) in [(100u64, 8usize), (7, 3), (8, 8), (1_000_003, 7)] {
            let ranges = split_records(records, shards);
            assert_eq!(ranges.len(), shards);
            let mut next = 0u64;
            for (i, r) in ranges.iter().enumerate() {
                assert_eq!(r.shard, i);
                assert_eq!(r.start, next, "gap before shard {i}");
                next = r.end();
            }
            assert_eq!(next, records, "ranges must cover every record");
            let min = ranges.iter().map(|r| r.count).min().unwrap();
            let max = ranges.iter().map(|r| r.count).max().unwrap();
            assert!(max - min <= 1, "counts differ by more than one");
        }
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_records(1000, 8), split_records(1000, 8));
    }
}
