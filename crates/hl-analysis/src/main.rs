//! CLI for the workspace static analysis.
//!
//! ```text
//! cargo run -p hl-analysis -- check  [ROOT] [--summary md]  # lints + taint pass
//! cargo run -p hl-analysis -- layout [ROOT] [--summary md]  # wire-format verifier
//! cargo run -p hl-analysis -- rules                         # list the rules
//! ```
//!
//! Both analysis subcommands exit 1 when any finding survives the
//! allow-comments. `--summary md` appends a markdown rule → count
//! table to stdout (meant for `$GITHUB_STEP_SUMMARY` in CI).

use std::path::PathBuf;
use std::process::ExitCode;

fn resolve_root(arg: Option<&String>) -> Result<PathBuf, String> {
    match arg {
        Some(p) => Ok(PathBuf::from(p)),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            hl_analysis::find_workspace_root(&cwd)
                .ok_or_else(|| format!("no workspace root found above {}", cwd.display()))
        }
    }
}

fn run(
    args: &[String],
    what: &str,
    f: impl Fn(&std::path::Path) -> std::io::Result<Vec<hl_analysis::Finding>>,
) -> ExitCode {
    let mut positional: Vec<&String> = Vec::new();
    let mut summary_md = false;
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        if a == "--summary" {
            summary_md = iter.next().is_some_and(|v| v == "md");
        } else if a == "--summary=md" {
            summary_md = true;
        } else if !a.starts_with("--") {
            positional.push(a);
        }
    }
    let root = match resolve_root(positional.first().copied()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings = match f(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if summary_md {
        println!("\n### hl-analysis `{what}`\n");
        println!("{}", hl_analysis::summary_table(&findings));
    }
    if findings.is_empty() {
        println!("hl-analysis {what}: clean");
        ExitCode::SUCCESS
    } else {
        println!("hl-analysis {what}: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("rules") => {
            for (name, desc) in hl_analysis::RULES {
                println!("{name:18} {desc}");
            }
            println!("{:18} entry point transitively reaches a nondeterminism source (chain reported; suppress at the source)", "taint");
            println!(
                "{:18} NIC handler transitively reaches an unsuppressed panic site",
                "taint-panic"
            );
            println!(
                "{:18} two fields of one descriptor occupy the same bytes",
                "layout-overlap"
            );
            println!(
                "{:18} field extends past the declared descriptor size",
                "layout-bounds"
            );
            println!(
                "{:18} logical field bound inconsistently across crates / scatter width drift",
                "layout-mismatch"
            );
            println!(
                "{:18} schema'd constant no longer found in source",
                "layout-missing"
            );
            ExitCode::SUCCESS
        }
        Some("check") => run(&args[1..], "check", hl_analysis::check_workspace),
        Some("layout") => run(&args[1..], "layout", hl_analysis::layout_workspace),
        _ => {
            eprintln!("usage: hl-analysis <check [ROOT] | layout [ROOT] | rules> [--summary md]");
            ExitCode::FAILURE
        }
    }
}
