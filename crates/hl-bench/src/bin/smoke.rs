//! Quick calibration smoke-run for the microbenchmarks.

use hl_bench::micro::{run_micro, Backend, MicroCfg, MicroOp};

fn main() {
    for backend in [
        Backend::HyperLoop,
        Backend::NaiveEvent,
        Backend::NaivePolling { pinned: true },
    ] {
        let cfg = MicroCfg {
            backend,
            ops: 2000,
            warmup: 100,
            op: MicroOp::GWrite {
                size: 1024,
                flush: false,
            },
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let r = run_micro(&cfg);
        println!(
            "{:22} avg={:8.1}us p95={:8.1}us p99={:8.1}us kops={:8.1} cpu={:.3} cores  [{:.1?} real]",
            backend.name(),
            r.latency.mean_us(),
            r.latency.p95_us(),
            r.latency.p99_us(),
            r.kops,
            r.datapath_cores,
            t0.elapsed()
        );
    }
}
