pub fn mid_helper(x: u64) -> u64 {
    leaf::leaf_time() + x
}
