//! Multi-group sharding: deterministic consistent-hash key routing and
//! group placement.
//!
//! One HyperLoop group serves one replication group; a frontend scales
//! out by running *many* groups side by side (paper §4 scopes the chain
//! per group for exactly this reason). This module provides the two
//! deterministic maps that sharding needs:
//!
//! * [`HashRing`] — keys → shard ids, via consistent hashing with
//!   virtual nodes. Balanced (each of 8 shards lands within ~20% of the
//!   mean over a large keyspace) and *stable*: growing the shard set
//!   from N to N+1 remaps only ~1/(N+1) of the keys, all of them onto
//!   the new shard.
//! * [`ShardPlan`] — shard ids → member hosts, via consistent hashing
//!   with bounded loads: each shard walks the host ring from its own
//!   hash point and claims distinct hosts that are below the global
//!   load cap. With a host pool sized exactly `shards × group_size`
//!   every host serves exactly one group member, so shards are
//!   fault-isolated by construction.
//!
//! Everything here is pure arithmetic over the inputs — no OS entropy,
//! no wall clock — so placement and routing replay identically for a
//! given seedless configuration, which the differential oracle and the
//! chaos suite rely on.

use hl_fabric::HostId;

/// FNV-1a over a byte string (the same construction the YCSB scrambler
/// uses; deterministic and dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One round of splitmix64 finalization so structured inputs (small
/// integers, sequential vnode ids) spread over the whole ring.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Ring point for virtual node `v` of shard/host `id` under `salt`.
fn point(salt: u64, id: u64, v: u64) -> u64 {
    mix(salt ^ mix(id).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ mix(v.wrapping_add(1)))
}

/// Consistent-hash ring mapping keys to shard ids `0..n_shards`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// Sorted `(ring point, shard id)` pairs.
    points: Vec<(u64, u32)>,
    n_shards: usize,
    /// Vnodes per shard at construction (split candidates reuse it).
    vnodes: usize,
}

impl HashRing {
    /// Virtual nodes per shard used by [`HashRing::new`]. 128 keeps the
    /// per-shard key share within ~20% of the mean for 8 shards.
    pub const DEFAULT_VNODES: usize = 128;

    /// A ring over `n_shards` shards with the default vnode count.
    pub fn new(n_shards: usize) -> Self {
        Self::with_vnodes(n_shards, Self::DEFAULT_VNODES)
    }

    /// A ring over `n_shards` shards with `vnodes` virtual nodes each.
    /// A shard's points depend only on its own id, so adding shard N
    /// leaves shards `0..N`'s points untouched — moved keys can only
    /// move *to* the new shard.
    pub fn with_vnodes(n_shards: usize, vnodes: usize) -> Self {
        assert!(n_shards > 0 && vnodes > 0);
        let mut points = Vec::with_capacity(n_shards * vnodes);
        for s in 0..n_shards as u64 {
            for v in 0..vnodes as u64 {
                points.push((point(SHARD_SALT, s, v), s as u32));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            n_shards,
            vnodes,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Owner of ring position `h` (successor lookup with wrap).
    fn owner_at(&self, h: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < h);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1 as usize
    }

    /// Shard owning `key` (successor of the key's hash on the ring).
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.owner_at(fnv1a(key))
    }

    /// Shard owning a `u64` key (hashes its little-endian bytes).
    pub fn shard_of_u64(&self, key: u64) -> usize {
        self.shard_of(&key.to_le_bytes())
    }

    /// The ring after splitting `parent`: shard `n_shards` is stood up
    /// with the subset of its candidate points that currently land in
    /// `parent`'s arcs, so the only keys that change owner move
    /// `parent → new shard` — a *single-source* split. (A plain
    /// `HashRing::new(n+1)` would instead make every shard a donor,
    /// which an online migration cannot stream from one chain.)
    ///
    /// Ownership of every other key is untouched because the surviving
    /// shards' points are byte-identical and the new points subdivide
    /// only arcs `parent` already owned.
    pub fn split_shard(&self, parent: usize) -> HashRing {
        assert!(parent < self.n_shards, "split of unknown shard {parent}");
        let new_id = self.n_shards as u64;
        let mut points = self.points.clone();
        let mut kept = 0usize;
        for v in 0..self.vnodes as u64 {
            let p = point(SHARD_SALT, new_id, v);
            // Keys that would map to this candidate point sit in the arc
            // ending at `p`; their current owner is the successor of `p`
            // on the existing ring.
            if self.owner_at(p) == parent {
                points.push((p, new_id as u32));
                kept += 1;
            }
        }
        assert!(
            kept > 0,
            "split of shard {parent} kept no ring points (vnodes too low)"
        );
        points.sort_unstable();
        HashRing {
            points,
            n_shards: self.n_shards + 1,
            vnodes: self.vnodes,
        }
    }

    /// The ring after merging the *last* shard into survivor `into`:
    /// the victim's points stay on the ring relabelled to `into`, so
    /// every key the victim owned moves to `into` — a *single-dest*
    /// merge the survivor chain can absorb in one stream — and no other
    /// key moves. Requiring the victim to be the highest shard id keeps
    /// surviving ids dense (`0..n-1` still index the shard vectors).
    pub fn merge_shard(&self, victim: usize, into: usize) -> HashRing {
        assert_eq!(
            victim,
            self.n_shards - 1,
            "merge retires the last shard id so survivors keep their ids"
        );
        assert!(into < victim, "merge target must be a surviving shard");
        let points = self
            .points
            .iter()
            .map(|&(p, s)| (p, if s as usize == victim { into as u32 } else { s }))
            .collect();
        HashRing {
            points,
            n_shards: self.n_shards - 1,
            vnodes: self.vnodes,
        }
    }
}

/// Salt separating shard-ring points from host-ring points ("shard").
const SHARD_SALT: u64 = 0x73_68_61_72_64_00_00_01;
/// Salt for the host ring used by placement ("host").
const HOST_SALT: u64 = 0x68_6f_73_74_00_00_00_02;

/// The member hosts of one shard's replication group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardGroup {
    /// Shard id (`0..n_shards`).
    pub shard: usize,
    /// Chain head (frontend / transaction coordinator) host.
    pub client: HostId,
    /// Replica hosts in chain order.
    pub replicas: Vec<HostId>,
}

impl ShardGroup {
    /// All member hosts, client first.
    pub fn members(&self) -> Vec<HostId> {
        let mut m = vec![self.client];
        m.extend(self.replicas.iter().copied());
        m
    }
}

/// Deterministic placement of `n_shards` groups over a host pool.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Per-shard group membership, indexed by shard id.
    pub groups: Vec<ShardGroup>,
}

impl ShardPlan {
    /// Place `n_shards` groups of `1 + replicas_per_shard` members each
    /// over `hosts` by bounded-load consistent hashing: every shard
    /// walks the host ring from its own hash point, claiming distinct
    /// hosts whose load is below the cap
    /// `ceil(n_shards × group_size / n_hosts)`.
    ///
    /// With `hosts.len() == n_shards × (1 + replicas_per_shard)` the cap
    /// is 1 and the plan is perfectly balanced *and* disjoint — no host
    /// serves two shards, so a fault in one shard's chain cannot touch
    /// another shard. Smaller pools oversubscribe hosts evenly instead
    /// of failing.
    pub fn place(n_shards: usize, replicas_per_shard: usize, hosts: &[HostId]) -> ShardPlan {
        let group_size = 1 + replicas_per_shard;
        assert!(n_shards > 0 && replicas_per_shard > 0);
        assert!(
            hosts.len() >= group_size,
            "pool of {} hosts cannot fit a group of {group_size}",
            hosts.len()
        );
        let members_total = n_shards * group_size;
        let cap = members_total.div_ceil(hosts.len());

        // Host ring: vnodes per host, salted apart from the key ring.
        const HOST_VNODES: u64 = 64;
        let mut ring: Vec<(u64, usize)> = Vec::with_capacity(hosts.len() * HOST_VNODES as usize);
        for (i, h) in hosts.iter().enumerate() {
            for v in 0..HOST_VNODES {
                ring.push((point(HOST_SALT, h.0 as u64, v), i));
            }
        }
        ring.sort_unstable();

        let mut load = vec![0usize; hosts.len()];
        let mut groups = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let start = point(SHARD_SALT, s as u64, 0);
            let mut i = ring.partition_point(|&(p, _)| p < start) % ring.len();
            let mut picked: Vec<usize> = Vec::with_capacity(group_size);
            let mut steps = 0usize;
            while picked.len() < group_size {
                // Two passes over the ring always suffice: the first may
                // skip hosts that fill up mid-walk, the second sees the
                // final loads. The cap guarantees total capacity.
                assert!(
                    steps < 2 * ring.len(),
                    "placement walk failed to converge (cap {cap})"
                );
                steps += 1;
                let host_idx = ring[i].1;
                i = (i + 1) % ring.len();
                if load[host_idx] >= cap || picked.contains(&host_idx) {
                    continue;
                }
                load[host_idx] += 1;
                picked.push(host_idx);
            }
            groups.push(ShardGroup {
                shard: s,
                client: hosts[picked[0]],
                replicas: picked[1..].iter().map(|&i| hosts[i]).collect(),
            });
        }
        ShardPlan { groups }
    }

    /// Number of shards placed.
    pub fn n_shards(&self) -> usize {
        self.groups.len()
    }

    /// True when no host serves members of two different shards (full
    /// fault isolation between shards).
    pub fn is_disjoint(&self) -> bool {
        let mut seen: Vec<HostId> = Vec::new();
        for g in &self.groups {
            for h in g.members() {
                if seen.contains(&h) {
                    return false;
                }
                seen.push(h);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic() {
        let a = HashRing::new(8);
        let b = HashRing::new(8);
        for k in 0u64..10_000 {
            assert_eq!(a.shard_of_u64(k), b.shard_of_u64(k));
        }
    }

    #[test]
    fn ring_is_balanced_within_20_percent() {
        let ring = HashRing::new(8);
        let mut counts = [0u64; 8];
        const KEYS: u64 = 64_000;
        for k in 0..KEYS {
            counts[ring.shard_of_u64(k)] += 1;
        }
        let mean = KEYS as f64 / 8.0;
        for (s, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - mean).abs() / mean;
            assert!(
                dev < 0.20,
                "shard {s}: {c} keys, {:.1}% off mean",
                dev * 100.0
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_only_one_over_n_keys_onto_the_new_shard() {
        let old = HashRing::new(8);
        let new = HashRing::new(9);
        const KEYS: u64 = 64_000;
        let mut moved = 0u64;
        for k in 0..KEYS {
            let (a, b) = (old.shard_of_u64(k), new.shard_of_u64(k));
            if a != b {
                moved += 1;
                assert_eq!(b, 8, "key {k} moved {a}->{b}, not onto the new shard");
            }
        }
        let frac = moved as f64 / KEYS as f64;
        let ideal = 1.0 / 9.0;
        assert!(
            frac > 0.5 * ideal && frac < 2.0 * ideal,
            "moved fraction {frac:.4} vs ideal {ideal:.4}"
        );
    }

    #[test]
    fn split_moves_only_parent_keys_onto_the_new_shard() {
        let old = HashRing::new(4);
        let new = old.split_shard(2);
        assert_eq!(new.n_shards(), 5);
        const KEYS: u64 = 64_000;
        let mut moved = 0u64;
        for k in 0..KEYS {
            let (a, b) = (old.shard_of_u64(k), new.shard_of_u64(k));
            if a != b {
                moved += 1;
                assert_eq!(a, 2, "key {k} moved out of shard {a}, not the parent");
                assert_eq!(b, 4, "key {k} moved {a}->{b}, not onto the new shard");
            }
        }
        // The new shard's points subdivide the parent's arcs, so it
        // takes a healthy fraction of the parent's share (~half) and
        // nothing else.
        let parent_share = (0..KEYS).filter(|&k| old.shard_of_u64(k) == 2).count() as u64;
        assert!(
            moved > parent_share / 5 && moved < parent_share,
            "moved {moved} of parent's {parent_share} keys"
        );
    }

    #[test]
    fn merge_moves_only_victim_keys_onto_the_survivor() {
        let old = HashRing::new(5);
        let new = old.merge_shard(4, 1);
        assert_eq!(new.n_shards(), 4);
        for k in 0u64..64_000 {
            let (a, b) = (old.shard_of_u64(k), new.shard_of_u64(k));
            if a != b {
                assert_eq!(a, 4, "key {k} moved out of shard {a}, not the victim");
                assert_eq!(b, 1, "key {k} moved {a}->{b}, not onto the survivor");
            }
        }
    }

    #[test]
    fn split_then_merge_back_restores_ownership() {
        let base = HashRing::new(3);
        let split = base.split_shard(0);
        let merged = split.merge_shard(3, 0);
        for k in 0u64..32_000 {
            assert_eq!(base.shard_of_u64(k), merged.shard_of_u64(k), "key {k}");
        }
    }

    #[test]
    fn placement_is_deterministic_and_disjoint_when_sized() {
        let hosts: Vec<HostId> = (0..24).map(HostId).collect();
        let a = ShardPlan::place(8, 2, &hosts);
        let b = ShardPlan::place(8, 2, &hosts);
        assert_eq!(a.groups, b.groups);
        assert!(a.is_disjoint());
        for g in &a.groups {
            assert_eq!(g.replicas.len(), 2);
            let m = g.members();
            for (i, h) in m.iter().enumerate() {
                assert!(!m[..i].contains(h), "shard {} repeats {h}", g.shard);
            }
        }
    }

    #[test]
    fn placement_oversubscribes_evenly_when_pool_is_small() {
        let hosts: Vec<HostId> = (0..6).map(HostId).collect();
        let plan = ShardPlan::place(4, 2, &hosts); // 12 members on 6 hosts
        let mut load = [0usize; 6];
        for g in &plan.groups {
            for h in g.members() {
                load[h.0] += 1;
            }
        }
        assert_eq!(load.iter().sum::<usize>(), 12);
        assert!(load.iter().all(|&l| l <= 2), "cap exceeded: {load:?}");
    }

    #[test]
    fn placement_never_repeats_a_host_within_a_group() {
        let hosts: Vec<HostId> = (0..4).map(HostId).collect();
        let plan = ShardPlan::place(2, 3, &hosts); // cap = 2
        for g in &plan.groups {
            let m = g.members();
            for (i, h) in m.iter().enumerate() {
                assert!(!m[..i].contains(h));
            }
        }
    }
}
