//! The determinism rules.
//!
//! Each rule walks the token stream produced by [`crate::lexer`] and
//! reports findings. A finding is suppressed by an inline
//! `// hl-lint: allow(<rule>)` comment — the escape hatch for sites
//! that were audited and are deterministic despite matching the
//! pattern (e.g. the NIC's seeded log-normal jitter). An allow is
//! scoped to exactly one item or statement: trailing an offending line
//! it covers that line; on its own line it covers the next statement or
//! item (however many lines it spans) and nothing beyond its
//! terminating `;`/`}` — it can never silence the rest of a file.

use crate::lexer::{lex, Allow, Tok, TokKind};

/// Rule identifiers, as used in findings and allow-comments.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-collections",
        "std HashMap/HashSet iterate in RandomState order; sim code must use BTreeMap/BTreeSet",
    ),
    (
        "wall-clock",
        "std::time::Instant/SystemTime read the host clock; sim code must use hl_sim::SimTime",
    ),
    (
        "os-entropy",
        "thread_rng/OsRng/getrandom draw OS entropy; sim code must use the seeded hl_sim::RngStream",
    ),
    (
        "thread-spawn",
        "std::thread::spawn introduces host scheduling order; the simulator is single-threaded",
    ),
    (
        "float-time",
        "floating-point values flowing into SimTime/SimDuration constructors accumulate platform-dependent rounding",
    ),
    (
        "panic-in-handler",
        "panic!/unwrap/expect inside NIC packet/doorbell handlers; faults must surface as error CQEs",
    ),
    (
        "rand-raw",
        "raw rand:: paths bypass the named-stream RNG API; derive a stream via hl_sim::RngFactory::stream",
    ),
    (
        "wire-truncation",
        "`as` cast narrows a wire-format field (psn/raddr/op/...) below its declared width, silently dropping bytes",
    ),
];

/// Wire-format field names and their declared byte widths (WQE,
/// metadata and naive-descriptor layouts). A direct `<field> as <ty>`
/// cast to a narrower integer silently drops bytes of the wire value;
/// an intentional narrowing must mask first (`(x & 0xffff_ffff) as u32`),
/// which documents the truncation and is not flagged.
const WIRE_FIELDS: &[(&str, u64)] = &[
    ("psn", 8),
    ("raddr", 8),
    ("laddr", 8),
    ("wr_id", 8),
    ("cmp", 8),
    ("swp", 8),
    ("imm", 4),
    ("op", 4),
    ("len", 4),
    ("lkey", 4),
    ("rkey", 4),
    ("activate_n", 2),
];

/// NIC state-machine entry points in which `panic-in-handler` applies:
/// the packet receive path, timer expiry, doorbell, local-DMA completion
/// and CQE delivery. A malformed packet or corrupted descriptor reaching
/// these must produce an error CQE, not a process abort.
const HANDLER_FNS: &[&str] = &[
    "on_packet",
    "on_timer",
    "ring_doorbell",
    "finish_local",
    "deliver_cqe",
];

/// Idents that, seen as `.ident(`, panic in handlers.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

/// Macro idents that, seen as `ident!`, panic in handlers.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented", "assert"];

/// `SimTime`/`SimDuration` constructor names checked by `float-time`.
const TIME_CTORS: &[&str] = &["from_nanos", "from_micros", "from_millis", "from_secs"];

/// Float-producing method calls that taint a timestamp argument.
const FLOATY_METHODS: &[&str] = &["round", "ceil", "floor", "powf", "sqrt", "exp", "ln"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired.
    pub rule: &'static str,
    /// File the finding is in (as given to [`check_source`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lint one source file. `file` is used only for reporting.
pub fn check_source(file: &str, src: &str) -> Vec<Finding> {
    let (toks, allows) = lex(src);
    let mut findings = Vec::new();
    rule_banned_idents(file, &toks, &mut findings);
    rule_thread_spawn(file, &toks, &mut findings);
    rule_float_time(file, &toks, &mut findings);
    rule_panic_in_handler(file, &toks, &mut findings);
    rule_rand_raw(file, &toks, &mut findings);
    rule_wire_truncation(file, &toks, &mut findings);
    let ranges = allow_ranges(&toks, &allows);
    findings.retain(|f| {
        !ranges
            .iter()
            .any(|r| r.rule == f.rule && r.start <= f.line && f.line <= r.end)
    });
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Line span one `// hl-lint: allow(<rule>)` comment suppresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRange {
    /// Suppressed rule.
    pub rule: String,
    /// First suppressed line (the comment's own line).
    pub start: u32,
    /// Last suppressed line (end of the covered statement/item).
    pub end: u32,
}

/// Resolve allow-comments to statement-scoped line ranges.
///
/// A trailing allow (code on the same line) covers that line only. An
/// allow on its own line covers the next statement or item: from the
/// first following token through the token that terminates it — a `;`
/// or `,` at the statement's own nesting depth, or the `}` closing a
/// block the statement opened (so an allow above a `fn` covers that one
/// item, never the rest of the file).
pub fn allow_ranges(toks: &[Tok], allows: &[Allow]) -> Vec<AllowRange> {
    allows
        .iter()
        .map(|a| {
            let trailing = toks.iter().any(|t| t.line == a.line);
            if trailing {
                return AllowRange {
                    rule: a.rule.clone(),
                    start: a.line,
                    end: a.line,
                };
            }
            // First token after the comment line starts the statement.
            let Some(start_idx) = toks.iter().position(|t| t.line > a.line) else {
                return AllowRange {
                    rule: a.rule.clone(),
                    start: a.line,
                    end: a.line,
                };
            };
            let mut depth: i64 = 0;
            // Approximate generic-angle depth so the `,` in
            // `HashMap<u32, u8>` does not terminate the statement: `<`
            // counts only in type/path position (after an ident or
            // `::`), which is where statement-level commas can hide.
            let mut angle: i64 = 0;
            let mut end = toks[start_idx].line;
            let mut prev_ident_or_colon = false;
            for t in &toks[start_idx..] {
                end = t.line;
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth -= 1;
                    // Closing the statement's own block (`fn f() { .. }`)
                    // or stepping out of the enclosing scope both end it.
                    if depth <= 0 && t.is_punct('}') {
                        break;
                    }
                    if depth < 0 {
                        break;
                    }
                } else if t.is_punct('<') && prev_ident_or_colon {
                    angle += 1;
                } else if t.is_punct('>') && angle > 0 {
                    angle -= 1;
                } else if t.is_punct(';') && depth == 0 {
                    // A `;` ends a statement no matter what (it cannot
                    // occur inside generics), so a mis-counted `<` from
                    // a comparison cannot extend coverage past it.
                    break;
                } else if t.is_punct(',') && depth == 0 && angle == 0 {
                    break;
                }
                prev_ident_or_colon = t.kind == TokKind::Ident || t.is_punct(':');
            }
            AllowRange {
                rule: a.rule.clone(),
                start: a.line,
                end,
            }
        })
        .collect()
}

/// `hash-collections`, `wall-clock`, `os-entropy`: single banned idents.
fn rule_banned_idents(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for t in toks {
        if t.kind != TokKind::Ident {
            continue;
        }
        let rule = match t.text.as_str() {
            "HashMap" | "HashSet" => Some(("hash-collections", "use BTreeMap/BTreeSet instead")),
            "Instant" | "SystemTime" => Some(("wall-clock", "use hl_sim::SimTime instead")),
            "thread_rng" | "OsRng" | "from_entropy" | "getrandom" | "RandomState" => {
                Some(("os-entropy", "use the seeded hl_sim::RngStream instead"))
            }
            _ => None,
        };
        if let Some((rule, fix)) = rule {
            out.push(Finding {
                rule,
                file: file.to_string(),
                line: t.line,
                message: format!("`{}` is nondeterministic in sim code; {}", t.text, fix),
            });
        }
    }
}

/// `thread-spawn`: the token sequences `thread :: spawn` and
/// `thread :: scope`. Scoped spawns are caught at the `scope` call —
/// every `Scope::spawn` needs one, so linting the scope entry covers
/// all of them with a single site to `allow` and justify.
fn rule_thread_spawn(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for w in toks.windows(4) {
        if w[0].is_ident("thread")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && (w[3].is_ident("spawn") || w[3].is_ident("scope"))
        {
            out.push(Finding {
                rule: "thread-spawn",
                file: file.to_string(),
                line: w[3].line,
                message:
                    "OS threads race the deterministic event loop; model concurrency as sim events"
                        .to_string(),
            });
        }
    }
}

/// `float-time`: a `SimTime::from_*`/`SimDuration::from_*` call whose
/// argument tokens contain a float literal, an `f32`/`f64` cast, or a
/// float-producing method (`.round()` etc.).
fn rule_float_time(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        let is_ctor = toks[i].kind == TokKind::Ident
            && (toks[i].text == "SimTime" || toks[i].text == "SimDuration")
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
            && TIME_CTORS.contains(&toks[i + 3].text.as_str())
            && toks[i + 4].is_punct('(');
        if !is_ctor {
            i += 1;
            continue;
        }
        let line = toks[i].line;
        // Scan the balanced argument list.
        let mut depth = 1;
        let mut j = i + 5;
        let mut tainted: Option<String> = None;
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
            } else if t.kind == TokKind::Float {
                tainted = Some(format!("float literal `{}`", t.text));
            } else if t.is_ident("f32") || t.is_ident("f64") {
                tainted = Some(format!("`{}` value", t.text));
            } else if t.kind == TokKind::Ident
                && FLOATY_METHODS.contains(&t.text.as_str())
                && j > 0
                && toks[j - 1].is_punct('.')
            {
                tainted = Some(format!("`.{}()` result", t.text));
            }
            j += 1;
        }
        if let Some(what) = tainted {
            out.push(Finding {
                rule: "float-time",
                file: file.to_string(),
                line,
                message: format!(
                    "{} flows into a {} timestamp; accumulate in integer nanoseconds",
                    what, toks[i].text
                ),
            });
        }
        i = j;
    }
}

/// `panic-in-handler`: `.unwrap()`/`.expect()`/`panic!`-family inside a
/// function whose name marks it as a NIC packet/doorbell handler.
///
/// Function extents are tracked by brace depth: after `fn <handler>` the
/// body starts at the next `{` outside parentheses and ends when the
/// depth returns to its opening value. Closures inside the body count as
/// part of the handler (they run on the same call path).
fn rule_panic_in_handler(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let mut brace_depth: i64 = 0;
    // (fn name, depth its body opened at); handlers only, innermost last.
    let mut stack: Vec<(String, i64)> = Vec::new();
    // A handler fn seen, waiting for its body `{` (skipping params and
    // return type); None when not inside a pending header.
    let mut pending: Option<String> = None;
    let mut paren_depth: i64 = 0;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren_depth += 1;
        } else if t.is_punct(')') {
            paren_depth -= 1;
        } else if t.is_punct('{') {
            brace_depth += 1;
            if paren_depth == 0 {
                if let Some(name) = pending.take() {
                    stack.push((name, brace_depth));
                }
            }
        } else if t.is_punct('}') {
            if let Some((_, open)) = stack.last() {
                if brace_depth == *open {
                    stack.pop();
                }
            }
            brace_depth -= 1;
        } else if t.is_ident("fn")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && paren_depth == 0
        {
            if HANDLER_FNS.contains(&toks[i + 1].text.as_str()) {
                pending = Some(toks[i + 1].text.clone());
            } else {
                pending = None;
            }
        } else if !stack.is_empty() && t.kind == TokKind::Ident {
            let in_handler = &stack.last().unwrap().0;
            let next_is = |c: char| i + 1 < toks.len() && toks[i + 1].is_punct(c);
            let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
            if PANICKY_METHODS.contains(&t.text.as_str()) && prev_is_dot && next_is('(') {
                out.push(Finding {
                    rule: "panic-in-handler",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`.{}()` in NIC handler `{}`; surface the fault as an error CQE",
                        t.text, in_handler
                    ),
                });
            } else if PANICKY_MACROS.contains(&t.text.as_str()) && next_is('!') {
                out.push(Finding {
                    rule: "panic-in-handler",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}!` in NIC handler `{}`; surface the fault as an error CQE",
                        t.text, in_handler
                    ),
                });
            }
        }
        i += 1;
    }
}

/// `rand-raw`: any `rand::` path. The workspace's only sanctioned
/// randomness is the seeded, named hl_sim::RngStream; a raw `rand` call
/// either draws OS entropy or, even seeded, couples draw order across
/// consumers (adding one perturbs all experiments).
fn rule_rand_raw(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for w in toks.windows(3) {
        if w[0].is_ident("rand") && w[1].is_punct(':') && w[2].is_punct(':') {
            out.push(Finding {
                rule: "rand-raw",
                file: file.to_string(),
                line: w[0].line,
                message: "raw `rand::` bypasses the named RNG streams; derive one with hl_sim::RngFactory::stream(\"<name>\")"
                    .to_string(),
            });
        }
    }
}

/// `wire-truncation`: `<wire field> as <narrower int>` without an
/// explicit mask. The direct form silently drops the field's high
/// bytes (e.g. `psn as u32` wraps after 4 Gi packets); a masked cast
/// (`(psn & 0xffff_ffff) as u32`) states the intent and is exempt
/// because the token before `as` is then `)`.
fn rule_wire_truncation(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for w in toks.windows(3) {
        let (field, cast, ty) = (&w[0], &w[1], &w[2]);
        if field.kind != TokKind::Ident || !cast.is_ident("as") || ty.kind != TokKind::Ident {
            continue;
        }
        let Some((_, width)) = WIRE_FIELDS.iter().find(|(n, _)| field.is_ident(n)) else {
            continue;
        };
        let target = match ty.text.as_str() {
            "u8" | "i8" => 1,
            "u16" | "i16" => 2,
            "u32" | "i32" => 4,
            _ => continue,
        };
        if target < *width {
            out.push(Finding {
                rule: "wire-truncation",
                file: file.to_string(),
                line: field.line,
                message: format!(
                    "`{} as {}` drops bytes of a {}-byte wire field; mask explicitly if the truncation is intended",
                    field.text, ty.text, width
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(src: &str) -> Vec<&'static str> {
        check_source("t.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn clean_code_is_clean() {
        assert!(rules_fired(
            "use std::collections::BTreeMap;\nfn f(t: SimTime) -> SimTime { t + SimDuration::from_nanos(5) }"
        )
        .is_empty());
    }

    #[test]
    fn allow_scoped_to_statement() {
        let same = "let m: HashMap<u32, u8> = HashMap::new(); // hl-lint: allow(hash-collections)";
        assert!(rules_fired(same).is_empty());
        let above = "// vetted -- hl-lint: allow(hash-collections)\nlet m: HashMap<u32, u8> = HashMap::new();";
        assert!(rules_fired(above).is_empty());
        let wrong_rule = "let m: HashMap<u32, u8> = HashMap::new(); // hl-lint: allow(wall-clock)";
        assert_eq!(
            rules_fired(wrong_rule),
            ["hash-collections", "hash-collections"]
        );
    }

    #[test]
    fn allow_covers_multiline_statement_but_not_beyond() {
        // The statement below the comment spans three lines: all covered.
        let multi = "// audited -- hl-lint: allow(hash-collections)\nlet m: HashMap<u32, u8> =\n    HashMap::with_capacity(\n        4);\nlet n: HashMap<u32, u8> = HashMap::new();";
        assert_eq!(
            rules_fired(multi),
            ["hash-collections", "hash-collections"],
            "only the statement after the comment is suppressed"
        );
        // An allow above one fn item must not bleed into the next item.
        let item = "// hl-lint: allow(wall-clock)\nfn a() { let t = Instant::now(); }\nfn b() { let t = Instant::now(); }";
        assert_eq!(rules_fired(item), ["wall-clock"]);
    }

    #[test]
    fn trailing_allow_does_not_cover_next_line() {
        let src = "let a: HashMap<u32, u8> = known_safe(); // hl-lint: allow(hash-collections)\nlet b: HashMap<u32, u8> = known_safe();";
        assert_eq!(rules_fired(src), ["hash-collections"]);
    }

    #[test]
    fn rand_raw_paths() {
        assert_eq!(rules_fired("let x = rand::random::<u64>();"), ["rand-raw"]);
        assert!(rules_fired("let s = factory.stream(\"nic-jitter\");").is_empty());
    }

    #[test]
    fn wire_truncation_needs_bare_field_cast() {
        assert_eq!(rules_fired("let x = pkt.psn as u32;"), ["wire-truncation"]);
        assert_eq!(rules_fired("let x = w.raddr as u32;"), ["wire-truncation"]);
        // Masked casts document the truncation and pass.
        assert!(rules_fired("let x = (pkt.psn & 0xffff_ffff) as u32;").is_empty());
        // Widening or same-width casts pass.
        assert!(rules_fired("let x = imm as u64; let y = len as u32;").is_empty());
        // Unrelated identifiers pass.
        assert!(rules_fired("let x = count as u8;").is_empty());
    }

    #[test]
    fn float_time_needs_taint() {
        assert!(rules_fired("let t = SimDuration::from_nanos(x + 5);").is_empty());
        assert_eq!(
            rules_fired("let t = SimDuration::from_nanos(ns.round() as u64);"),
            ["float-time"]
        );
        assert_eq!(
            rules_fired("let t = SimTime::from_nanos((x as f64 * 1.5) as u64);"),
            ["float-time"]
        );
    }

    #[test]
    fn panic_scoped_to_handlers() {
        assert!(rules_fired("fn helper(&self) { self.x.unwrap(); }").is_empty());
        assert_eq!(
            rules_fired("fn on_packet(&mut self) { self.x.unwrap(); }"),
            ["panic-in-handler"]
        );
        // A non-handler fn *after* a handler closes is out of scope again.
        assert!(rules_fired(
            "fn on_packet(&mut self) { let x = 1; }\nfn helper(&self) { self.x.expect(\"boom\"); }"
        )
        .is_empty());
    }
}
