//! Gray-failure robustness: the health monitor's degrade → re-promote
//! round trip, the NIC-stall probe, in-flight operations across backend
//! transitions, and gray-campaign determinism.
//!
//! Unlike `tests/chaos.rs` (fail-stop faults, binary detectors), every
//! fault here is *gray*: jittery or lossy links and silently stalled
//! NICs that keep the chain nominally alive. The invariants:
//!
//! 1. **Round trip with oracle** — under seeded jitter + loss the
//!    monitor degrades to the Naïve backend and, after the impairment
//!    heals and the hysteresis dwell passes, re-promotes to a fresh
//!    offloaded chain; the committed replicated state is byte-identical
//!    to a fault-free Naïve control run of the same operation sequence
//!    (no lost or duplicated writes across either transition).
//! 2. **Hysteresis** — degradation needs `degrade_after` consecutive
//!    sick evaluations; re-promotion waits out `min_degraded_dwell`.
//! 3. **Stall detection** — a silent mid-chain NIC stall (no error CQE,
//!    heartbeats still answered) trips the client-side end-to-end probe
//!    (`nic_stall_suspected`) and triggers a scoped rebuild.
//! 4. **No hang across degradation** — operations in flight when the
//!    degrade fires complete or fail with a typed [`OpError`].
//! 5. **Determinism** — gray campaigns re-run on the same seed yield
//!    byte-identical Chrome traces and metrics renders.

use hyperloop_repro::cluster::chaos::{member_snapshot, FaultEvent, FaultKind, FaultSchedule};
use hyperloop_repro::cluster::{ClusterBuilder, World};
use hyperloop_repro::fabric::HostId;
use hyperloop_repro::hyperloop::api::GroupClient;
use hyperloop_repro::hyperloop::deadline::Backend;
use hyperloop_repro::hyperloop::health::{HealthConfig, HealthMonitor, HealthState};
use hyperloop_repro::hyperloop::naive::{Mode, NaiveBuilder, NaiveConfig};
use hyperloop_repro::hyperloop::recovery;
use hyperloop_repro::hyperloop::slo::{SloEngine, SloRule};
use hyperloop_repro::hyperloop::{
    replica, DeadlinePolicy, GroupBuilder, GroupConfig, GroupOp, GroupRef, HyperLoopClient,
    RetryClient,
};
use hyperloop_repro::sim::{Bytes, Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const CLIENT: HostId = HostId(0);
const R1: HostId = HostId(1);
const R2: HostId = HostId(2);
const STANDBY: HostId = HostId(3);
const REP_BYTES: u64 = 64 << 10;
const REC_BYTES: usize = 64;
const N_SLOTS: usize = 64;
const CAS_OFF: u64 = 48 << 10;

fn record(k: usize) -> Vec<u8> {
    let mut v = format!("gray-rec-{k:05}-").into_bytes();
    while v.len() < REC_BYTES {
        v.push(b'a' + (k % 26) as u8);
    }
    v
}

fn policy() -> DeadlinePolicy {
    DeadlinePolicy {
        deadline: SimDuration::from_millis(1),
        max_attempts: 60,
        backoff: SimDuration::from_micros(200),
        backoff_cap: SimDuration::from_millis(2),
    }
}

fn build_offloaded(seed: u64) -> (World, Engine<World>, GroupRef, RetryClient) {
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    w.enable_telemetry();
    let group = GroupBuilder::new(GroupConfig {
        client: CLIENT,
        replicas: vec![R1, R2],
        rep_bytes: REP_BYTES,
        ring_slots: 64,
        transport_timeout: Some((SimDuration::from_millis(3), 7)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);
    let retry = RetryClient::with_policy(client, policy());
    (w, eng, group, retry)
}

/// The deterministic mixed op for step `k`: every fifth op is a gCAS
/// increment of the shared counter word, the rest are durable writes
/// into a rotating slot. The sequence (not the backend or the timing)
/// fully determines the final committed state.
fn op_for(k: usize, cas_done: u64) -> GroupOp {
    if k % 5 == 4 {
        GroupOp::Cas {
            offset: CAS_OFF,
            cmp: cas_done,
            swp: cas_done + 1,
            exec_map: 0b111,
        }
    } else {
        GroupOp::Write {
            offset: ((k % N_SLOTS) * REC_BYTES) as u64,
            data: Bytes::copy_from_slice(&record(k)),
            flush: true,
        }
    }
}

/// Drive `n_ops` of the mixed sequence closed-loop (one outstanding op;
/// the next issues when the previous settles). Returns (oks, errs).
fn drive_closed_loop(
    retry: &RetryClient,
    n_ops: usize,
    start: SimTime,
    eng: &mut Engine<World>,
) -> (Rc<RefCell<usize>>, Rc<RefCell<usize>>) {
    let oks = Rc::new(RefCell::new(0usize));
    let errs = Rc::new(RefCell::new(0usize));

    #[allow(clippy::too_many_arguments)]
    fn step(
        retry: RetryClient,
        k: usize,
        n_ops: usize,
        cas_done: u64,
        oks: Rc<RefCell<usize>>,
        errs: Rc<RefCell<usize>>,
        w: &mut World,
        eng: &mut Engine<World>,
    ) {
        if k >= n_ops {
            return;
        }
        let op = op_for(k, cas_done);
        let is_cas = matches!(op, GroupOp::Cas { .. });
        let r2 = retry.clone();
        retry.issue(
            w,
            eng,
            op,
            Box::new(move |w, eng, outcome| {
                let next_cas = match outcome {
                    Ok(_) => {
                        *oks.borrow_mut() += 1;
                        cas_done + is_cas as u64
                    }
                    Err(_) => {
                        *errs.borrow_mut() += 1;
                        cas_done
                    }
                };
                step(r2, k + 1, n_ops, next_cas, oks, errs, w, eng);
            }),
        );
    }

    let retry = retry.clone();
    let (o, e) = (oks.clone(), errs.clone());
    eng.schedule_at(start, move |w: &mut World, eng| {
        step(retry, 0, n_ops, 0, o, e, w, eng);
    });
    (oks, errs)
}

/// Fault-free Naïve control: the same op sequence against a CPU-driven
/// chain over the same member hosts, no impairments. Returns the final
/// bytes of the control's replicated region (all members asserted
/// identical first).
fn naive_control_bytes(seed: u64, n_ops: usize) -> Vec<u8> {
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    let naive = NaiveBuilder::new(NaiveConfig {
        client: CLIENT,
        replicas: vec![R1, R2],
        rep_bytes: REP_BYTES,
        ring_slots: 64,
        mode: Mode::Event,
        ..Default::default()
    })
    .build(&mut w, &mut eng);
    let retry = RetryClient::with_policy_backend(Backend::Naive(naive.clone()), policy());
    let (oks, errs) = drive_closed_loop(&retry, n_ops, SimTime::from_nanos(1_000_000), &mut eng);
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));
    assert_eq!(*oks.borrow(), n_ops, "control must ACK every op");
    assert_eq!(*errs.borrow(), 0, "control must not fail ops");

    let reference = member_bytes(&naive, 0, &w);
    for m in 1..GroupClient::group_size(&naive) {
        assert_eq!(
            member_bytes(&naive, m, &w),
            reference,
            "control members diverged"
        );
    }
    reference
}

fn member_bytes<C: GroupClient>(client: &C, m: usize, w: &World) -> Vec<u8> {
    member_snapshot(
        w,
        client.member_host(m),
        client.member_addr(m, 0),
        REP_BYTES as usize,
    )
}

fn mark_time(w: &World, name: &str) -> Option<SimTime> {
    w.telemetry
        .marks()
        .iter()
        .find(|m| m.name == name)
        .map(|m| m.at)
}

/// The tentpole invariant: a full degrade → re-promote round trip under
/// seeded jitter + loss, with a differential oracle against a
/// fault-free Naïve control confirming byte-identical committed state.
#[test]
fn degrade_repromote_round_trip_preserves_committed_state() {
    let seed = 4242;
    let n_ops = 400;
    let (mut w, mut eng, group, retry) = build_offloaded(seed);
    w.enable_timeseries(SimDuration::from_millis(1));

    let health_cfg = HealthConfig {
        period: SimDuration::from_millis(2),
        degrade_score: 20,
        healthy_score: 5,
        degrade_after: 2,
        promote_after: 3,
        min_degraded_dwell: SimDuration::from_millis(3),
        ring_slots: 64,
        naive_mode: Mode::Event,
    };
    let dwell = health_cfg.min_degraded_dwell;
    let monitor = HealthMonitor::start(retry.clone(), group, health_cfg, &mut w, &mut eng);

    // Burn-rate SLO on the supervised latency series: the gray window
    // blows the per-window p99 through 500µs, and the alert feeds the
    // monitor's sick signal beside the health score. (Here the score
    // races the alert to the degrade; the alert-leads ordering is
    // pinned by `slo_alert_precedes_health_degrade` below, where the
    // score stays quiet.)
    let slo = Rc::new(RefCell::new(SloEngine::new()));
    slo.borrow_mut().add_rule(
        SloRule::parse(
            "supervised-p99",
            "p99(op_latency_ns{layer=supervised}) < 500us over 4 windows",
        )
        .expect("rule parses"),
    );
    monitor.attach_slo(slo.clone());

    // Gray window 5ms → 15ms: loss on the head hop + jitter on the ACK
    // hop. Nothing dies; only end-to-end signals move.
    let sched = FaultSchedule {
        seed,
        events: vec![
            FaultEvent {
                at: SimTime::from_nanos(5_000_000),
                duration: Some(SimDuration::from_millis(10)),
                kind: FaultKind::LossyLink {
                    src: CLIENT,
                    dst: R1,
                    prob: 0.4,
                },
            },
            FaultEvent {
                at: SimTime::from_nanos(5_000_000),
                duration: Some(SimDuration::from_millis(10)),
                kind: FaultKind::Jitter {
                    src: R2,
                    dst: CLIENT,
                    delay: SimDuration::from_micros(30),
                    jitter: SimDuration::from_micros(50),
                },
            },
        ],
    };
    sched.apply(&mut eng);

    let (oks, errs) = drive_closed_loop(&retry, n_ops, SimTime::from_nanos(1_000_000), &mut eng);
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));

    // Liveness: every op of the sequence ACKed (the generous attempt
    // budget outlasts every transition), none failed, none in flight.
    assert_eq!(*oks.borrow(), n_ops, "closed loop did not finish");
    assert_eq!(*errs.borrow(), 0, "ops failed across transitions");
    assert_eq!(retry.outstanding(), 0);
    assert!(retry.failures().is_empty());

    // The round trip actually happened and landed back offloaded.
    assert!(monitor.degrades() >= 1, "monitor never degraded");
    assert!(monitor.promotes() >= 1, "monitor never re-promoted");
    assert_eq!(monitor.state(), HealthState::Offloaded);
    assert!(retry.is_offloaded());

    // Hysteresis: re-promotion started only after the minimum dwell.
    let degraded_at =
        mark_time(&w, "transition:backend:degrading->degraded").expect("degraded transition mark");
    let promoting_at =
        mark_time(&w, "transition:backend:degraded->promoting").expect("promoting transition mark");
    assert!(
        promoting_at.duration_since(degraded_at) >= dwell,
        "re-promotion ignored the hysteresis dwell: {} -> {}",
        degraded_at.as_nanos(),
        promoting_at.as_nanos()
    );

    // The attached SLO saw the excursion: it fired during the gray
    // window and resolved after the heal (a firing alert blocks
    // re-promotion, so reaching Offloaded above already proves the
    // resolve edge; these pin the counters and marks).
    assert!(
        slo.borrow().fired("supervised-p99") >= 1,
        "SLO alert never fired across the gray window"
    );
    assert!(!slo.borrow().any_firing(), "alert still firing after heal");
    assert!(
        w.telemetry
            .metrics
            .counter("slo_alerts_fired", "rule=supervised-p99")
            >= 1,
        "slo_alerts_fired counter not bumped"
    );
    assert!(
        w.telemetry
            .marks()
            .iter()
            .any(|m| m.name == "slo:resolve:supervised-p99"),
        "resolve mark missing"
    );

    // Differential oracle: committed state byte-identical to the
    // fault-free Naïve control — across a degrade, a re-promotion, and
    // every retry in between, no write was lost or applied twice (the
    // CAS counter word would diverge on any duplicate).
    let control = naive_control_bytes(seed, n_ops);
    let c = retry.client();
    for m in 0..c.group_size() {
        assert_eq!(
            member_bytes(&c, m, &w),
            control,
            "member {m} diverges from the fault-free control"
        );
    }
    let cas_word = u64::from_le_bytes(
        control[CAS_OFF as usize..CAS_OFF as usize + 8]
            .try_into()
            .unwrap(),
    );
    assert_eq!(
        cas_word,
        (n_ops / 5) as u64,
        "CAS increments lost or duplicated"
    );
}

/// Tentpole causal-order invariant: when the SLO alert is what makes
/// the monitor sick, its fire mark strictly precedes the Degrading
/// transition. Heavy jitter inflates the supervised p99 far past the
/// threshold without tripping a single per-attempt deadline (the 4ms
/// budget dwarfs the jitter), so the health score stays quiet and the
/// alert is the only signal that can degrade — and because degrading
/// takes `degrade_after` consecutive sick periods, the transition lands
/// at least one period after the fire.
#[test]
fn slo_alert_precedes_health_degrade() {
    let seed = 9090;
    let (mut w, mut eng) = ClusterBuilder::new(4)
        .arena_size(2 << 20)
        .seed(seed)
        .build();
    w.enable_timeseries(SimDuration::from_millis(1));
    let group = GroupBuilder::new(GroupConfig {
        client: CLIENT,
        replicas: vec![R1, R2],
        rep_bytes: REP_BYTES,
        ring_slots: 64,
        transport_timeout: Some((SimDuration::from_millis(3), 7)),
        ..Default::default()
    })
    .build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group.clone(), &mut w);
    // Generous per-attempt deadline: jitter never exhausts it, so the
    // health score never moves.
    let retry = RetryClient::with_policy(
        client,
        DeadlinePolicy {
            deadline: SimDuration::from_millis(4),
            max_attempts: 40,
            backoff: SimDuration::from_micros(500),
            backoff_cap: SimDuration::from_millis(4),
        },
    );
    let monitor = HealthMonitor::start(
        retry.clone(),
        group,
        HealthConfig {
            period: SimDuration::from_millis(2),
            degrade_score: 20,
            healthy_score: 5,
            degrade_after: 2,
            promote_after: 3,
            min_degraded_dwell: SimDuration::from_millis(3),
            ring_slots: 64,
            naive_mode: Mode::Event,
        },
        &mut w,
        &mut eng,
    );
    let slo = Rc::new(RefCell::new(SloEngine::new()));
    slo.borrow_mut().add_rule(
        SloRule::parse(
            "supervised-p99",
            "p99(op_latency_ns{layer=supervised}) < 150us over 8 windows",
        )
        .unwrap()
        .with_short_windows(2),
    );
    monitor.attach_slo(slo.clone());

    // Jitter excursion on the client's links, 10ms → 35ms.
    FaultSchedule {
        seed,
        events: vec![
            FaultEvent {
                at: SimTime::from_nanos(10_000_000),
                duration: Some(SimDuration::from_millis(25)),
                kind: FaultKind::Jitter {
                    src: CLIENT,
                    dst: R1,
                    delay: SimDuration::from_micros(40),
                    jitter: SimDuration::from_micros(120),
                },
            },
            FaultEvent {
                at: SimTime::from_nanos(10_000_000),
                duration: Some(SimDuration::from_millis(25)),
                kind: FaultKind::Jitter {
                    src: R2,
                    dst: CLIENT,
                    delay: SimDuration::from_micros(40),
                    jitter: SimDuration::from_micros(120),
                },
            },
        ],
    }
    .apply(&mut eng);

    // Open-loop writes every 100µs span the whole excursion.
    let n_ops = 500usize;
    for k in 0..n_ops {
        let retry2 = retry.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 100_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry2.gwrite(
                w,
                eng,
                ((k % N_SLOTS) * REC_BYTES) as u64,
                &record(k),
                true,
                Box::new(|_w, _e, r| {
                    r.expect("supervised op failed");
                }),
            );
        });
    }

    eng.run_until(&mut w, SimTime::from_nanos(250_000_000));
    monitor.stop();

    assert!(monitor.degrades() >= 1, "alert never degraded the monitor");
    assert!(monitor.promotes() >= 1, "monitor never re-promoted");
    assert_eq!(
        w.telemetry
            .metrics
            .counter("retry_deadline_exceeded", "layer=deadline"),
        0,
        "scenario invalid: the health score had its own reason to degrade"
    );

    let marks = w.telemetry.marks();
    let fire = marks
        .iter()
        .find(|m| m.name == "slo:fire:supervised-p99")
        .expect("slo:fire mark");
    let degrading = marks
        .iter()
        .find(|m| m.name == "transition:backend:offloaded->degrading")
        .expect("degrading transition mark");
    assert!(
        fire.at < degrading.at,
        "alert ({}) must strictly precede the Degrading transition ({})",
        fire.at.as_nanos(),
        degrading.at.as_nanos()
    );

    // The snapshot carries the whole causal chain: the first window
    // whose p99 crossed the threshold closes before the alert fires.
    let excursion = w
        .telemetry
        .series
        .quantile_series("op_latency_ns", "layer=supervised", 0.99)
        .into_iter()
        .find(|(_, p99)| *p99 >= 150_000)
        .expect("no excursion window");
    let excursion_end = SimTime::from_nanos((excursion.0 + 1) * 1_000_000);
    assert!(
        excursion_end <= fire.at,
        "excursion window must close before the alert fires"
    );
}

/// Satellite regression: operations in flight when `degrade_to_naive`
/// fires complete or fail with a typed error — never hang.
#[test]
fn inflight_ops_survive_degradation() {
    let (mut w, mut eng, group, retry) = build_offloaded(7);

    // Slow the ACK hop so a burst is genuinely in flight mid-degrade.
    w.fabric.set_impairment(
        R2,
        CLIENT,
        hyperloop_repro::fabric::Impairment::delay(
            SimDuration::from_micros(500),
            SimDuration::ZERO,
        ),
    );

    let n_burst = 12;
    let settled = Rc::new(RefCell::new((0usize, 0usize))); // (ok, err)
    for k in 0..n_burst {
        let settled = settled.clone();
        let retry2 = retry.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 10_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry2.gwrite(
                w,
                eng,
                (k * REC_BYTES) as u64,
                &record(k),
                true,
                Box::new(move |_w, _e, r| {
                    let mut s = settled.borrow_mut();
                    match r {
                        Ok(_) => s.0 += 1,
                        Err(_) => s.1 += 1,
                    }
                }),
            );
        });
    }

    // Fire the degrade while the burst is mid-chain.
    {
        let retry2 = retry.clone();
        eng.schedule_at(SimTime::from_nanos(1_060_000), move |w: &mut World, eng| {
            recovery::degrade_to_naive(
                &group,
                w,
                eng,
                Mode::Event,
                Box::new(move |_w, _e, naive| retry2.swap_naive(naive)),
            );
        });
    }

    eng.run_until(&mut w, SimTime::from_nanos(200_000_000));
    let (ok, err) = *settled.borrow();
    assert_eq!(
        ok + err,
        n_burst,
        "op neither completed nor failed across the degrade (ok={ok} err={err})"
    );
    assert_eq!(retry.outstanding(), 0, "supervised op left hanging");
    assert!(!retry.is_offloaded(), "degrade must have swapped backends");

    // The degraded backend still serves new traffic.
    let final_ok = Rc::new(RefCell::new(None::<bool>));
    {
        let f = final_ok.clone();
        retry.gwrite(
            &mut w,
            &mut eng,
            (n_burst * REC_BYTES) as u64,
            &record(n_burst),
            true,
            Box::new(move |_w, _e, r| *f.borrow_mut() = Some(r.is_ok())),
        );
    }
    eng.run_until(&mut w, SimTime::from_nanos(300_000_000));
    assert_eq!(*final_ok.borrow(), Some(true));
}

/// Satellite regression: a silently stalled mid-chain NIC — no error
/// CQE at the client, heartbeats (CPU messages) still flowing — is
/// detected by the end-to-end probe and recovered within the policy
/// budget by rebuilding around the stalled host.
#[test]
fn nic_stall_probe_detects_and_recovers() {
    let (mut w, mut eng, group, retry) = build_offloaded(11);

    let suspects = Rc::new(RefCell::new(0u32));
    {
        // On suspicion, rebuild over the survivor + standby. The test
        // stalls the tail (R2): the head hop stays healthy, so only the
        // probe — not the transport-error path — can see this fault.
        let suspects = suspects.clone();
        let retry2 = retry.clone();
        let group2 = group.clone();
        let latch = Rc::new(RefCell::new(false));
        retry.arm_nic_stall_probe(
            3,
            Box::new(move |w, eng| {
                *suspects.borrow_mut() += 1;
                if std::mem::replace(&mut *latch.borrow_mut(), true) {
                    return;
                }
                let retry3 = retry2.clone();
                recovery::rebuild_chain(
                    w,
                    eng,
                    &group2,
                    vec![R1],
                    Some(STANDBY),
                    64,
                    Box::new(move |_w, _e, new_client| retry3.swap(new_client)),
                );
            }),
        );
    }

    // Open-loop writes every 500µs keep probing the chain end to end.
    let n_ops = 40;
    let settled = Rc::new(RefCell::new(0usize));
    for k in 0..n_ops {
        let settled = settled.clone();
        let retry2 = retry.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 500_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry2.gwrite(
                w,
                eng,
                ((k % N_SLOTS) * REC_BYTES) as u64,
                &record(k),
                true,
                Box::new(move |_w, _e, _r| *settled.borrow_mut() += 1),
            );
        });
    }

    // Permanent silent stall of the tail NIC at 8ms.
    eng.schedule_at(SimTime::from_nanos(8_000_000), |w: &mut World, eng| {
        w.set_nic_stalled(R2, true, eng);
    });

    eng.run_until(&mut w, SimTime::from_nanos(300_000_000));

    assert!(*suspects.borrow() >= 1, "probe never fired");
    assert!(
        w.telemetry
            .metrics
            .counter("nic_stall_suspected", "layer=probe")
            >= 1,
        "nic_stall_suspected counter not bumped"
    );
    assert_eq!(*settled.borrow(), n_ops, "ops hung across the stall");
    assert_eq!(retry.outstanding(), 0);

    // The probe's flight-recorder dump captured the victim: at dump
    // time the op that tripped the stall detector was still open, so it
    // must appear in the dump's open-span list.
    assert!(w.telemetry.flight.requested() >= 1, "no flight dump taken");
    let probe_dump = w
        .telemetry
        .flight
        .dumps()
        .iter()
        .find(|d| d.reason.starts_with("probe:nic-stall"))
        .expect("probe-triggered flight dump stored");
    assert!(
        !probe_dump.open_spans.is_empty(),
        "flight dump must pin the victim op's open span"
    );
    assert!(
        probe_dump
            .open_spans
            .iter()
            .all(|s| s.end.is_none() && s.begin <= probe_dump.at),
        "open spans must have been in flight at dump time"
    );

    // The rebuilt chain (around the stalled host) serves new traffic.
    let final_ok = Rc::new(RefCell::new(None::<bool>));
    {
        let f = final_ok.clone();
        retry.gwrite(
            &mut w,
            &mut eng,
            0,
            &record(99),
            true,
            Box::new(move |_w, _e, r| *f.borrow_mut() = Some(r.is_ok())),
        );
    }
    eng.run_until(&mut w, SimTime::from_nanos(400_000_000));
    assert_eq!(
        *final_ok.borrow(),
        Some(true),
        "chain not serving after probe-triggered rebuild"
    );
    let c = retry.client();
    let hosts: Vec<HostId> = (0..c.group_size()).map(|m| c.member_host(m)).collect();
    assert!(
        !hosts.contains(&R2),
        "stalled host must have been rebuilt out of the chain"
    );
}

/// Gray campaign used by the determinism check: seeded gray-only fault
/// schedule + health monitor + open-loop writes, full telemetry on.
fn gray_campaign(seed: u64) -> (String, String, String, usize) {
    let (mut w, mut eng, group, retry) = build_offloaded(seed);
    w.tracer.enable(&["chaos", "recovery", "fault"]);
    w.enable_timeseries(SimDuration::from_millis(1));
    let monitor = HealthMonitor::start(
        retry.clone(),
        group,
        HealthConfig {
            period: SimDuration::from_millis(2),
            degrade_score: 20,
            healthy_score: 5,
            degrade_after: 2,
            promote_after: 3,
            min_degraded_dwell: SimDuration::from_millis(3),
            ring_slots: 64,
            naive_mode: Mode::Event,
        },
        &mut w,
        &mut eng,
    );

    let sched = FaultSchedule::generate_gray(
        seed,
        &[R1, R2],
        CLIENT,
        SimTime::from_nanos(2_000_000),
        SimTime::from_nanos(30_000_000),
    );
    assert!(!sched.events.is_empty(), "gray schedule must not be empty");
    let n_gray = sched.events.len();
    sched.apply(&mut eng);

    for k in 0..40usize {
        let retry2 = retry.clone();
        let at = SimTime::from_nanos(1_000_000 + k as u64 * 500_000);
        eng.schedule_at(at, move |w: &mut World, eng| {
            retry2.gwrite(
                w,
                eng,
                ((k % N_SLOTS) * REC_BYTES) as u64,
                &record(k),
                true,
                Box::new(|_w, _e, _r| {}),
            );
        });
    }

    eng.run_until(&mut w, SimTime::from_nanos(120_000_000));
    monitor.stop();
    let now = eng.now();
    w.collect_metrics(now);
    (
        w.telemetry.chrome_trace(),
        w.telemetry.metrics.render(),
        w.telemetry.timeseries_json(),
        n_gray,
    )
}

/// Satellite determinism: three gray seeds, each run twice — Chrome
/// traces and the metrics render must be byte-identical, with at least
/// one gray fault kind in every schedule (guaranteed by construction:
/// `generate_gray` emits only gray kinds).
#[test]
fn gray_campaigns_are_deterministic_across_reruns() {
    for seed in [41, 42, 43] {
        let (trace_a, metrics_a, series_a, n_gray) = gray_campaign(seed);
        let (trace_b, metrics_b, series_b, _) = gray_campaign(seed);
        assert!(n_gray >= 1, "seed {seed}: no gray faults scheduled");
        assert!(
            trace_a.starts_with("{\"traceEvents\":["),
            "seed {seed}: not a Chrome trace export"
        );
        assert_eq!(
            trace_a, trace_b,
            "seed {seed}: gray campaign chrome trace diverged across reruns"
        );
        assert!(
            metrics_a.contains("fabric_impaired_drops") || metrics_a.contains("nic_"),
            "seed {seed}: metrics render looks empty"
        );
        assert_eq!(
            metrics_a, metrics_b,
            "seed {seed}: gray campaign metrics diverged across reruns"
        );
        assert!(
            series_a.starts_with("{\"version\":1,")
                && series_a.contains("\"name\":\"op_latency_ns\""),
            "seed {seed}: time-series snapshot missing the supervised latency series"
        );
        assert_eq!(
            series_a, series_b,
            "seed {seed}: time-series snapshot diverged across reruns"
        );
    }
}
