//! Property tests: the arena event queue pops in exact `(time, seq)`
//! order under any interleaving of schedule / schedule_at /
//! schedule_event / cancel, and past-time scheduling clamps to `now`.
//!
//! The reference model is a plain vector sorted stably by `(at, seq)`
//! — the contract the whole deterministic testbed rests on. Any slab
//! reuse bug, heap-property violation, or cancel that disturbs a
//! neighbouring entry shows up as an order or liveness divergence.

use hl_sim::{Engine, EventCtx, EventToken, SimDuration, SimTime};
use proptest::prelude::*;

/// Test context: records `(now_ns, id)` for every fired event, via the
/// typed path and the closure path alike.
#[derive(Default)]
struct Log {
    fired: Vec<(u64, u64)>,
}

impl EventCtx for Log {
    type Event = u64;
    fn run_event(&mut self, eng: &mut Engine<Self>, id: u64) {
        let now = eng.now().as_nanos();
        self.fired.push((now, id));
    }
}

/// One modelled schedule: where the event should fire and whether a
/// cancel killed it before the run.
struct Modelled {
    at: u64,
    seq: u64,
    id: u64,
    token: EventToken,
    live: bool,
}

proptest! {
    /// Apply a random interleaving of the four queue operations, then
    /// run to quiescence: fired events must match the reference model
    /// (stable sort by `(at, seq)` over the survivors) exactly — same
    /// ids, same order, same firing times — and every cancel must
    /// report liveness truthfully.
    #[test]
    fn pops_follow_time_seq_order_exactly(
        ops in proptest::collection::vec((0u8..4, 0u64..10_000, 0usize..64), 1..200)
    ) {
        let mut eng: Engine<Log> = Engine::new();
        let mut model: Vec<Modelled> = Vec::new();
        let mut next_id = 0u64;
        let mut next_seq = 0u64;
        for (kind, t, pick) in ops {
            match kind {
                // Closure with a relative delay (now = 0 pre-run).
                0 => {
                    let id = next_id;
                    let token = eng.schedule(
                        SimDuration::from_nanos(t),
                        move |w: &mut Log, eng: &mut Engine<Log>| {
                            let now = eng.now().as_nanos();
                            w.fired.push((now, id));
                        },
                    );
                    model.push(Modelled { at: t, seq: next_seq, id, token, live: true });
                    next_id += 1;
                    next_seq += 1;
                }
                // Closure at an absolute instant.
                1 => {
                    let id = next_id;
                    let token = eng.schedule_at(
                        SimTime::from_nanos(t),
                        move |w: &mut Log, eng: &mut Engine<Log>| {
                            let now = eng.now().as_nanos();
                            w.fired.push((now, id));
                        },
                    );
                    model.push(Modelled { at: t, seq: next_seq, id, token, live: true });
                    next_id += 1;
                    next_seq += 1;
                }
                // Typed event (allocation-free datapath representation).
                2 => {
                    let id = next_id;
                    let token = eng.schedule_event(SimDuration::from_nanos(t), id);
                    model.push(Modelled { at: t, seq: next_seq, id, token, live: true });
                    next_id += 1;
                    next_seq += 1;
                }
                // Cancel some earlier token (possibly already cancelled).
                _ => {
                    if !model.is_empty() {
                        let idx = pick % model.len();
                        let m = &mut model[idx];
                        let was_live = m.live;
                        let reported = eng.cancel(m.token);
                        prop_assert_eq!(
                            reported, was_live,
                            "cancel lied about liveness of id {}", m.id
                        );
                        m.live = false;
                    }
                }
            }
        }

        let live_total = model.iter().filter(|m| m.live).count();
        prop_assert_eq!(eng.pending(), live_total, "pending() disagrees with the model");

        let mut expected: Vec<&Modelled> = model.iter().filter(|m| m.live).collect();
        expected.sort_by_key(|m| (m.at, m.seq));
        let want: Vec<(u64, u64)> = expected.iter().map(|m| (m.at, m.id)).collect();

        let mut log = Log::default();
        eng.run(&mut log);
        prop_assert_eq!(&log.fired, &want, "pop order diverged from (time, seq) model");
        prop_assert_eq!(eng.pending(), 0usize);
    }

    /// An event scheduled at an absolute instant already in the past is
    /// clamped to `now` — and the `seq` tiebreaker still puts it after
    /// everything queued at `now` before it.
    #[test]
    fn past_time_scheduling_clamps_to_now(
        t in 1_000u64..100_000,
        back in 0u64..200_000,
    ) {
        let mut eng: Engine<Log> = Engine::new();
        let trigger_at = SimTime::from_nanos(t);
        // The trigger fires first and schedules an event into the past.
        eng.schedule_at(trigger_at, move |w: &mut Log, eng: &mut Engine<Log>| {
            w.fired.push((eng.now().as_nanos(), 1));
            let past = SimTime::from_nanos(t.saturating_sub(back));
            eng.schedule_at(past, |w: &mut Log, eng: &mut Engine<Log>| {
                w.fired.push((eng.now().as_nanos(), 3));
            });
        });
        // A sibling already queued at the same instant must still beat
        // the clamped late-comer (larger seq).
        eng.schedule_at(trigger_at, |w: &mut Log, eng: &mut Engine<Log>| {
            w.fired.push((eng.now().as_nanos(), 2));
        });
        let mut log = Log::default();
        eng.run(&mut log);
        prop_assert_eq!(&log.fired, &vec![(t, 1), (t, 2), (t, 3)]);
    }

    /// Cancelling never perturbs survivors, and a token is dead after
    /// its event fires: cancel a prefix of typed events, run, then
    /// check every stale token reports `false`.
    #[test]
    fn stale_tokens_are_inert(
        n in 1usize..40,
        k in 0usize..40,
    ) {
        let mut eng: Engine<Log> = Engine::new();
        let tokens: Vec<EventToken> = (0..n as u64)
            .map(|id| eng.schedule_event(SimDuration::from_nanos(id * 7), id))
            .collect();
        let k = k % n;
        for tok in &tokens[..k] {
            prop_assert!(eng.cancel(*tok));
            // Double-cancel is a no-op.
            prop_assert!(!eng.cancel(*tok));
        }
        let mut log = Log::default();
        eng.run(&mut log);
        let survivors: Vec<u64> = log.fired.iter().map(|&(_, id)| id).collect();
        prop_assert_eq!(survivors, (k as u64..n as u64).collect::<Vec<u64>>());
        // Every token — fired or cancelled — is now stale.
        for tok in &tokens {
            prop_assert!(!eng.cancel(*tok), "token outlived its event");
        }
    }
}
