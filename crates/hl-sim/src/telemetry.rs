//! Structured, causal telemetry: op spans, per-hop latency attribution
//! and a labelled metrics registry.
//!
//! The free-form [`crate::Tracer`] answers "what happened"; this module
//! answers "where did the latency go". Every group primitive (and every
//! naive-baseline op) allocates an **OpId** at issue time. The id rides
//! inside WQE descriptors, fabric packets and CQEs, so each layer can
//! stamp a typed [`Stage`] event onto the op without knowing anything
//! about the layers above it. The resulting per-op event list is a
//! causal span: sorting the events by time and taking consecutive
//! deltas decomposes the end-to-end latency into named hop segments
//! (client post, wire, WAIT block, DMA, replica CPU, …) whose durations
//! telescope to the measured latency *exactly* — integer nanoseconds,
//! no residue.
//!
//! Three consumers sit on top:
//!
//! * [`Telemetry::attribution`] — per-kind latency breakdown ranking
//!   segments by their contribution to the mean/p50/p99 (the paper's
//!   Fig 2/9 "where does the tail come from" analysis);
//! * [`Metrics`] — counters/gauges/histograms keyed by
//!   `(name, labels)` in `BTreeMap`s so iteration (and any render) is
//!   deterministic by name;
//! * [`Telemetry::chrome_trace`] — a hand-rolled Chrome trace-event
//!   JSON export (fixed field order, integer-derived timestamps) that
//!   loads in Perfetto / `chrome://tracing`.

use crate::stats::Histogram;
use crate::time::SimTime;
use std::collections::BTreeMap;

/// What kind of operation a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// HyperLoop gWRITE (optionally with interleaved gFLUSH).
    GWrite,
    /// HyperLoop standalone gFLUSH (rides the gWRITE ring).
    GFlush,
    /// HyperLoop gMEMCPY.
    GMemcpy,
    /// HyperLoop gCAS.
    GCas,
    /// Naive-baseline replicated write.
    NaiveWrite,
    /// Naive-baseline flush.
    NaiveFlush,
    /// Naive-baseline memcpy (log apply).
    NaiveMemcpy,
    /// Naive-baseline CAS.
    NaiveCas,
}

impl OpKind {
    /// Short label used in exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::GWrite => "gWRITE",
            OpKind::GFlush => "gFLUSH",
            OpKind::GMemcpy => "gMEMCPY",
            OpKind::GCas => "gCAS",
            OpKind::NaiveWrite => "naive-WRITE",
            OpKind::NaiveFlush => "naive-FLUSH",
            OpKind::NaiveMemcpy => "naive-MEMCPY",
            OpKind::NaiveCas => "naive-CAS",
        }
    }

    /// True for the naive (CPU-involved) baseline kinds.
    pub fn is_naive(self) -> bool {
        matches!(
            self,
            OpKind::NaiveWrite | OpKind::NaiveFlush | OpKind::NaiveMemcpy | OpKind::NaiveCas
        )
    }
}

/// A typed point on an op's causal timeline.
///
/// Each stage *ends* a named segment: the time between the previous
/// event and this one is attributed to [`Stage::segment`]. `OpBegin`
/// opens the span and ends nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Span opened (op issued by the client library).
    OpBegin,
    /// Client finished building descriptors and rang the doorbell.
    ClientPost,
    /// A NIC fetched one of the op's WQEs from host memory.
    NicFetch,
    /// A WAIT WQE for this op parked (its CQ condition not yet met).
    WaitPark,
    /// A parked WAIT unblocked and granted the op's WQEs to the NIC.
    WaitFire,
    /// A packet belonging to the op left a NIC onto the wire.
    TxWire,
    /// A packet belonging to the op arrived at a NIC.
    RxWire,
    /// A NIC-local DMA (copy/CAS/flush) for the op finished.
    DmaDone,
    /// A CQE for the op was delivered to a completion queue.
    CqeDeliver,
    /// A replica CPU picked the op off its run queue (naive only).
    CpuWake,
    /// A replica CPU finished processing the op (naive only).
    CpuDone,
    /// Span closed (group ACK reached the issuing client).
    OpEnd,
}

impl Stage {
    /// Name of the segment this stage ends, if any.
    pub fn segment(self) -> Option<&'static str> {
        match self {
            Stage::OpBegin => None,
            Stage::ClientPost => Some("client-post"),
            Stage::NicFetch => Some("nic-queue"),
            Stage::WaitPark => Some("nic-queue"),
            Stage::WaitFire => Some("wait-block"),
            Stage::TxWire => Some("wqe-exec"),
            Stage::RxWire => Some("wire"),
            Stage::DmaDone => Some("dma"),
            Stage::CqeDeliver => Some("cqe-deliver"),
            Stage::CpuWake => Some("cpu-queue"),
            Stage::CpuDone => Some("replica-cpu"),
            Stage::OpEnd => Some("ack-deliver"),
        }
    }
}

/// One stamped event on an op's timeline.
#[derive(Debug, Clone, Copy)]
pub struct OpEvent {
    /// When the stage was reached.
    pub at: SimTime,
    /// The stage.
    pub stage: Stage,
    /// Host on which the stage happened.
    pub host: usize,
    /// Stage-specific detail (QP or CQ number; 0 when not meaningful).
    pub detail: u32,
}

/// The full causal record of one operation.
#[derive(Debug, Clone)]
pub struct OpSpan {
    /// Op id (non-zero; 0 is the "untracked" sentinel in descriptors).
    pub id: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Issue time.
    pub begin: SimTime,
    /// Completion time; `None` while in flight (or lost).
    pub end: Option<SimTime>,
    /// Stamped events, in stamping order (not necessarily time order).
    pub events: Vec<OpEvent>,
}

impl OpSpan {
    /// Indices into [`OpSpan::events`] in time order (stable: stamping
    /// order breaks ties). The export paths iterate through this
    /// instead of cloning and sorting the event vector itself.
    pub fn sorted_idx(&self) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..self.events.len() as u32).collect();
        idx.sort_by_key(|&i| self.events[i as usize].at);
        idx
    }

    /// Events sorted by time (stable: stamping order breaks ties).
    pub fn sorted_events(&self) -> Vec<OpEvent> {
        self.sorted_idx()
            .into_iter()
            .map(|i| self.events[i as usize])
            .collect()
    }

    /// Decompose the span into named segment durations (ns).
    ///
    /// Deltas between consecutive time-sorted events are attributed to
    /// the segment the *later* event ends; the values telescope, so
    /// they sum to `end - begin` exactly when the span is complete.
    /// Events stamped after `end` (chain-internal ACKs can trail the
    /// tail's WRITE_IMM) are off the critical path and excluded; they
    /// remain visible in [`OpSpan::events`] and the Chrome trace.
    pub fn segments(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut prev: Option<&OpEvent> = None;
        for i in self.sorted_idx() {
            let e = &self.events[i as usize];
            if self.end.is_some_and(|end| e.at > end) {
                // Sorted by time, so everything from here on trails `end`.
                break;
            }
            if let Some(p) = prev {
                let d = e.at.as_nanos() - p.at.as_nanos();
                let label = e.stage.segment().unwrap_or("other");
                *out.entry(label).or_insert(0) += d;
            }
            prev = Some(e);
        }
        out
    }

    /// End-to-end latency in ns (None while in flight).
    pub fn e2e_ns(&self) -> Option<u64> {
        self.end.map(|e| e.as_nanos() - self.begin.as_nanos())
    }
}

/// An instant annotation on the global timeline (fault injected, link
/// healed, recovery started, …).
#[derive(Debug, Clone)]
pub struct Mark {
    /// When.
    pub at: SimTime,
    /// What (short label).
    pub name: String,
    /// Host it concerns (0 when global).
    pub host: usize,
}

/// Labelled metrics registry: counters, gauges and histograms keyed by
/// `(name, labels)`. Both maps and label strings are ordered, so
/// iteration and [`Metrics::render`] are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<(String, String), u64>,
    gauges: BTreeMap<(String, String), f64>,
    histograms: BTreeMap<(String, String), Histogram>,
}

impl Metrics {
    /// Add `delta` to counter `name{labels}`.
    pub fn counter_add(&mut self, name: &str, labels: &str, delta: u64) {
        *self
            .counters
            .entry((name.to_string(), labels.to_string()))
            .or_insert(0) += delta;
    }

    /// Set counter `name{labels}` to an absolute value (for snapshots
    /// of monotonic sources: re-collecting overwrites, never
    /// double-counts).
    pub fn counter_set(&mut self, name: &str, labels: &str, v: u64) {
        self.counters
            .insert((name.to_string(), labels.to_string()), v);
    }

    /// Read a counter (0 if absent).
    pub fn counter(&self, name: &str, labels: &str) -> u64 {
        self.counters
            .get(&(name.to_string(), labels.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of a counter across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Set gauge `name{labels}` to `v`.
    pub fn gauge_set(&mut self, name: &str, labels: &str, v: f64) {
        self.gauges
            .insert((name.to_string(), labels.to_string()), v);
    }

    /// Read a gauge (0.0 if absent).
    pub fn gauge(&self, name: &str, labels: &str) -> f64 {
        self.gauges
            .get(&(name.to_string(), labels.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Record `v` into histogram `name{labels}`.
    pub fn histogram_record(&mut self, name: &str, labels: &str, v: u64) {
        self.histograms
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .record(v);
    }

    /// Merge a whole histogram into `name{labels}`.
    pub fn histogram_merge(&mut self, name: &str, labels: &str, h: &Histogram) {
        self.histograms
            .entry((name.to_string(), labels.to_string()))
            .or_default()
            .merge(h);
    }

    /// Replace histogram `name{labels}` with a snapshot (the overwrite
    /// counterpart of [`Metrics::histogram_merge`], for sources that
    /// accumulate since boot).
    pub fn histogram_set(&mut self, name: &str, labels: &str, h: Histogram) {
        self.histograms
            .insert((name.to_string(), labels.to_string()), h);
    }

    /// Look up a histogram.
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&Histogram> {
        self.histograms.get(&(name.to_string(), labels.to_string()))
    }

    /// Iterate counters in `(name, labels)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|((n, l), v)| (n.as_str(), l.as_str(), *v))
    }

    /// Iterate gauges in `(name, labels)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.gauges
            .iter()
            .map(|((n, l), v)| (n.as_str(), l.as_str(), *v))
    }

    /// Deterministic text dump (one line per metric, name order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ((n, l), v) in &self.counters {
            out.push_str(&format!("counter {n}{{{l}}} {v}\n"));
        }
        for ((n, l), v) in &self.gauges {
            out.push_str(&format!("gauge {n}{{{l}}} {v:.3}\n"));
        }
        for ((n, l), h) in &self.histograms {
            out.push_str(&format!(
                "histogram {n}{{{l}}} n={} p50={} p99={} max={}\n",
                h.count(),
                h.p50(),
                h.p99(),
                h.max()
            ));
        }
        out
    }
}

/// One segment's contribution to a kind's latency profile.
#[derive(Debug, Clone)]
pub struct SegmentStat {
    /// Segment name (see [`Stage::segment`]).
    pub label: &'static str,
    /// Per-op time spent in this segment (ns values).
    pub hist: Histogram,
    /// Total ns across all ops (ranking key).
    pub total_ns: u64,
    /// Segment mean as a share of the end-to-end mean.
    pub share_mean: f64,
    /// Segment p50 over end-to-end p50.
    pub share_p50: f64,
    /// Segment p99 over end-to-end p99.
    pub share_p99: f64,
}

/// Latency breakdown for one op kind.
#[derive(Debug, Clone)]
pub struct KindBreakdown {
    /// The op kind.
    pub kind: OpKind,
    /// Completed ops of this kind.
    pub ops: u64,
    /// End-to-end latency histogram (ns).
    pub e2e: Histogram,
    /// Segments, ranked by `total_ns` descending (then by name).
    pub segments: Vec<SegmentStat>,
}

impl KindBreakdown {
    /// Total ns this kind spent in `label` (0 if the segment never ran).
    pub fn segment_ns(&self, label: &str) -> u64 {
        self.segments
            .iter()
            .find(|s| s.label == label)
            .map(|s| s.total_ns)
            .unwrap_or(0)
    }
}

/// The full attribution report (see [`Telemetry::attribution`]).
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Per-kind breakdowns, in kind order.
    pub kinds: Vec<KindBreakdown>,
}

impl Attribution {
    /// Look up one kind's breakdown.
    pub fn kind(&self, k: OpKind) -> Option<&KindBreakdown> {
        self.kinds.iter().find(|b| b.kind == k)
    }
}

impl std::fmt::Display for Attribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.kinds {
            writeln!(
                f,
                "{}: n={} e2e p50={}ns p99={}ns",
                b.kind.label(),
                b.ops,
                b.e2e.p50(),
                b.e2e.p99()
            )?;
            for s in &b.segments {
                writeln!(
                    f,
                    "  {:<12} p50={:>8}ns p99={:>8}ns share(mean)={:>5.1}% share(p99)={:>5.1}%",
                    s.label,
                    s.hist.p50(),
                    s.hist.p99(),
                    100.0 * s.share_mean,
                    100.0 * s.share_p99,
                )?;
            }
        }
        Ok(())
    }
}

/// The telemetry hub owned by the cluster (`World.telemetry`).
///
/// Disabled by default: every stamping entry point is a cheap branch
/// when off, and op id 0 means "untracked" throughout the stack.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: bool,
    next_op: u32,
    spans: BTreeMap<u32, OpSpan>,
    marks: Vec<Mark>,
    /// The labelled metrics registry.
    pub metrics: Metrics,
}

impl Telemetry {
    /// Turn span collection on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is span collection on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span; returns its op id (0 when telemetry is disabled).
    pub fn begin_op(&mut self, at: SimTime, kind: OpKind, host: usize) -> u32 {
        if !self.enabled {
            return 0;
        }
        self.next_op += 1;
        let id = self.next_op;
        self.spans.insert(
            id,
            OpSpan {
                id,
                kind,
                begin: at,
                end: None,
                events: vec![OpEvent {
                    at,
                    stage: Stage::OpBegin,
                    host,
                    detail: 0,
                }],
            },
        );
        id
    }

    /// Stamp a stage onto op `op`. No-op for id 0 or unknown ids.
    pub fn stage(&mut self, at: SimTime, op: u32, stage: Stage, host: usize, detail: u32) {
        if op == 0 {
            return;
        }
        if let Some(s) = self.spans.get_mut(&op) {
            s.events.push(OpEvent {
                at,
                stage,
                host,
                detail,
            });
        }
    }

    /// Close op `op` (records the `OpEnd` stage too).
    pub fn end_op(&mut self, at: SimTime, op: u32, host: usize) {
        if op == 0 {
            return;
        }
        if let Some(s) = self.spans.get_mut(&op) {
            s.events.push(OpEvent {
                at,
                stage: Stage::OpEnd,
                host,
                detail: 0,
            });
            s.end = Some(at);
        }
    }

    /// Record an instant annotation (fault injected, recovery, …).
    pub fn mark(&mut self, at: SimTime, name: impl Into<String>, host: usize) {
        if !self.enabled {
            return;
        }
        self.marks.push(Mark {
            at,
            name: name.into(),
            host,
        });
    }

    /// Record a named state-machine transition: an instant mark
    /// (`transition:{what}:{from}->{to}`) plus a labelled counter
    /// (`state_transitions{what=…,to=…}`), so campaigns can count
    /// degrade / re-promote / rejoin edges without parsing mark names.
    /// Like [`Telemetry::mark`], a no-op while telemetry is disabled.
    pub fn transition(&mut self, at: SimTime, what: &str, from: &str, to: &str, host: usize) {
        if !self.enabled {
            return;
        }
        self.mark(at, format!("transition:{what}:{from}->{to}"), host);
        self.metrics
            .counter_add("state_transitions", &format!("what={what},to={to}"), 1);
    }

    /// All spans, by op id.
    pub fn spans(&self) -> impl Iterator<Item = &OpSpan> {
        self.spans.values()
    }

    /// One span.
    pub fn span(&self, op: u32) -> Option<&OpSpan> {
        self.spans.get(&op)
    }

    /// Recorded instant marks, in stamping order.
    pub fn marks(&self) -> &[Mark] {
        &self.marks
    }

    /// Build the per-hop latency attribution report over all *completed*
    /// spans. Segments are ranked by total time descending, i.e. by how
    /// much of the kind's aggregate latency they explain.
    pub fn attribution(&self) -> Attribution {
        // kind -> (e2e hist, ops, label -> (hist, total))
        type PerKind = (Histogram, u64, BTreeMap<&'static str, (Histogram, u64)>);
        let mut by_kind: BTreeMap<OpKind, PerKind> = BTreeMap::new();
        for s in self.spans.values() {
            let Some(e2e) = s.e2e_ns() else { continue };
            let entry = by_kind
                .entry(s.kind)
                .or_insert_with(|| (Histogram::new(), 0, BTreeMap::new()));
            entry.0.record(e2e);
            entry.1 += 1;
            for (label, ns) in s.segments() {
                let seg = entry
                    .2
                    .entry(label)
                    .or_insert_with(|| (Histogram::new(), 0));
                seg.0.record(ns);
                seg.1 += ns;
            }
        }
        let mut kinds = Vec::new();
        for (kind, (e2e, ops, segs)) in by_kind {
            let e2e_mean = e2e.mean().max(1.0);
            let e2e_p50 = e2e.p50().max(1) as f64;
            let e2e_p99 = e2e.p99().max(1) as f64;
            let mut segments: Vec<SegmentStat> = segs
                .into_iter()
                .map(|(label, (hist, total_ns))| SegmentStat {
                    label,
                    share_mean: hist.mean() / e2e_mean,
                    share_p50: hist.p50() as f64 / e2e_p50,
                    share_p99: hist.p99() as f64 / e2e_p99,
                    hist,
                    total_ns,
                })
                .collect();
            segments.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.label.cmp(b.label)));
            kinds.push(KindBreakdown {
                kind,
                ops,
                e2e,
                segments,
            });
        }
        Attribution { kinds }
    }

    /// Export everything as Chrome trace-event JSON (Perfetto-loadable).
    ///
    /// Serialization is hand-rolled with a fixed field order and
    /// integer-derived microsecond timestamps, so the same sim run
    /// always produces byte-identical output. Layout: one process per
    /// host, one thread per op id; each hop segment is a complete
    /// (`"X"`) event on the host where it ended, and marks are instant
    /// (`"i"`) events.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        let mut max_host = 0usize;
        for s in self.spans.values() {
            for e in &s.events {
                max_host = max_host.max(e.host);
            }
        }
        for m in &self.marks {
            max_host = max_host.max(m.host);
        }
        for h in 0..=max_host {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{h},\"tid\":0,\
                 \"args\":{{\"name\":\"host{h}\"}}}}"
            ));
        }
        for s in self.spans.values() {
            // Sort indices, not events: spans can hold thousands of
            // stamped events and export runs per span, so cloning the
            // event vector here was the hottest allocation in the
            // exporter.
            let idx = s.sorted_idx();
            let end_ns = s.end.map(|e| e.as_nanos());
            if let Some(end_ns) = end_ns {
                // Whole-op span on the issuing host.
                let begin_ns = s.begin.as_nanos();
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"op\":{}}}}}",
                    s.kind.label(),
                    ts_us(begin_ns),
                    ts_us(end_ns - begin_ns),
                    idx.first().map(|&i| s.events[i as usize].host).unwrap_or(0),
                    s.id,
                    s.id
                ));
            }
            for pair in idx.windows(2) {
                let (a, b) = (&s.events[pair[0] as usize], &s.events[pair[1] as usize]);
                let Some(label) = b.stage.segment() else {
                    continue;
                };
                let start = a.at.as_nanos();
                let dur = b.at.as_nanos() - start;
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"op\":{},\"detail\":{}}}}}",
                    label,
                    s.kind.label(),
                    ts_us(start),
                    ts_us(dur),
                    b.host,
                    s.id,
                    s.id,
                    b.detail
                ));
            }
        }
        for m in &self.marks {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mark\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\
                 \"tid\":0,\"s\":\"g\"}}",
                m.name,
                ts_us(m.at.as_nanos()),
                m.host
            ));
        }
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&events.join(","));
        out.push_str("]}");
        out
    }
}

/// Nanoseconds rendered as a decimal microsecond timestamp without ever
/// constructing a float (keeps the export bit-stable everywhere).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_telemetry_allocates_no_ops() {
        let mut tel = Telemetry::default();
        assert_eq!(tel.begin_op(t(0), OpKind::GWrite, 0), 0);
        tel.stage(t(5), 0, Stage::TxWire, 0, 0);
        tel.end_op(t(9), 0, 0);
        assert_eq!(tel.spans().count(), 0);
    }

    #[test]
    fn segments_telescope_to_e2e() {
        let mut tel = Telemetry::default();
        tel.enable();
        let op = tel.begin_op(t(100), OpKind::GWrite, 0);
        assert_eq!(op, 1);
        // Stamp out of order: sorting must still telescope.
        tel.stage(t(400), op, Stage::RxWire, 1, 0);
        tel.stage(t(150), op, Stage::ClientPost, 0, 3);
        tel.stage(t(300), op, Stage::TxWire, 0, 3);
        tel.end_op(t(1000), op, 0);
        let s = tel.span(op).unwrap();
        let segs = s.segments();
        let total: u64 = segs.values().sum();
        assert_eq!(total, s.e2e_ns().unwrap());
        assert_eq!(segs["client-post"], 50);
        assert_eq!(segs["wqe-exec"], 150);
        assert_eq!(segs["wire"], 100);
        assert_eq!(segs["ack-deliver"], 600);
    }

    #[test]
    fn late_events_do_not_break_telescoping() {
        let mut tel = Telemetry::default();
        tel.enable();
        let op = tel.begin_op(t(0), OpKind::GWrite, 0);
        tel.stage(t(100), op, Stage::TxWire, 0, 0);
        tel.end_op(t(500), op, 0);
        // A chain-internal ACK trailing the client-visible completion.
        tel.stage(t(700), op, Stage::RxWire, 1, 0);
        let s = tel.span(op).unwrap();
        let total: u64 = s.segments().values().sum();
        assert_eq!(total, s.e2e_ns().unwrap());
        // The raw event list still holds the late arrival.
        assert_eq!(s.events.len(), 4);
    }

    #[test]
    fn attribution_ranks_by_total() {
        let mut tel = Telemetry::default();
        tel.enable();
        for _ in 0..10 {
            let op = tel.begin_op(t(0), OpKind::NaiveWrite, 0);
            tel.stage(t(10), op, Stage::ClientPost, 0, 0);
            tel.stage(t(20), op, Stage::CpuWake, 1, 0);
            tel.stage(t(920), op, Stage::CpuDone, 1, 0);
            tel.end_op(t(1000), op, 0);
        }
        let a = tel.attribution();
        let b = a.kind(OpKind::NaiveWrite).unwrap();
        assert_eq!(b.ops, 10);
        assert_eq!(b.segments[0].label, "replica-cpu");
        assert!(b.segments[0].share_mean > 0.8);
        assert_eq!(b.segment_ns("replica-cpu"), 9000);
    }

    #[test]
    fn chrome_trace_shape_and_determinism() {
        let build = || {
            let mut tel = Telemetry::default();
            tel.enable();
            let op = tel.begin_op(t(1500), OpKind::GCas, 0);
            tel.stage(t(2000), op, Stage::TxWire, 0, 7);
            tel.end_op(t(3001), op, 0);
            tel.mark(t(2500), "fault:drop", 1);
            tel.chrome_trace()
        };
        let j1 = build();
        let j2 = build();
        assert_eq!(j1, j2);
        assert!(j1.starts_with("{\"traceEvents\":["));
        assert!(j1.ends_with("]}"));
        assert!(j1.contains("\"ph\":\"X\""));
        assert!(j1.contains("\"ph\":\"M\""));
        assert!(j1.contains("\"ph\":\"i\""));
        assert!(j1.contains("\"ts\":1.500"));
        assert!(j1.contains("\"name\":\"gCAS\""));
        // No floats were involved: fractional digits are exact.
        assert!(j1.contains("\"dur\":1.501"));
    }

    #[test]
    fn metrics_registry_is_name_ordered() {
        let mut m = Metrics::default();
        m.counter_add("z.last", "host=0", 1);
        m.counter_add("a.first", "host=1", 2);
        m.counter_add("a.first", "host=0", 3);
        m.gauge_set("occ", "qp=4", 0.5);
        m.histogram_record("lat", "host=0", 100);
        let names: Vec<_> = m.counters().map(|(n, l, _)| format!("{n}|{l}")).collect();
        assert_eq!(names, ["a.first|host=0", "a.first|host=1", "z.last|host=0"]);
        assert_eq!(m.counter("a.first", "host=0"), 3);
        assert_eq!(m.counter_total("a.first"), 5);
        assert_eq!(m.gauge("occ", "qp=4"), 0.5);
        assert_eq!(m.histogram("lat", "host=0").unwrap().count(), 1);
        let r = m.render();
        assert!(r.contains("counter a.first{host=0} 3"));
        assert!(r.contains("histogram lat{host=0} n=1"));
    }
}
