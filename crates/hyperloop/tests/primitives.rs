//! End-to-end tests of the HyperLoop group primitives on the simulated
//! testbed: full chains, real WQE rings, zero replica-CPU datapaths.

use hl_cluster::{ClusterBuilder, World};
use hl_fabric::HostId;
use hl_sim::{Engine, SimDuration, SimTime};
use hyperloop::{replica, GroupBuilder, GroupConfig, HyperLoopClient, OpResult};
use std::cell::RefCell;
use std::rc::Rc;

struct Test {
    w: World,
    eng: Engine<World>,
    client: HyperLoopClient,
}

fn setup(n_replicas: usize, ring_slots: u32) -> Test {
    let (mut w, mut eng) = ClusterBuilder::new(n_replicas + 1)
        .arena_size(4 << 20)
        .seed(7)
        .build();
    let cfg = GroupConfig {
        client: HostId(0),
        replicas: (1..=n_replicas).map(HostId).collect(),
        rep_bytes: 1 << 20,
        ring_slots,
        ..Default::default()
    };
    let group = GroupBuilder::new(cfg).build(&mut w);
    replica::start_replenishers(&group, &mut w, &mut eng);
    let client = HyperLoopClient::new(group, &mut w);
    Test { w, eng, client }
}

/// Collects completions.
fn sink(log: &Rc<RefCell<Vec<OpResult>>>) -> hyperloop::OnDone {
    let log = log.clone();
    Box::new(move |_w, _eng, r| log.borrow_mut().push(r))
}

/// Read `len` bytes at `offset` of member `m`'s rep region.
fn member_read(t: &mut Test, m: usize, offset: u64, len: usize) -> Vec<u8> {
    let g = t.client.group().borrow();
    let addr = g.member_addr(m, offset);
    let host = if m == 0 { 0 } else { g.cfg.replicas[m - 1].0 };
    drop(g);
    t.w.hosts[host].mem.read_vec(addr, len).unwrap()
}

fn member_durable(t: &mut Test, m: usize, offset: u64, len: usize) -> bool {
    let g = t.client.group().borrow();
    let addr = g.member_addr(m, offset);
    let host = if m == 0 { 0 } else { g.cfg.replicas[m - 1].0 };
    drop(g);
    t.w.hosts[host].mem.is_durable(addr, len)
}

#[test]
fn gwrite_replicates_to_all_members_durably() {
    let mut t = setup(2, 16);
    let log = Rc::new(RefCell::new(Vec::new()));
    t.client
        .gwrite(
            &mut t.w,
            &mut t.eng,
            0x100,
            b"replicated-txn-log",
            true,
            sink(&log),
        )
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(1_000_000));

    assert_eq!(log.borrow().len(), 1, "group ACK must arrive");
    for m in 0..3 {
        assert_eq!(
            member_read(&mut t, m, 0x100, 18),
            b"replicated-txn-log",
            "member {m}"
        );
        assert!(member_durable(&mut t, m, 0x100, 18), "member {m} durable");
    }
    // Latency is microsecond-scale (NIC datapath, no CPU hops).
    let lat = log.borrow()[0].latency;
    assert!(lat.as_nanos() > 2_000, "{lat}");
    assert!(lat.as_nanos() < 60_000, "{lat}");
}

#[test]
fn gwrite_without_flush_is_visible_but_volatile() {
    let mut t = setup(2, 16);
    let log = Rc::new(RefCell::new(Vec::new()));
    t.client
        .gwrite(&mut t.w, &mut t.eng, 0x200, b"volatile", false, sink(&log))
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(1_000_000));
    assert_eq!(log.borrow().len(), 1);
    for m in 1..3 {
        assert_eq!(member_read(&mut t, m, 0x200, 8), b"volatile");
        assert!(
            !member_durable(&mut t, m, 0x200, 8),
            "member {m} must still be in NIC cache"
        );
    }
}

#[test]
fn standalone_gflush_makes_prior_write_durable() {
    let mut t = setup(2, 16);
    let log = Rc::new(RefCell::new(Vec::new()));
    t.client
        .gwrite(&mut t.w, &mut t.eng, 0x300, b"flush-me", false, sink(&log))
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(1_000_000));
    assert!(!member_durable(&mut t, 1, 0x300, 8));

    t.client
        .gflush(&mut t.w, &mut t.eng, 0x300, 8, sink(&log))
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(2_000_000));
    assert_eq!(log.borrow().len(), 2);
    for m in 0..3 {
        assert!(member_durable(&mut t, m, 0x300, 8), "member {m}");
    }
    // Crash every replica: the data survives.
    for h in 1..3 {
        t.w.hosts[h].mem.crash();
    }
    assert_eq!(member_read(&mut t, 1, 0x300, 8), b"flush-me");
    assert_eq!(member_read(&mut t, 2, 0x300, 8), b"flush-me");
}

#[test]
fn gmemcpy_applies_log_to_db_on_all_members() {
    let mut t = setup(2, 16);
    let log = Rc::new(RefCell::new(Vec::new()));
    // Stage a log record at offset 0 on all members.
    t.client
        .gwrite(
            &mut t.w,
            &mut t.eng,
            0,
            b"log-record-bytes",
            true,
            sink(&log),
        )
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(1_000_000));
    // Execute: copy it to the "database" at offset 0x8000.
    t.client
        .gmemcpy(&mut t.w, &mut t.eng, 0, 0x8000, 16, true, sink(&log))
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(2_000_000));

    assert_eq!(log.borrow().len(), 2);
    for m in 0..3 {
        assert_eq!(member_read(&mut t, m, 0x8000, 16), b"log-record-bytes");
        assert!(member_durable(&mut t, m, 0x8000, 16), "member {m}");
    }
}

#[test]
fn gcas_acquires_group_lock_and_reports_results() {
    let mut t = setup(2, 16);
    let log = Rc::new(RefCell::new(Vec::new()));
    let all = 0b111; // client + both replicas
                     // Acquire: 0 -> 42 everywhere.
    t.client
        .gcas(&mut t.w, &mut t.eng, 0x400, 0, 42, all, sink(&log))
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(1_000_000));
    {
        let l = log.borrow();
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].results, vec![0, 0, 0], "all originals were 0");
    }
    for m in 0..3 {
        let b = member_read(&mut t, m, 0x400, 8);
        assert_eq!(u64::from_le_bytes(b.try_into().unwrap()), 42, "member {m}");
    }

    // Second acquire fails everywhere and reports the holder (42).
    t.client
        .gcas(&mut t.w, &mut t.eng, 0x400, 0, 43, all, sink(&log))
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(2_000_000));
    {
        let l = log.borrow();
        assert_eq!(l[1].results, vec![42, 42, 42]);
    }
    for m in 0..3 {
        let b = member_read(&mut t, m, 0x400, 8);
        assert_eq!(
            u64::from_le_bytes(b.try_into().unwrap()),
            42,
            "member {m} unchanged"
        );
    }
}

#[test]
fn gcas_execute_map_skips_members() {
    let mut t = setup(2, 16);
    let log = Rc::new(RefCell::new(Vec::new()));
    // Only replica 1 (member bit 1) executes; client and replica 2 skip.
    t.client
        .gcas(&mut t.w, &mut t.eng, 0x500, 0, 9, 0b010, sink(&log))
        .unwrap();
    t.eng.run_until(&mut t.w, SimTime::from_nanos(1_000_000));
    assert_eq!(log.borrow().len(), 1);
    let vals: Vec<u64> = (0..3)
        .map(|m| u64::from_le_bytes(member_read(&mut t, m, 0x500, 8).try_into().unwrap()))
        .collect();
    assert_eq!(vals, vec![0, 9, 0], "only member 1 swapped");
}

#[test]
fn pipelined_gwrites_exceeding_ring_depth_all_complete() {
    let mut t = setup(2, 8); // tiny ring to force replenishment
    let log = Rc::new(RefCell::new(Vec::new()));
    let total = 64u64;
    // Issue in waves respecting backpressure.
    fn pump(
        client: HyperLoopClient,
        log: Rc<RefCell<Vec<OpResult>>>,
        issued: u64,
        total: u64,
        w: &mut World,
        eng: &mut Engine<World>,
    ) {
        let mut issued = issued;
        while issued < total {
            let data = [(issued & 0xff) as u8; 32];
            let offset = 0x1000 + issued * 64;
            let l = log.clone();
            match client.gwrite(
                w,
                eng,
                offset,
                &data,
                true,
                Box::new(move |_w, _e, r| l.borrow_mut().push(r)),
            ) {
                Ok(_) => issued += 1,
                Err(_) => {
                    // Backpressured: retry shortly.
                    let c = client.clone();
                    let lg = log.clone();
                    eng.schedule(SimDuration::from_micros(50), move |w, eng| {
                        pump(c, lg, issued, total, w, eng);
                    });
                    return;
                }
            }
        }
    }
    let c = t.client.clone();
    let lg = log.clone();
    t.eng.schedule(SimDuration::ZERO, move |w, eng| {
        pump(c, lg, 0, total, w, eng)
    });
    t.eng
        .run_until(&mut t.w, SimTime::from_nanos(1_000_000_000));

    assert_eq!(log.borrow().len(), total as usize, "every op ACKed");
    // Spot-check replica contents.
    for k in [0u64, 31, 63] {
        let want = [(k & 0xff) as u8; 32];
        for m in 1..3 {
            assert_eq!(
                member_read(&mut t, m, 0x1000 + k * 64, 32),
                want,
                "op {k} member {m}"
            );
        }
    }
    // Replenishers actually ran.
    assert!(t.client.group().borrow().stats.reposted > 0);
}

#[test]
fn backpressure_without_draining() {
    let mut t = setup(1, 8); // max_inflight = 4
    let log = Rc::new(RefCell::new(Vec::new()));
    let mut ok = 0;
    let mut blocked = 0;
    for k in 0..10u64 {
        match t
            .client
            .gwrite(&mut t.w, &mut t.eng, k * 64, b"x", false, sink(&log))
        {
            Ok(_) => ok += 1,
            Err(_) => blocked += 1,
        }
    }
    assert_eq!(ok, 4);
    assert_eq!(blocked, 6);
    assert_eq!(t.client.group().borrow().stats.backpressured, 6);
}

#[test]
fn larger_groups_work_and_stay_flat() {
    for n in [2usize, 4, 6] {
        let mut t = setup(n, 16);
        let log = Rc::new(RefCell::new(Vec::new()));
        t.client
            .gwrite(&mut t.w, &mut t.eng, 0, b"scale-test", true, sink(&log))
            .unwrap();
        t.eng.run_until(&mut t.w, SimTime::from_nanos(5_000_000));
        assert_eq!(log.borrow().len(), 1, "group of {} acked", n + 1);
        for m in 0..=n {
            assert_eq!(member_read(&mut t, m, 0, 10), b"scale-test");
        }
    }
}

#[test]
fn replica_cpus_stay_off_the_critical_path() {
    let mut t = setup(2, 64);
    let log = Rc::new(RefCell::new(Vec::new()));
    // Run 100 flushed writes.
    for k in 0..100u64 {
        // Issue sequentially: wait for each ack via run_while.
        t.client
            .gwrite(&mut t.w, &mut t.eng, k * 128, &[7u8; 64], true, sink(&log))
            .unwrap();
        let want = k as usize + 1;
        let l = log.clone();
        t.eng.run_while(&mut t.w, move |_| l.borrow().len() < want);
    }
    assert_eq!(log.borrow().len(), 100);
    let now = t.eng.now();
    // Replica CPU time must be negligible: only the replenisher ran.
    for h in 1..3 {
        let util = t.w.hosts[h].cpu.host_utilization(now);
        assert!(
            util < 0.02,
            "replica {h} CPU utilization {util} should be ~0"
        );
    }
}

#[test]
fn deterministic_across_runs() {
    fn run() -> (u64, u64) {
        let mut t = setup(2, 16);
        let log = Rc::new(RefCell::new(Vec::new()));
        for k in 0..10u64 {
            let _ = t
                .client
                .gwrite(&mut t.w, &mut t.eng, k * 64, b"det", true, sink(&log));
        }
        t.eng.run_until(&mut t.w, SimTime::from_nanos(10_000_000));
        (t.eng.events_executed(), t.eng.now().as_nanos())
    }
    assert_eq!(run(), run());
}
